"""E16 — recompute the Table 1 lower bounds by orbit search.

Degree refinement + exhaustive orbit-union search recomputes what any
deterministic anonymous algorithm is forced to, independently of the
specific Theorem 3-5 algorithms; the result must match Table 1 exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments.optimality import (
    format_optimality,
    recompute_lower_bounds,
)
from repro.lowerbounds import build_even_lower_bound, build_odd_lower_bound
from repro.portgraph.refinement import best_anonymous_eds_size, minimal_quotient

from conftest import emit


@pytest.mark.parametrize("d", (2, 4, 6, 8))
def test_even_orbit_search(benchmark, d):
    instance = build_even_lower_bound(d)
    best = benchmark(best_anonymous_eds_size, instance.graph)
    assert best == instance.forced_ratio * instance.optimum_size


@pytest.mark.parametrize("d", (1, 3, 5))
def test_odd_orbit_search(benchmark, d):
    instance = build_odd_lower_bound(d)
    best = benchmark(best_anonymous_eds_size, instance.graph)
    assert best == instance.forced_ratio * instance.optimum_size


@pytest.mark.parametrize("d", (4, 8))
def test_refinement_cost(benchmark, d):
    instance = build_even_lower_bound(d)
    quotient, _ = benchmark(minimal_quotient, instance.graph)
    assert quotient.num_nodes == 1


def test_print_recomputation(benchmark):
    rows = benchmark.pedantic(
        recompute_lower_bounds,
        kwargs={"even_degrees": (2, 4, 6, 8), "odd_degrees": (1, 3, 5)},
        rounds=1,
        iterations=1,
    )
    emit(format_optimality(rows))
    assert all(r.matches for r in rows)
