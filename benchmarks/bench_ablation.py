"""E13 — ablations: phase II of Theorem 4, PortOne on odd degrees,
inflated degree promises for A(Δ)."""

from __future__ import annotations

from repro.experiments.ablation import format_ablations, run_ablations

from conftest import emit


def test_ablation_suite(benchmark):
    rows = benchmark.pedantic(
        run_ablations,
        kwargs={"odd_degrees": (3, 5), "deltas": (3, 4)},
        rounds=1,
        iterations=1,
    )
    emit(format_ablations(rows))
    assert len(rows) == 6
    # ablated variants are never better than the full algorithms
    assert all(r.solution_size >= r.baseline_size for r in rows)
