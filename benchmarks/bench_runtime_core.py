"""The simulation-core perf trajectory: legacy vs compiled vs vector.

This is the repo's core performance number across its engine rewrites
(PR 5's compiled flat-array loop, this PR's numpy struct-of-arrays
loop): for representative ``large-regular`` and ``xlarge-regular``
cells it times the engines against each other, asserts they produce
identical results, and derives units/sec and rounds/sec throughput.

Two timing disciplines per engine:

* **cold** — a fresh graph every rep, so the figure *includes* graph
  compilation plus batch/vector program construction (the engine-
  realistic first-contact cost);
* **warm** — one graph reused across reps after an untimed priming
  run, so the memoised derived tables (compiled schedules, vector
  slabs) are already in place and the figure is the round loop itself.

The legacy reference loop is only timed on the ``large`` cells — on
the ``xlarge`` ones it would dominate the benchmark's own runtime by
minutes while measuring nothing new.  The vector columns are ``null``
when numpy (the optional ``[vector]`` extra) is absent.

Run as a script to emit the machine-readable trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_runtime_core.py --out BENCH_runtime.json

CI uploads the JSON as a build artifact; the committed copy records the
container this PR was developed in.  The pytest entry points double as
the perf-smoke gates (compiled ≥ 2× legacy, vector ≥ 2× compiled on
round-dominated units — deliberately generous floors; the measured
margins are far higher) and the determinism check.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import pytest

from repro.obs import recording
from repro.registry.algorithms import resolve
from repro.registry.families import get_family
from repro.runtime import use_engine, vector_available

from conftest import emit

#: Representative cells of the ``large-regular`` scenario (n ≤ 2048,
#: legacy included) plus ``xlarge-regular`` cells (n = 16384, legacy
#: skipped).  ``round_dominated`` marks units whose cost is the round
#: loop itself — the speedup claims attach to those; ``port_one`` is a
#: single round, so its run is setup-dominated and reported without the
#: claim.  The ≥ 5× vector-over-compiled acceptance number of the
#: vector-engine PR attaches to the round-dominated *xlarge* cells.
UNITS = (
    {"algorithm": "port_one", "d": 5, "n": 1024,
     "round_dominated": False, "xlarge": False},
    {"algorithm": "regular_odd", "d": 5, "n": 1024,
     "round_dominated": True, "xlarge": False},
    {"algorithm": "bounded_degree", "d": 5, "n": 1024,
     "round_dominated": True, "xlarge": False},
    {"algorithm": "bounded_degree", "d": 9, "n": 1024,
     "round_dominated": True, "xlarge": False},
    {"algorithm": "regular_odd", "d": 5, "n": 16384,
     "round_dominated": True, "xlarge": True},
    {"algorithm": "regular_odd", "d": 9, "n": 16384,
     "round_dominated": True, "xlarge": True},
    {"algorithm": "bounded_degree", "d": 9, "n": 16384,
     "round_dominated": True, "xlarge": True},
)

REPS = 3


def _build(unit):
    return get_family("regular").make(
        {"d": unit["d"], "n": unit["n"]}, 1
    )


def _time_engine(unit, engine: str, *, warm: bool = False):
    """Best-of-REPS wall time of one unit under *engine*.

    Cold reps build a fresh graph each (the graph build itself is
    untimed, everything derived from it is timed); warm reps reuse one
    graph primed by an untimed run, so memoised derived tables are hot.
    """
    bound = resolve(unit["algorithm"])
    best = float("inf")
    outcome = None
    if warm:
        graph = _build(unit)
        with use_engine(engine):
            outcome = bound.run(graph)  # prime the memos, untimed
            for _ in range(REPS):
                started = time.perf_counter()
                outcome = bound.run(graph)
                best = min(best, time.perf_counter() - started)
        return best, outcome
    for _ in range(REPS):
        graph = _build(unit)
        with use_engine(engine):
            started = time.perf_counter()
            outcome = bound.run(graph)
            elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best, outcome


def _ratio(numerator, denominator):
    if numerator is None or denominator is None:
        return None
    return round(numerator / denominator, 2)


def measure_units() -> dict:
    """Time every unit on every applicable engine; assemble the rows."""
    with_vector = vector_available()
    rows = []
    for unit in UNITS:
        compiled_cold, compiled_out = _time_engine(unit, "compiled")
        compiled_warm, _ = _time_engine(unit, "compiled", warm=True)
        rounds = compiled_out[1]
        row = {
            **unit,
            "rounds": rounds,
            "compiled_cold_s": round(compiled_cold, 6),
            "compiled_warm_s": round(compiled_warm, 6),
            "rounds_per_s_compiled_cold": round(rounds / compiled_cold, 1),
            "rounds_per_s_compiled_warm": round(rounds / compiled_warm, 1),
            "legacy_s": None,
            "speedup": None,
            "vector_cold_s": None,
            "vector_warm_s": None,
            "rounds_per_s_vector_cold": None,
            "rounds_per_s_vector_warm": None,
            "vector_speedup_cold": None,
            "vector_speedup_warm": None,
        }
        if not unit["xlarge"]:
            legacy_s, legacy_out = _time_engine(unit, "legacy")
            assert legacy_out == compiled_out, f"engines disagree on {unit}"
            row["legacy_s"] = round(legacy_s, 6)
            row["speedup"] = _ratio(legacy_s, compiled_cold)
        if with_vector:
            vector_cold, vector_out = _time_engine(unit, "vector")
            vector_warm, _ = _time_engine(unit, "vector", warm=True)
            assert vector_out == compiled_out, f"engines disagree on {unit}"
            row["vector_cold_s"] = round(vector_cold, 6)
            row["vector_warm_s"] = round(vector_warm, 6)
            row["rounds_per_s_vector_cold"] = round(rounds / vector_cold, 1)
            row["rounds_per_s_vector_warm"] = round(rounds / vector_warm, 1)
            row["vector_speedup_cold"] = _ratio(compiled_cold, vector_cold)
            row["vector_speedup_warm"] = _ratio(compiled_warm, vector_warm)
        rows.append(row)

    dominated = [
        r["speedup"] for r in rows
        if r["round_dominated"] and r["speedup"] is not None
    ]
    vector_dominated = [
        r["vector_speedup_cold"] for r in rows
        if r["round_dominated"] and r["xlarge"]
        and r["vector_speedup_cold"] is not None
    ]
    return {
        "benchmark": (
            "runtime-core legacy vs compiled vs vector "
            "(large/xlarge-regular cells)"
        ),
        "reps_best_of": REPS,
        "vector_available": with_vector,
        "units": rows,
        "summary": {
            "round_dominated_min_speedup": min(dominated),
            "round_dominated_max_speedup": max(dominated),
            # cold vector-over-compiled on round-dominated xlarge cells
            "vector_min_speedup": (
                min(vector_dominated) if vector_dominated else None
            ),
            "vector_max_speedup": (
                max(vector_dominated) if vector_dominated else None
            ),
        },
    }


def _fmt_ms(seconds) -> str:
    return "      —" if seconds is None else f"{seconds * 1000:7.1f}"


def format_table(payload: dict) -> str:
    lines = [
        "runtime core: legacy vs compiled vs vector (best of "
        f"{payload['reps_best_of']}; cold = fresh graph per rep, "
        "warm = memoised tables)",
        f"{'unit':30s} {'legacy':>8s} {'cmp cold':>9s} {'cmp warm':>9s} "
        f"{'vec cold':>9s} {'vec warm':>9s} {'vec x':>6s}",
    ]
    for row in payload["units"]:
        label = f"{row['algorithm']} d={row['d']} n={row['n']}"
        vec_x = (
            "     —" if row["vector_speedup_cold"] is None
            else f"{row['vector_speedup_cold']:5.1f}x"
        )
        lines.append(
            f"{label:30s} {_fmt_ms(row['legacy_s'])}ms"
            f" {_fmt_ms(row['compiled_cold_s'])}ms"
            f" {_fmt_ms(row['compiled_warm_s'])}ms"
            f" {_fmt_ms(row['vector_cold_s'])}ms"
            f" {_fmt_ms(row['vector_warm_s'])}ms {vec_x}"
        )
    summary = payload["summary"]
    lines.append(
        "round-dominated, legacy → compiled (cold): "
        f"{summary['round_dominated_min_speedup']:.1f}x – "
        f"{summary['round_dominated_max_speedup']:.1f}x"
    )
    if summary["vector_min_speedup"] is not None:
        lines.append(
            "round-dominated xlarge, compiled → vector (cold): "
            f"{summary['vector_min_speedup']:.1f}x – "
            f"{summary['vector_max_speedup']:.1f}x"
        )
    else:
        lines.append(
            "vector engine unavailable (numpy not installed); "
            "vector columns skipped"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_perf_smoke_compiled_beats_legacy():
    """CI gate: ≥ 2× on one large-regular unit.  The threshold is kept
    far below the measured margin (≥ 5×) so shared-runner noise cannot
    flake it."""
    unit = {"algorithm": "regular_odd", "d": 5, "n": 512}
    legacy_s, legacy_out = _time_engine(unit, "legacy")
    compiled_s, compiled_out = _time_engine(unit, "compiled")
    assert legacy_out == compiled_out
    emit(
        f"perf smoke regular_odd d=5 n=512: legacy={legacy_s * 1000:.1f} ms, "
        f"compiled={compiled_s * 1000:.1f} ms "
        f"({legacy_s / compiled_s:.1f}x)"
    )
    assert legacy_s / compiled_s >= 2.0


@pytest.mark.skipif(not vector_available(), reason="numpy not installed")
def test_perf_smoke_vector_beats_compiled():
    """CI gate: vector ≥ 2× over compiled cold on one round-dominated
    xlarge unit.  As above, the floor is far below the measured margin
    (≥ 5× on bounded_degree) to keep shared runners from flaking it."""
    unit = {"algorithm": "bounded_degree", "d": 9, "n": 16384}
    compiled_s, compiled_out = _time_engine(unit, "compiled")
    vector_s, vector_out = _time_engine(unit, "vector")
    assert vector_out == compiled_out
    emit(
        f"perf smoke bounded_degree d=9 n=16384: "
        f"compiled={compiled_s * 1000:.1f} ms, "
        f"vector={vector_s * 1000:.1f} ms "
        f"({compiled_s / vector_s:.1f}x)"
    )
    assert compiled_s / vector_s >= 2.0


def test_round_dominated_units_speed_up_5x():
    """The PR-5 acceptance number on the full unit set (and the
    committed BENCH_runtime.json was produced by exactly this
    measurement) — now extended with the vector-engine acceptance
    number: cold vector-over-compiled ≥ 5× on at least one
    round-dominated xlarge-regular unit."""
    payload = measure_units()
    emit(format_table(payload))
    assert payload["summary"]["round_dominated_min_speedup"] >= 5.0
    if payload["vector_available"]:
        assert payload["summary"]["vector_max_speedup"] >= 5.0
        assert payload["summary"]["vector_min_speedup"] >= 1.5


def test_telemetry_overhead_under_5_percent():
    """The always-on-cheap gate for the telemetry subsystem: on a
    round-dominated unit the instrumented round loop may cost at most
    5% extra.  Measured with a recorder actively *collecting* — a strict
    superset of the disabled path (one flag check), so passing here
    bounds both.

    Measurement discipline (shared runners shift CPU speed regimes
    mid-run, with run-to-run swings far above the effect under test):
    gc is off while timing, each sample batches three executions, the
    variants run as off/on pairs with the order alternating per rep,
    and the verdict is the *median* per-pair ratio — pairs land in the
    same speed regime, the median throws away the ones straddling a
    regime shift.  A median over the threshold re-measures (up to three
    attempts): a real 5% regression reproduces, a scheduler artefact
    does not."""
    import gc as _gc
    import statistics

    unit = {"algorithm": "regular_odd", "d": 5, "n": 1024}
    bound = resolve(unit["algorithm"])
    reps = 11
    batch = 3

    def one_sample(with_recorder: bool) -> float:
        graphs = [_build(unit) for _ in range(batch)]
        with use_engine("compiled"):
            if with_recorder:
                with recording():
                    started = time.perf_counter()
                    for graph in graphs:
                        bound.run(graph)
                    return time.perf_counter() - started
            started = time.perf_counter()
            for graph in graphs:
                bound.run(graph)
            return time.perf_counter() - started

    def measure() -> tuple[float, list[float]]:
        ratios = []
        _gc.disable()
        try:
            one_sample(False)  # warm both variants up, untimed
            one_sample(True)
            for rep in range(reps):
                if rep % 2:
                    on = one_sample(True)
                    off = one_sample(False)
                else:
                    off = one_sample(False)
                    on = one_sample(True)
                ratios.append(on / off)
        finally:
            _gc.enable()
        return statistics.median(ratios), ratios

    for attempt in range(3):
        median_ratio, ratios = measure()
        emit(
            f"telemetry overhead regular_odd d=5 n=1024 "
            f"(median of {reps} pairs of {batch}, attempt {attempt + 1}): "
            f"{(median_ratio - 1.0) * 100:+.1f}% "
            f"(spread {min(ratios):.3f}..{max(ratios):.3f})"
        )
        if median_ratio <= 1.05:
            break
    assert median_ratio <= 1.05


def ledger_entries(payload: dict):
    """The bench rows as perf-ledger entries, one per engine.

    Each unit's cold time becomes a pseudo-phase named after the unit,
    so ``repro-eds perf compare`` flags per-unit regressions within one
    engine's trajectory (engines never compare against each other).
    """
    from repro.obs.perf import LedgerEntry, git_sha

    sha = git_sha()
    stamp = time.time()
    column = {
        "legacy": "legacy_s",
        "compiled": "compiled_cold_s",
        "vector": "vector_cold_s",
    }
    entries = []
    for engine, key in column.items():
        phases = {
            f"{row['algorithm']} d={row['d']} n={row['n']}": row[key]
            for row in payload["units"]
            if row.get(key) is not None
        }
        if not phases:
            continue
        entries.append(LedgerEntry(
            scenario="bench:runtime-core",
            engine=engine,
            phases=phases,
            unit_wall_s=sum(phases.values()),
            units=len(phases),
            reps=payload["reps_best_of"],
            numpy=payload["vector_available"],
            git_sha=sha,
            recorded_unix=stamp,
            python=platform.python_version(),
        ))
    return entries


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_runtime.json",
        help="where to write the machine-readable trajectory",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="also append one perf-ledger entry per engine "
        "(see `repro-eds perf`)",
    )
    args = parser.parse_args()
    payload = measure_units()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(format_table(payload))
    print(f"wrote {args.out}")
    if args.ledger:
        from repro.obs.perf import append_entry

        entries = ledger_entries(payload)
        for entry in entries:
            append_entry(args.ledger, entry)
        print(f"appended {len(entries)} ledger entr(ies) to {args.ledger}")
