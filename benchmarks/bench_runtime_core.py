"""The simulation-core perf trajectory: legacy vs compiled schedulers.

This is the repo's core performance number after the flat-array rewrite
(PR 5): for representative ``large-regular`` cells it times the legacy
dict-based reference loop against the compiled scheduler (batch
stepping included), asserts the two produce identical results, and
derives units/sec and rounds/sec throughput.  Graphs are rebuilt fresh
for every timed run, so the compiled figures *include* graph
compilation and batch-program construction — the cold, engine-realistic
cost.

Run as a script to emit the machine-readable trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_runtime_core.py --out BENCH_runtime.json

CI uploads the JSON as a build artifact; the committed copy records the
container this PR was developed in.  The pytest entry points double as
the perf-smoke gate (compiled ≥ 2× legacy on a ``large-regular`` unit —
a deliberately generous floor; the measured margin is far higher) and
the determinism check.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.obs import recording
from repro.registry.algorithms import resolve
from repro.registry.families import get_family
from repro.runtime import use_engine

from conftest import emit

#: Representative cells of the ``large-regular`` scenario (d ∈ 2..10,
#: n ≤ 2048).  ``round_dominated`` marks units whose cost is the round
#: loop itself — the ≥ 5× claim of the PR attaches to those; ``port_one``
#: is a single round, so its run is compilation-dominated and reported
#: without the claim.
UNITS = (
    {"algorithm": "port_one", "d": 5, "n": 1024, "round_dominated": False},
    {"algorithm": "regular_odd", "d": 5, "n": 1024, "round_dominated": True},
    {"algorithm": "bounded_degree", "d": 5, "n": 1024,
     "round_dominated": True},
    {"algorithm": "bounded_degree", "d": 9, "n": 1024,
     "round_dominated": True},
)

REPS = 3


def _build(unit):
    return get_family("regular").make(
        {"d": unit["d"], "n": unit["n"]}, 1
    )


def _time_engine(unit, engine: str) -> tuple[float, object]:
    """Best-of-REPS wall time of one unit under *engine* (fresh graph
    each rep; the graph build itself is untimed)."""
    bound = resolve(unit["algorithm"])
    best = float("inf")
    outcome = None
    for _ in range(REPS):
        graph = _build(unit)
        with use_engine(engine):
            started = time.perf_counter()
            edge_set, rounds = bound.run(graph)
            elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        outcome = (edge_set, rounds)
    return best, outcome


def measure_units() -> dict:
    """Time every unit on both engines and assemble the trajectory."""
    rows = []
    for unit in UNITS:
        legacy_s, legacy_out = _time_engine(unit, "legacy")
        compiled_s, compiled_out = _time_engine(unit, "compiled")
        assert legacy_out == compiled_out, f"engines disagree on {unit}"
        rounds = compiled_out[1]
        rows.append(
            {
                **unit,
                "rounds": rounds,
                "legacy_s": round(legacy_s, 6),
                "compiled_s": round(compiled_s, 6),
                "speedup": round(legacy_s / compiled_s, 2),
                "units_per_s_legacy": round(1.0 / legacy_s, 2),
                "units_per_s_compiled": round(1.0 / compiled_s, 2),
                "rounds_per_s_compiled": round(rounds / compiled_s, 1),
            }
        )
    dominated = [r["speedup"] for r in rows if r["round_dominated"]]
    return {
        "benchmark": "runtime-core legacy vs compiled (large-regular cells)",
        "reps_best_of": REPS,
        "units": rows,
        "summary": {
            "round_dominated_min_speedup": min(dominated),
            "round_dominated_max_speedup": max(dominated),
        },
    }


def format_table(payload: dict) -> str:
    lines = [
        "runtime core: legacy vs compiled (best of "
        f"{payload['reps_best_of']}, fresh graph per rep)",
        f"{'unit':28s} {'legacy':>9s} {'compiled':>9s} {'speedup':>8s}",
    ]
    for row in payload["units"]:
        label = f"{row['algorithm']} d={row['d']} n={row['n']}"
        lines.append(
            f"{label:28s} {row['legacy_s'] * 1000:7.1f}ms "
            f"{row['compiled_s'] * 1000:7.1f}ms {row['speedup']:7.1f}x"
        )
    summary = payload["summary"]
    lines.append(
        "round-dominated units: "
        f"{summary['round_dominated_min_speedup']:.1f}x – "
        f"{summary['round_dominated_max_speedup']:.1f}x"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_perf_smoke_compiled_beats_legacy():
    """CI gate: ≥ 2× on one large-regular unit.  The threshold is kept
    far below the measured margin (≥ 5×) so shared-runner noise cannot
    flake it."""
    unit = {"algorithm": "regular_odd", "d": 5, "n": 512}
    legacy_s, legacy_out = _time_engine(unit, "legacy")
    compiled_s, compiled_out = _time_engine(unit, "compiled")
    assert legacy_out == compiled_out
    emit(
        f"perf smoke regular_odd d=5 n=512: legacy={legacy_s * 1000:.1f} ms, "
        f"compiled={compiled_s * 1000:.1f} ms "
        f"({legacy_s / compiled_s:.1f}x)"
    )
    assert legacy_s / compiled_s >= 2.0


def test_round_dominated_units_speed_up_5x():
    """The PR acceptance number on the full unit set (and the committed
    BENCH_runtime.json was produced by exactly this measurement)."""
    payload = measure_units()
    emit(format_table(payload))
    assert payload["summary"]["round_dominated_min_speedup"] >= 5.0


def test_telemetry_overhead_under_5_percent():
    """The always-on-cheap gate for the telemetry subsystem: on a
    round-dominated unit the instrumented round loop may cost at most
    5% extra.  Measured with a recorder actively *collecting* — a strict
    superset of the disabled path (one flag check), so passing here
    bounds both.

    Measurement discipline (shared runners shift CPU speed regimes
    mid-run, with run-to-run swings far above the effect under test):
    gc is off while timing, each sample batches three executions, the
    variants run as off/on pairs with the order alternating per rep,
    and the verdict is the *median* per-pair ratio — pairs land in the
    same speed regime, the median throws away the ones straddling a
    regime shift.  A median over the threshold re-measures (up to three
    attempts): a real 5% regression reproduces, a scheduler artefact
    does not."""
    import gc as _gc
    import statistics

    unit = {"algorithm": "regular_odd", "d": 5, "n": 1024}
    bound = resolve(unit["algorithm"])
    reps = 11
    batch = 3

    def one_sample(with_recorder: bool) -> float:
        graphs = [_build(unit) for _ in range(batch)]
        with use_engine("compiled"):
            if with_recorder:
                with recording():
                    started = time.perf_counter()
                    for graph in graphs:
                        bound.run(graph)
                    return time.perf_counter() - started
            started = time.perf_counter()
            for graph in graphs:
                bound.run(graph)
            return time.perf_counter() - started

    def measure() -> tuple[float, list[float]]:
        ratios = []
        _gc.disable()
        try:
            one_sample(False)  # warm both variants up, untimed
            one_sample(True)
            for rep in range(reps):
                if rep % 2:
                    on = one_sample(True)
                    off = one_sample(False)
                else:
                    off = one_sample(False)
                    on = one_sample(True)
                ratios.append(on / off)
        finally:
            _gc.enable()
        return statistics.median(ratios), ratios

    for attempt in range(3):
        median_ratio, ratios = measure()
        emit(
            f"telemetry overhead regular_odd d=5 n=1024 "
            f"(median of {reps} pairs of {batch}, attempt {attempt + 1}): "
            f"{(median_ratio - 1.0) * 100:+.1f}% "
            f"(spread {min(ratios):.3f}..{max(ratios):.3f})"
        )
        if median_ratio <= 1.05:
            break
    assert median_ratio <= 1.05


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_runtime.json",
        help="where to write the machine-readable trajectory",
    )
    args = parser.parse_args()
    payload = measure_units()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(format_table(payload))
    print(f"wrote {args.out}")
