"""E5-E11 — regenerate every figure of the paper and verify its claims.

Each benchmark times one figure builder; the builder itself eagerly
verifies every property the paper states about the depicted objects.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import all_figures

from conftest import emit

FIGURES = sorted(all_figures())


@pytest.mark.parametrize("figure_id", FIGURES)
def test_figure(benchmark, figure_id):
    builder = all_figures()[figure_id]
    artifact = benchmark.pedantic(builder, rounds=2, iterations=1)
    emit(artifact.rendering)
    assert artifact.checks
    assert artifact.rendering
