"""Baseline-subsystem smoke: comparison units are engine citizens.

The repro.baselines algorithms are only useful if they behave exactly
like built-in units inside the engine: content-addressed, cacheable,
and byte-reproducible (randomised rounding included — its coins derive
from the unit's content hash).  Each check here doubles as a benchmark
of the comparison grid, and the cached re-run asserts the 100% hit
rate that makes ``repro-eds compare`` cheap to iterate on.
"""

from __future__ import annotations

import time

from repro.api import run_sweep
from repro.engine import ResultCache, SweepGrid

from conftest import emit

COMPARISON_GRID = SweepGrid(
    name="bench-baselines",
    algorithms=(
        "greedy_mds_line", "lp_rounding", "forest_dds", "central_optimal",
    ),
    family="regular",
    degrees=(3, 4),
    sizes=(12, 16),
    seeds=2,
    measure="comparison",
    optimum="auto",
)


def test_baseline_units_byte_reproducible():
    """Re-executing the grid reproduces every record byte for byte."""
    first = run_sweep(COMPARISON_GRID, backend="inline")
    second = run_sweep(COMPARISON_GRID, backend="process", workers=2)
    assert (
        [r.canonical() for r in first.records]
        == [r.canonical() for r in second.records]
    )
    emit(
        f"baseline grid: {len(first.records)} units byte-identical "
        "across inline and process backends"
    )


def test_baseline_units_engine_cacheable(tmp_path_factory):
    """A second run over the same cache is served entirely from disk."""
    cache = ResultCache(tmp_path_factory.mktemp("baseline-cache"))
    cold_started = time.perf_counter()
    cold = run_sweep(COMPARISON_GRID, cache=cache, backend="inline")
    cold_elapsed = time.perf_counter() - cold_started
    warm_started = time.perf_counter()
    warm = run_sweep(COMPARISON_GRID, cache=cache, backend="inline")
    warm_elapsed = time.perf_counter() - warm_started

    assert cold.computed == len(cold.records)
    assert warm.cache_hits == len(warm.records)
    assert warm.computed == 0
    assert (
        [r.canonical() for r in cold.records]
        == [r.canonical() for r in warm.records]
    )
    emit(
        f"baseline cache round-trip: cold {cold_elapsed * 1000:.1f} ms, "
        f"warm {warm_elapsed * 1000:.1f} ms "
        f"({warm.cache_hits}/{len(warm.records)} hits)"
    )


#: The hint-benchmark grid: no exact optima, no exact-solver contender,
#: so every unit is genuinely tiny (well under the 5 ms threshold).
TINY_COMPARISON_GRID = COMPARISON_GRID.override(
    name="bench-baselines-tiny",
    algorithms=("greedy_mds_line", "lp_rounding", "forest_dds"),
    sizes=(12,),
    optimum="none",
)


def test_comparison_measure_stays_inline_under_auto():
    """The scheduling-hint satellite, observed end to end: on a grid of
    tiny units the auto backend skips calibration entirely and stays
    inline.  (Expensive units still re-escalate — the hint skips the
    probe, not the safety net.)"""
    report = run_sweep(TINY_COMPARISON_GRID, workers=4, backend="auto")
    assert report.backend == "auto:inline"
    assert "measure hint" in report.calibration
    assert "calibration skipped" in report.calibration
    emit(f"auto backend on tiny comparison grid: {report.backend_line()}")
