"""E15 — substrate performance: the building blocks under the paper.

Times Petersen 2-factorisation, our Hopcroft-Karp, the exact solvers,
and raw simulator throughput, each with its correctness assertion.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.algorithms import PortOneEDS
from repro.factorization import is_two_factor, two_factorise_nx
from repro.generators import random_regular
from repro.matching import (
    is_maximal_matching,
    maximum_bipartite_matching,
    minimum_maximal_matching,
)
from repro.portgraph import from_networkx
from repro.runtime import run_anonymous


@pytest.mark.parametrize("d,n", [(4, 20), (6, 30), (8, 40)])
def test_two_factorisation(benchmark, d, n):
    graph = nx.random_regular_graph(d, n, seed=n)
    factors = benchmark(two_factorise_nx, graph)
    assert len(factors) == d // 2
    assert all(is_two_factor(f, graph.nodes) for f in factors)


@pytest.mark.parametrize("size", (50, 200))
def test_hopcroft_karp(benchmark, size):
    graph = nx.bipartite.random_graph(size, size, 0.1, seed=size)
    left = [v for v, d in graph.nodes(data=True) if d["bipartite"] == 0]
    adjacency = {v: sorted(graph.neighbors(v)) for v in left}
    ours = benchmark(maximum_bipartite_matching, adjacency)
    theirs = nx.bipartite.maximum_matching(graph, top_nodes=left)
    assert len(ours) == len(theirs) // 2


@pytest.mark.parametrize("n", (8, 12, 16))
def test_exact_minimum_maximal_matching(benchmark, n):
    graph = from_networkx(nx.random_regular_graph(3, n, seed=n))
    result = benchmark.pedantic(
        minimum_maximal_matching, args=(graph,), rounds=2, iterations=1
    )
    assert is_maximal_matching(graph, result)


@pytest.mark.parametrize("n", (100, 400))
def test_simulator_throughput(benchmark, n):
    """One full round over n nodes of degree 4 (message fan-out 4n)."""
    graph = random_regular(4, n, seed=n)
    result = benchmark(run_anonymous, graph, PortOneEDS)
    assert result.rounds == 1
    assert len(result.edge_set()) <= n
