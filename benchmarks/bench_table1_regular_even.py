"""E1 — Table 1, even-degree rows: Theorem 3 vs Theorem 1.

Regenerates the ``d-regular, d even: 4 - 2/d`` rows of Table 1 by running
the O(1) PortOne algorithm on the Theorem 1 adversarial construction and
asserting the measured ratio equals the paper's entry exactly.
"""

from __future__ import annotations

import pytest

from repro.algorithms import PortOneEDS
from repro.eds import regular_ratio
from repro.experiments.table1 import format_table1, reproduce_table1
from repro.lowerbounds import build_even_lower_bound, run_adversary

from conftest import emit

EVEN_DEGREES = (2, 4, 6, 8, 10, 12)


@pytest.mark.parametrize("d", EVEN_DEGREES)
def test_even_row(benchmark, d):
    instance = build_even_lower_bound(d)

    report = benchmark(run_adversary, instance, PortOneEDS)

    assert report.feasible
    assert report.fibres_uniform
    assert report.ratio == regular_ratio(d) == instance.forced_ratio
    assert report.is_tight


def test_print_even_rows(benchmark):
    rows = benchmark.pedantic(
        reproduce_table1,
        kwargs={"even_degrees": EVEN_DEGREES, "odd_degrees": (), "ks": ()},
        rounds=1,
        iterations=1,
    )
    emit(format_table1(rows))
    assert all(r.tight for r in rows)
