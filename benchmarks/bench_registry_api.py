"""The repro.api façade under load: engine sweeps via the registry.

Times a mixed-model grid — the paper's deterministic algorithms, the
identified and central baselines, and the randomised matching plugin —
through ``api.run_sweep``, and the cache-served rerun that should be
orders of magnitude faster.  Correctness is asserted the way the
engine's contract states it: a cached rerun returns byte-identical
records, randomised units included.
"""

from __future__ import annotations

from repro import api
from repro.engine import ResultCache, SweepGrid

from conftest import emit

GRID = SweepGrid(
    name="bench-registry-api",
    algorithms=(
        "port_one", "regular_odd", "bounded_degree",
        "ids_greedy", "central_greedy", "randomized_matching",
    ),
    family="regular",
    degrees=(2, 3, 4, 5),
    sizes=(16, 32),
    seeds=2,
    optimum="auto",
)


def test_api_sweep_cold(benchmark):
    report = benchmark.pedantic(
        api.run_sweep, args=(GRID,), rounds=1, iterations=1
    )
    emit(report.store.format_summary(title="bench — api.run_sweep (cold)"))
    assert len(report.records) == len(GRID.expand())
    assert all(r.ratio >= 1 for r in report.records if r.has_optimum)


def test_api_sweep_cache_served(benchmark, tmp_path):
    cache = ResultCache(tmp_path)
    cold = api.run_sweep(GRID, cache=cache)

    warm = benchmark.pedantic(
        api.run_sweep, args=(GRID,), kwargs={"cache": cache},
        rounds=1, iterations=1,
    )
    assert warm.cache_hits == len(cold.records)
    assert [r.canonical() for r in warm.records] == [
        r.canonical() for r in cold.records
    ]


def test_api_messages_measure(benchmark):
    report = benchmark.pedantic(
        api.run_sweep,
        args=(GRID,),
        kwargs={"measure": "messages", "sizes": (16,), "seeds": 1},
        rounds=1,
        iterations=1,
    )
    assert all(r.messages is not None for r in report.records)
    # central_greedy sends nothing; every simulated model sends something
    for record in report.records:
        if record.algorithm == "central_greedy":
            assert record.messages == 0
        else:
            assert record.messages > 0
