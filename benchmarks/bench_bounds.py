"""The certified-bounds perf trajectory: ν-sandwich vs blossom.

The bounds subsystem (PR 7) exists because the exact blossom matching
made the ``optimum`` phase the wall at scale: ~2.4 s per n=4096 unit
and minutes at n=16384 in E20.  This benchmark times the full certified
pipeline — greedy-plus-augmentation primal, multiplicative-weights dual
cover, and the exact-arithmetic certificate verification — against
``networkx`` blossom on the same random regular instances, asserts the
sandwich actually brackets the exact ν it replaces, and records the
gap so the speedup is never quoted without its accuracy cost.

Run as a script to emit the machine-readable trajectory artifact::

    PYTHONPATH=src python benchmarks/bench_bounds.py --out BENCH_bounds.json

CI uploads the JSON as a build artifact; the committed copy records the
container this PR was developed in.  The pytest entry points double as
the perf gate (sandwich + verify ≥ 20× faster than blossom on a d=4
n=4096 unit — measured ≥ 30×) and the soundness check at scale.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.bounds import nu_sandwich, verify_certificate
from repro.eds.bounds import maximum_matching_size
from repro.registry.families import get_family

from conftest import emit

#: Representative cells: the ``xlarge-regular`` degrees at the two
#: sizes E20/E21 care about.  Blossom is only timed where it finishes
#: in seconds (n=4096); at n=16384 the sandwich runs alone and the row
#: records the absolute cost of the certified interval at full scale.
UNITS = (
    {"d": 2, "n": 4096, "blossom": True},
    {"d": 4, "n": 4096, "blossom": True},
    {"d": 8, "n": 4096, "blossom": True},
    {"d": 2, "n": 16384, "blossom": False},
    {"d": 8, "n": 16384, "blossom": False},
)

REPS = 3


def _build(unit):
    return get_family("regular").make({"d": unit["d"], "n": unit["n"]}, 1)


def _time_sandwich(graph) -> tuple[float, object]:
    """Best-of-REPS wall time of sandwich + certificate verification —
    the full cost the engine pays per ``dual_bound`` unit."""
    best = float("inf")
    result = None
    for _ in range(REPS):
        started = time.perf_counter()
        result = nu_sandwich(graph, seed=0)
        verify_certificate(graph, result)
        best = min(best, time.perf_counter() - started)
    return best, result


def _time_blossom(graph) -> tuple[float, int]:
    best = float("inf")
    nu = 0
    for _ in range(REPS):
        fresh = graph.compiled()
        fresh.memo.pop("max_matching_nodes", None)
        started = time.perf_counter()
        nu = maximum_matching_size(graph)
        best = min(best, time.perf_counter() - started)
    return best, nu


def measure_units() -> dict:
    """Time every unit and assemble the trajectory."""
    rows = []
    for unit in UNITS:
        graph = _build(unit)
        sandwich_s, result = _time_sandwich(graph)
        row = {
            "d": unit["d"],
            "n": unit["n"],
            "nu_lower": result.lower,
            "nu_upper": result.upper,
            "gap": result.gap,
            "sandwich_s": round(sandwich_s, 6),
        }
        if unit["blossom"]:
            blossom_s, nu = _time_blossom(graph)
            assert result.lower <= nu <= result.upper, unit
            row["nu_exact"] = nu
            row["blossom_s"] = round(blossom_s, 6)
            row["speedup"] = round(blossom_s / sandwich_s, 1)
        rows.append(row)
    timed = [r["speedup"] for r in rows if "speedup" in r]
    return {
        "benchmark": "certified ν-sandwich vs blossom (xlarge-regular cells)",
        "reps_best_of": REPS,
        "units": rows,
        "summary": {
            "min_speedup_at_4096": min(timed),
            "max_speedup_at_4096": max(timed),
            "max_sandwich_s_at_16384": max(
                r["sandwich_s"] for r in rows if r["n"] == 16384
            ),
        },
    }


def format_table(payload: dict) -> str:
    lines = [
        "certified bounds: ν-sandwich + verify vs blossom (best of "
        f"{payload['reps_best_of']})",
        f"{'unit':22s} {'sandwich':>9s} {'blossom':>9s} {'speedup':>8s} "
        f"{'ν interval':>14s} {'gap':>5s}",
    ]
    for row in payload["units"]:
        label = f"regular d={row['d']} n={row['n']}"
        blossom = (
            f"{row['blossom_s'] * 1000:7.1f}ms" if "blossom_s" in row
            else f"{'—':>9s}"
        )
        speedup = (
            f"{row['speedup']:7.1f}x" if "speedup" in row else f"{'—':>8s}"
        )
        interval = f"[{row['nu_lower']}, {row['nu_upper']}]"
        lines.append(
            f"{label:22s} {row['sandwich_s'] * 1000:7.1f}ms {blossom} "
            f"{speedup} {interval:>14s} {row['gap']:5d}"
        )
    summary = payload["summary"]
    lines.append(
        f"n=4096 speedups: {summary['min_speedup_at_4096']:.1f}x – "
        f"{summary['max_speedup_at_4096']:.1f}x; worst n=16384 sandwich "
        f"{summary['max_sandwich_s_at_16384'] * 1000:.0f}ms"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_sandwich_beats_blossom_20x():
    """CI gate: the ISSUE acceptance threshold on the d=4 n=4096 unit.
    Measured ≥ 30× in the development container; 20× leaves headroom
    for shared-runner noise."""
    unit = {"d": 4, "n": 4096}
    graph = _build(unit)
    sandwich_s, result = _time_sandwich(graph)
    blossom_s, nu = _time_blossom(graph)
    assert result.lower <= nu <= result.upper
    emit(
        f"bounds gate regular d=4 n=4096: sandwich+verify="
        f"{sandwich_s * 1000:.1f} ms, blossom={blossom_s * 1000:.1f} ms "
        f"({blossom_s / sandwich_s:.1f}x), gap={result.gap}"
    )
    assert blossom_s / sandwich_s >= 20.0


def test_sandwich_under_5s_at_16384():
    """The ISSUE acceptance bound at full scale: optimum phase < 5 s per
    unit at the sizes where blossom took minutes (E20: ~172 s)."""
    graph = _build({"d": 8, "n": 16384})
    sandwich_s, result = _time_sandwich(graph)
    emit(
        f"bounds at scale regular d=8 n=16384: sandwich+verify="
        f"{sandwich_s:.3f} s, ν ∈ [{result.lower}, {result.upper}]"
    )
    assert sandwich_s < 5.0
    assert result.lower <= result.upper


def ledger_entries(payload: dict):
    """The bench rows as perf-ledger entries: sandwich vs blossom.

    Per-unit times become pseudo-phases so ``repro-eds perf compare``
    flags regressions unit by unit within each method's trajectory.
    """
    import platform

    from repro.obs.perf import LedgerEntry, git_sha

    sha = git_sha()
    stamp = time.time()
    entries = []
    for engine, key in (("sandwich", "sandwich_s"), ("blossom", "blossom_s")):
        phases = {
            f"regular d={row['d']} n={row['n']}": row[key]
            for row in payload["units"]
            if row.get(key) is not None
        }
        if not phases:
            continue
        entries.append(LedgerEntry(
            scenario="bench:bounds",
            engine=engine,
            phases=phases,
            unit_wall_s=sum(phases.values()),
            units=len(phases),
            reps=payload["reps_best_of"],
            git_sha=sha,
            recorded_unix=stamp,
            python=platform.python_version(),
        ))
    return entries


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_bounds.json",
        help="where to write the machine-readable trajectory",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="also append one perf-ledger entry per method "
        "(see `repro-eds perf`)",
    )
    args = parser.parse_args()
    payload = measure_units()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(format_table(payload))
    print(f"wrote {args.out}")
    if args.ledger:
        from repro.obs.perf import append_entry

        entries = ledger_entries(payload)
        for entry in entries:
            append_entry(args.ledger, entry)
        print(f"appended {len(entries)} ledger entr(ies) to {args.ledger}")
