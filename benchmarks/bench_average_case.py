"""E12 — average-case approximation quality on random graphs.

The worst-case-tight algorithms do much better than their guarantees on
typical inputs; the identified baseline shows what unique IDs buy.  All
optima are exact (small instances), so the ratios are true ratios.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis.runner import run_on, standard_algorithms
from repro.experiments.sweeps import average_case_sweep, format_average_case
from repro.generators import random_bounded_degree, random_regular

from conftest import emit


@pytest.mark.parametrize("name", ["port_one", "bounded_degree", "ids_greedy"])
def test_single_run_regular(benchmark, name):
    graph = random_regular(4, 12, seed=4)
    spec = standard_algorithms()[name]
    row = benchmark(run_on, spec, graph, graph_label="d=4 n=12")
    assert row.ratio >= 1


@pytest.mark.parametrize("name", ["regular_odd", "bounded_degree"])
def test_single_run_odd_regular(benchmark, name):
    graph = random_regular(3, 12, seed=3)
    spec = standard_algorithms()[name]
    row = benchmark(run_on, spec, graph, graph_label="d=3 n=12")
    assert row.ratio >= 1


@pytest.mark.parametrize("delta", (3, 4))
def test_single_run_bounded(benchmark, delta):
    graph = random_bounded_degree(12, delta, seed=delta)
    spec = standard_algorithms()["bounded_degree"]
    row = benchmark(run_on, spec, graph, graph_label=f"Δ={delta}")
    k = max(delta, 2) // 2
    assert row.ratio <= Fraction(4) - Fraction(1, k)


def test_print_sweep(benchmark):
    rows = benchmark.pedantic(
        average_case_sweep,
        kwargs={
            "regular_degrees": (3, 4, 5),
            "regular_size": 12,
            "bounded_deltas": (3, 4),
            "bounded_size": 12,
            "instances": 3,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_average_case(rows))
    assert all(row.ratio >= 1 for row in rows)
    assert all(row.optimum_exact for row in rows)
