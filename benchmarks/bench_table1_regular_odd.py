"""E2 — Table 1, odd-degree rows: Theorem 4 vs Theorem 2.

Regenerates the ``d-regular, d odd: 4 - 6/(d+1)`` rows by running the
O(d²) two-phase algorithm on the Theorem 2 adversarial construction.
"""

from __future__ import annotations

import pytest

from repro.algorithms import RegularOddEDS
from repro.eds import regular_ratio
from repro.experiments.table1 import format_table1, reproduce_table1
from repro.lowerbounds import build_odd_lower_bound, run_adversary

from conftest import emit

ODD_DEGREES = (1, 3, 5, 7, 9)


@pytest.mark.parametrize("d", ODD_DEGREES)
def test_odd_row(benchmark, d):
    instance = build_odd_lower_bound(d)

    report = benchmark.pedantic(
        run_adversary, args=(instance, RegularOddEDS), rounds=2, iterations=1
    )

    assert report.feasible
    assert report.fibres_uniform
    assert report.ratio == regular_ratio(d) == instance.forced_ratio
    assert report.is_tight
    assert report.rounds == RegularOddEDS.total_rounds(d)


@pytest.mark.parametrize("d", (3, 5))
def test_construction_cost(benchmark, d):
    """Building + verifying the Theorem 2 instance (2-factorisations,
    quotient, covering map)."""
    instance = benchmark(build_odd_lower_bound, d)
    assert instance.graph.regularity() == d


def test_print_odd_rows(benchmark):
    rows = benchmark.pedantic(
        reproduce_table1,
        kwargs={"even_degrees": (), "odd_degrees": ODD_DEGREES, "ks": ()},
        rounds=1,
        iterations=1,
    )
    emit(format_table1(rows))
    assert all(r.tight for r in rows)
