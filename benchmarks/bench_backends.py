"""Execution-backend smoke: inline must beat process fan-out on tiny units.

Pool startup is a fixed tax (interpreter spawn + catalogue reload per
worker); on a grid of sub-5 ms units it dominates the whole run, which
is exactly why the engine grew an inline backend and the ``auto``
calibrator.  Each benchmark times one backend over the same tiny grid
and asserts the determinism contract (identical records everywhere).
"""

from __future__ import annotations

import time

import pytest

from repro.api import run_sweep
from repro.engine import SweepGrid

from conftest import emit

TINY = SweepGrid(
    name="bench-backends",
    algorithms=("port_one", "bounded_degree"),
    family="regular",
    degrees=(2, 3),
    sizes=(12, 16),
    seeds=2,
    optimum="none",  # keep units well under the 5 ms threshold
)

BASELINE = [r.canonical() for r in run_sweep(TINY, backend="inline").records]


@pytest.mark.parametrize("backend", ["inline", "thread", "process", "auto"])
def test_backend(benchmark, backend):
    report = benchmark.pedantic(
        lambda: run_sweep(TINY, workers=2, backend=backend),
        rounds=3, iterations=1,
    )
    assert [r.canonical() for r in report.records] == BASELINE


def test_inline_beats_process_on_tiny_units():
    """The ISSUE acceptance criterion, measured: on a sub-5 ms/unit
    grid, pool startup makes the process backend strictly slower than
    zero-overhead serial execution."""
    timings = {}
    for backend in ("inline", "process"):
        best = min(
            _timed(lambda: run_sweep(TINY, workers=2, backend=backend))
            for _ in range(3)
        )
        timings[backend] = best
    emit(
        "backend smoke (tiny units, best of 3): "
        + ", ".join(f"{k}={v * 1000:.1f} ms" for k, v in timings.items())
    )
    assert timings["inline"] < timings["process"]


def _timed(thunk) -> float:
    started = time.perf_counter()
    thunk()
    return time.perf_counter() - started
