"""Shared helpers for the benchmark harness.

Every benchmark asserts the paper-facing correctness property of the
workload it times, so ``pytest benchmarks/ --benchmark-only`` doubles as
an end-to-end reproduction run.  Run with ``-s`` to see the regenerated
tables on stdout; EXPERIMENTS.md records them.
"""

from __future__ import annotations

def emit(text: str) -> None:
    """Print a regenerated table (visible with pytest -s)."""
    print("\n" + text + "\n")
