"""E3 — Table 1, bounded-degree rows: Theorem 5 vs Corollary 1.

For Δ ∈ {2k, 2k+1}, runs A(Δ) on the Theorem 1 construction with d = 2k
(the instance behind Corollary 1); the measured ratio must be exactly
``4 - 1/k`` for both parities.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import BoundedDegreeEDS
from repro.eds import bounded_degree_ratio
from repro.experiments.table1 import format_table1, reproduce_table1
from repro.lowerbounds import build_even_lower_bound, run_adversary

from conftest import emit

KS = (1, 2, 3, 4, 5)


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("parity", (0, 1))
def test_bounded_row(benchmark, k, parity):
    delta = 2 * k + parity
    instance = build_even_lower_bound(2 * k)

    report = benchmark.pedantic(
        run_adversary,
        args=(instance, BoundedDegreeEDS(delta)),
        rounds=2,
        iterations=1,
    )

    assert report.feasible
    assert report.fibres_uniform
    assert report.ratio == bounded_degree_ratio(delta)
    assert report.ratio == Fraction(4) - Fraction(1, k)


def test_print_bounded_rows(benchmark):
    rows = benchmark.pedantic(
        reproduce_table1,
        kwargs={"even_degrees": (), "odd_degrees": (), "ks": KS},
        rounds=1,
        iterations=1,
    )
    emit(format_table1(rows))
    assert all(r.tight for r in rows)
