"""The graph-construction perf trajectory: direct-to-CSR vs networkx.

After the vector engine (PR 8) and certified bounds (PR 7), profiling
showed ``graph_build`` at 80.8% of xlarge wall time: every family
routed networkx → edge dicts → ``from_networkx`` →
``CompiledGraph.__init__`` walking Python dicts.  The direct path
(PR 10) emits the compiled arrays straight from the generator — the
structured families replay the *same* numbering coins (byte-identical
output, pinned by ``tests/test_direct_csr.py``), and the pairing-model
``pairing_regular`` family replaces networkx's regular sampler with an
O(nd) streaming construction.

This benchmark times both routes cold on the same cells, plus the
direct-only million-node cells that have no networkx counterpart worth
waiting for.  Run as a script to emit the committed artifact::

    PYTHONPATH=src python benchmarks/bench_graph_build.py \
        --out BENCH_graphbuild.json

CI uploads the JSON as a build artifact; the committed copy records the
container this PR was developed in.  The pytest entry points double as
the perf gates (direct ≥ 5× over networkx on the d-regular slice —
measured ≥ 16×; structured families ≥ 2× — they replay identical
numbering coins, so the win is the dict walk only; n=10^6 build in
seconds).
"""

from __future__ import annotations

import argparse
import json
import time

from repro.generators.bounded import grid, path
from repro.generators.pairing import pairing_regular
from repro.generators.regular import (
    complete,
    complete_bipartite,
    cycle,
    hypercube,
    random_regular,
    torus,
)
from repro.portgraph.numbering import random_numbering

from conftest import emit

#: Structured families: the direct path must replay the networkx
#: route's numbering coins exactly, so its win is bounded by the RNG
#: replay — these rows quantify the dict-walk overhead it removes.
STRUCTURED = (
    ("cycle n=16384", cycle, (16384,)),
    ("complete n=512", complete, (512,)),
    ("complete_bipartite 128x128", complete_bipartite, (128, 128)),
    ("hypercube dim=13", hypercube, (13,)),
    ("torus 128x128", torus, (128, 128)),
    ("path n=16384", path, (16384,)),
    ("grid 128x128", grid, (128, 128)),
)

#: The d-regular slice that dominated xlarge-regular's graph_build
#: phase: networkx's exact-uniform sampler vs the pairing model.
REGULAR = ((4, 4096), (4, 16384), (8, 16384))

#: Direct-only million-node cells (the ``huge-regular`` scenario);
#: networkx is minutes-per-graph here, so only the direct path is timed.
HUGE = ((2, 1048576), (4, 1048576), (8, 1048576))

REPS = 3
SEED = 1


def _best_of(fn, reps=REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure_units() -> dict:
    """Time every cell, both routes, cold each rep."""
    rows = []
    for label, build, args in STRUCTURED:
        direct_s = _best_of(lambda: build(*args, seed=SEED))
        nx_s = _best_of(
            lambda: build(*args, seed=SEED, numbering=random_numbering(SEED))
        )
        graph = build(*args, seed=SEED)
        rows.append({
            "unit": label, "kind": "structured",
            "n": graph.num_nodes, "edges": graph.num_edges,
            "direct_s": round(direct_s, 6), "networkx_s": round(nx_s, 6),
            "speedup": round(nx_s / direct_s, 1),
        })
    for d, n in REGULAR:
        direct_s = _best_of(lambda: pairing_regular(d, n, seed=SEED))
        nx_s = _best_of(lambda: random_regular(d, n, seed=SEED))
        rows.append({
            "unit": f"regular d={d} n={n}", "kind": "regular",
            "n": n, "edges": n * d // 2,
            "direct_s": round(direct_s, 6), "networkx_s": round(nx_s, 6),
            "speedup": round(nx_s / direct_s, 1),
        })
    for d, n in HUGE:
        direct_s = _best_of(lambda: pairing_regular(d, n, seed=SEED), reps=1)
        rows.append({
            "unit": f"pairing_regular d={d} n={n}", "kind": "huge",
            "n": n, "edges": n * d // 2,
            "direct_s": round(direct_s, 6), "networkx_s": None,
            "speedup": None,
        })
    regular_speedups = [r["speedup"] for r in rows if r["kind"] == "regular"]
    return {
        "benchmark": "graph construction: direct-to-CSR vs networkx (cold)",
        "reps_best_of": REPS,
        "units": rows,
        "summary": {
            "min_regular_speedup": min(regular_speedups),
            "max_regular_speedup": max(regular_speedups),
            # The ISSUE acceptance line: graph_build on the
            # xlarge-regular slice (d=4, n=16384) reduced ≥ 10×.
            "xlarge_graph_build_speedup": next(
                r["speedup"] for r in rows
                if r["unit"] == "regular d=4 n=16384"
            ),
            "max_direct_s_at_1m_nodes": max(
                r["direct_s"] for r in rows if r["kind"] == "huge"
            ),
        },
    }


def format_table(payload: dict) -> str:
    lines = [
        "graph construction: direct-to-CSR vs networkx (best of "
        f"{payload['reps_best_of']}, cold)",
        f"{'unit':28s} {'edges':>8s} {'direct':>9s} {'networkx':>9s} "
        f"{'speedup':>8s}",
    ]
    for row in payload["units"]:
        nx_col = (
            f"{row['networkx_s'] * 1000:7.1f}ms"
            if row["networkx_s"] is not None else f"{'—':>9s}"
        )
        speedup = (
            f"{row['speedup']:7.1f}x" if row["speedup"] is not None
            else f"{'—':>8s}"
        )
        lines.append(
            f"{row['unit']:28s} {row['edges']:8d} "
            f"{row['direct_s'] * 1000:7.1f}ms {nx_col} {speedup}"
        )
    summary = payload["summary"]
    lines.append(
        f"regular slice speedups: {summary['min_regular_speedup']:.1f}x – "
        f"{summary['max_regular_speedup']:.1f}x; xlarge graph_build "
        f"{summary['xlarge_graph_build_speedup']:.1f}x; worst n=10^6 build "
        f"{summary['max_direct_s_at_1m_nodes']:.2f}s"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_direct_beats_networkx_5x_on_regular_slice():
    """CI gate: the ISSUE threshold on a d-regular slice.  Measured
    16-19× in the development container; 5× leaves headroom for
    shared-runner noise."""
    direct_s = _best_of(lambda: pairing_regular(4, 4096, seed=SEED))
    nx_s = _best_of(lambda: random_regular(4, 4096, seed=SEED))
    emit(
        f"graph-build gate d=4 n=4096: direct={direct_s * 1000:.1f} ms, "
        f"networkx={nx_s * 1000:.1f} ms ({nx_s / direct_s:.1f}x)"
    )
    assert nx_s / direct_s >= 5.0


def test_structured_direct_wins_despite_identical_coins():
    """The structured families replay the networkx path's numbering RNG
    byte for byte, so their ceiling is the removed dict walk — still
    ≥ 2× on a torus (measured ~5×)."""
    direct_s = _best_of(lambda: torus(128, 128, seed=SEED))
    nx_s = _best_of(
        lambda: torus(128, 128, seed=SEED, numbering=random_numbering(SEED))
    )
    emit(
        f"graph-build structured torus 128x128: direct="
        f"{direct_s * 1000:.1f} ms, networkx={nx_s * 1000:.1f} ms "
        f"({nx_s / direct_s:.1f}x)"
    )
    assert nx_s / direct_s >= 2.0


def test_million_node_build_in_seconds():
    """The headline the huge-regular scenario rests on: n=10^6, d=4 in
    seconds (measured ~3.6 s; the bound is generous for CI runners)."""
    started = time.perf_counter()
    graph = pairing_regular(4, 1_000_000, seed=SEED)
    elapsed = time.perf_counter() - started
    emit(f"graph-build pairing d=4 n=10^6: {elapsed:.2f} s")
    assert graph.num_edges == 2_000_000
    assert elapsed < 60.0


def ledger_entries(payload: dict):
    """The bench rows as perf-ledger entries, one per route.

    Per-unit times become pseudo-phases so ``repro-eds perf compare``
    flags graph-construction regressions cell by cell."""
    import platform

    from repro.obs.perf import LedgerEntry, git_sha

    sha = git_sha()
    stamp = time.time()
    entries = []
    for engine, key in (("direct", "direct_s"), ("networkx", "networkx_s")):
        phases = {
            row["unit"]: row[key]
            for row in payload["units"]
            if row.get(key) is not None
        }
        if not phases:
            continue
        entries.append(LedgerEntry(
            scenario="bench:graph-build",
            engine=engine,
            phases=phases,
            unit_wall_s=sum(phases.values()),
            units=len(phases),
            reps=payload["reps_best_of"],
            git_sha=sha,
            recorded_unix=stamp,
            python=platform.python_version(),
        ))
    return entries


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="BENCH_graphbuild.json",
        help="where to write the machine-readable trajectory",
    )
    parser.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="also append one perf-ledger entry per route "
        "(see `repro-eds perf`)",
    )
    args = parser.parse_args()
    payload = measure_units()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(format_table(payload))
    print(f"wrote {args.out}")
    if args.ledger:
        from repro.obs.perf import append_entry

        entries = ledger_entries(payload)
        for entry in entries:
            append_entry(args.ledger, entry)
        print(f"appended {len(entries)} ledger entr(ies) to {args.ledger}")
