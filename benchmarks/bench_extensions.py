"""Extension benchmarks: the [21] double-cover subroutine standalone,
its vertex-cover corollary, the weighted exact solver, and the
randomised matching (private coins vs the deterministic impossibility).
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.double_cover import (
    DominatingTwoMatching,
    three_approx_vertex_cover,
)
from repro.algorithms.randomized import RandomizedMaximalMatching
from repro.eds import is_edge_dominating_set
from repro.eds.weighted import minimum_weight_eds, total_weight
from repro.generators import cycle, random_regular
from repro.matching import is_k_matching, is_maximal_matching
from repro.portgraph.numbering import factor_pairing_numbering
from repro.runtime import run_anonymous
from repro.runtime.randomized import run_randomized


@pytest.mark.parametrize("n", (50, 200))
def test_double_cover_two_matching(benchmark, n):
    graph = random_regular(4, n, seed=n)
    result = benchmark(run_anonymous, graph, DominatingTwoMatching(4))
    p = result.edge_set()
    assert is_k_matching(p, 2)
    assert is_edge_dominating_set(graph, p)
    assert result.rounds == 8


@pytest.mark.parametrize("n", (30, 100))
def test_vertex_cover_three_approx(benchmark, n):
    graph = random_regular(3, n, seed=n)
    cover = benchmark(three_approx_vertex_cover, graph)
    for e in graph.edges:
        assert e.endpoints & cover


@pytest.mark.parametrize("n", (8, 12))
def test_weighted_exact_solver(benchmark, n):
    graph = random_regular(3, n, seed=n)
    rng = random.Random(n)
    weights = {e: rng.uniform(0.5, 4.0) for e in graph.edges}
    exact = benchmark.pedantic(
        minimum_weight_eds, args=(graph, weights), rounds=2, iterations=1
    )
    assert is_edge_dominating_set(graph, exact)
    assert total_weight(exact, weights) > 0


@pytest.mark.parametrize("n", (32, 128))
def test_randomized_matching_on_symmetric_cycle(benchmark, n):
    """The case deterministic anonymity provably cannot solve (§1.4)."""
    graph = cycle(n, numbering=factor_pairing_numbering)
    result = benchmark(
        run_randomized, graph, RandomizedMaximalMatching, seed=n
    )
    assert is_maximal_matching(graph, result.edge_set())
