"""E14 — covering-map indistinguishability at scale (§2.3).

Times random k-fold lifts plus the lifted-output verification for all
three algorithms of the paper.
"""

from __future__ import annotations

import pytest

from repro.algorithms import BoundedDegreeEDS, PortOneEDS, RegularOddEDS
from repro.generators import petersen, random_regular
from repro.portgraph import random_lift
from repro.runtime import run_anonymous


def lift_and_check(base, algorithm, fold, seed):
    lift, f = random_lift(base, fold, seed=seed)
    base_run = run_anonymous(base, algorithm)
    lift_run = run_anonymous(lift, algorithm)
    mismatches = sum(
        1 for v in lift.nodes if lift_run.outputs[v] != base_run.outputs[f[v]]
    )
    return lift, mismatches


@pytest.mark.parametrize("fold", (2, 4, 8))
def test_port_one_lifts(benchmark, fold):
    base = petersen(seed=1)
    lift, mismatches = benchmark(lift_and_check, base, PortOneEDS, fold, fold)
    assert mismatches == 0
    assert lift.num_nodes == 10 * fold


@pytest.mark.parametrize("fold", (2, 4))
def test_regular_odd_lifts(benchmark, fold):
    base = random_regular(3, 8, seed=5)
    _, mismatches = benchmark.pedantic(
        lift_and_check,
        args=(base, RegularOddEDS, fold, fold),
        rounds=2,
        iterations=1,
    )
    assert mismatches == 0


@pytest.mark.parametrize("fold", (2, 4))
def test_bounded_degree_lifts(benchmark, fold):
    base = random_regular(4, 9, seed=6)
    _, mismatches = benchmark.pedantic(
        lift_and_check,
        args=(base, BoundedDegreeEDS(4), fold, fold),
        rounds=2,
        iterations=1,
    )
    assert mismatches == 0
