"""E17 — message complexity of the three algorithms.

Times the traced runs, now routed through the engine's ``messages``
measure (shardable and cacheable like any other units).  The structural
expectations (PortOne sends exactly 2|E| messages; setup rounds are the
traffic peak) are pinned in tests/test_messages_experiment.py; per-node
traffic independence of n is asserted here.
"""

from __future__ import annotations


from repro.experiments.messages import (
    format_messages,
    message_complexity_sweep,
)

from conftest import emit


def test_message_sweep(benchmark):
    rows = benchmark.pedantic(
        message_complexity_sweep,
        kwargs={"odd_degrees": (3, 5), "sizes": (16, 32, 64)},
        rounds=1,
        iterations=1,
    )
    emit(format_messages(rows))
    per_node = {}
    for r in rows:
        per_node.setdefault((r.algorithm, r.d), []).append(
            r.messages_per_node
        )
    for values in per_node.values():
        assert max(values) - min(values) < 0.3 * max(values), (
            "per-node traffic must be (nearly) independent of n"
        )
