"""E4 — the Table 1 "Time" column: measured round complexity.

Theorem 3 runs in exactly 1 round; Theorem 4 in 2 + 2d²; Theorem 5 in
2Δ'² + 4Δ' — all independent of n.  The benchmark times the simulation
while the assertions pin the round counts to the closed forms.
"""

from __future__ import annotations

import pytest

from repro.algorithms import BoundedDegreeEDS, PortOneEDS, RegularOddEDS
from repro.experiments.sweeps import (
    format_round_complexity,
    round_complexity_sweep,
)
from repro.generators import random_regular
from repro.runtime import run_anonymous

from conftest import emit


@pytest.mark.parametrize("n", (16, 64, 256))
def test_port_one_constant_rounds(benchmark, n):
    graph = random_regular(4, n, seed=n)
    result = benchmark(run_anonymous, graph, PortOneEDS)
    assert result.rounds == 1


@pytest.mark.parametrize("d", (3, 5, 7))
def test_regular_odd_quadratic_rounds(benchmark, d):
    graph = random_regular(d, 4 * d + 4, seed=d)
    result = benchmark.pedantic(
        run_anonymous, args=(graph, RegularOddEDS), rounds=2, iterations=1
    )
    assert result.rounds == 2 + 2 * d * d


@pytest.mark.parametrize("delta", (3, 5, 7))
def test_bounded_quadratic_rounds(benchmark, delta):
    graph = random_regular(delta, 4 * delta + 4, seed=delta)
    factory = BoundedDegreeEDS(delta)
    result = benchmark.pedantic(
        run_anonymous, args=(graph, factory), rounds=2, iterations=1
    )
    assert result.rounds == factory.total_rounds()


@pytest.mark.parametrize("n", (16, 64, 256))
def test_rounds_independent_of_size(benchmark, n):
    """The local-algorithm claim: same rounds at any n (wall-clock grows,
    round count does not)."""
    graph = random_regular(3, n, seed=n)
    result = benchmark.pedantic(
        run_anonymous, args=(graph, RegularOddEDS), rounds=2, iterations=1
    )
    assert result.rounds == RegularOddEDS.total_rounds(3)


def test_print_sweep(benchmark):
    rows = benchmark.pedantic(
        round_complexity_sweep,
        kwargs={"odd_degrees": (1, 3, 5, 7), "sizes": (16, 32, 64)},
        rounds=1,
        iterations=1,
    )
    emit(format_round_complexity(rows))
    assert all(r.matches_prediction for r in rows)
