"""Scenario: link monitoring in an anonymous sensor grid.

A wireless sensor deployment is laid out as an n×m grid; every radio link
should be observable by a *monitored* link adjacent to it (sharing a
sensor), so that a monitor sees all traffic passing "next to" it.  The
smallest such set of monitored links is exactly a minimum edge dominating
set.

The twist motivating the paper: cheap sensors have no unique hardware
identifiers — each one only knows how many neighbours it has and can tell
its own radio interfaces apart (ports 1..deg).  That is precisely the
port-numbering model, and A(Δ) gives a provably near-optimal monitoring
set in O(Δ²) communication rounds regardless of how large the field is.

Run with::

    python examples/sensor_network.py
"""

from __future__ import annotations

from repro import (
    BoundedDegreeEDS,
    GreedyMaximalMatchingIds,
    is_edge_dominating_set,
    run_anonymous,
    run_identified,
)
from repro.analysis import measure_ratio
from repro.generators import grid


def monitor_field(rows: int, cols: int) -> None:
    field = grid(rows, cols, seed=42)
    delta = field.max_degree  # 4 for interior sensors
    print(f"\nsensor field {rows}x{cols}: {field.num_nodes} sensors, "
          f"{field.num_edges} radio links, max degree {delta}")

    # Anonymous deployment: A(Δ) needs only the degree promise.
    anonymous = run_anonymous(field, BoundedDegreeEDS(delta))
    monitored = anonymous.edge_set()
    assert is_edge_dominating_set(field, monitored)
    report = measure_ratio(field, monitored, exact_edge_limit=40)
    bound_kind = "optimum" if report.exact else "lower bound"
    print(f"  anonymous A({delta}):   {len(monitored):3d} monitored links, "
          f"{anonymous.rounds} rounds; {bound_kind} {report.optimum} "
          f"-> ratio <= {float(report.ratio):.3f}")

    # What would unique serial numbers buy?  The ID-based greedy maximal
    # matching is a 2-approximation but needs O(n) rounds in the worst
    # case and stronger hardware assumptions.
    identified = run_identified(field, GreedyMaximalMatchingIds)
    with_ids = identified.edge_set()
    assert is_edge_dominating_set(field, with_ids)
    print(f"  with unique IDs:  {len(with_ids):3d} monitored links, "
          f"{identified.rounds} rounds (greedy maximal matching)")


def main() -> None:
    print("link monitoring = edge dominating set, on anonymous hardware")
    for rows, cols in ((3, 4), (5, 6), (8, 10)):
        monitor_field(rows, cols)
    print(
        "\nNote how the anonymous algorithm's round count is constant "
        "across field sizes\n(it depends only on Δ), while the ID-based "
        "baseline's rounds grow with the field."
    )


if __name__ == "__main__":
    main()
