"""Tutorial: writing your own anonymous distributed algorithm.

The library is a general harness for the port-numbering model, not just
the paper's three algorithms.  This walk-through builds a new node
program on top of the Section 5 machinery: a *distinguishable-edge
cover* — every node that has a distinguishable neighbour selects that
edge.  On odd-regular graphs Lemma 1 guarantees this covers every node,
so it is a (crude) edge dominating set; comparing it with Theorem 4's
two-phase algorithm shows what the paper's extra machinery buys.

The example demonstrates the three integration points:

* subclass :class:`repro.algorithms.base.LabelAwareProgram` to inherit
  the two setup rounds (label pairs, distinguishable port, M(i, j) tags);
* implement ``algo_send`` / ``algo_receive`` with a rebased round
  counter;
* hand the class to :func:`repro.runtime.run_anonymous` — the class
  itself is the anonymous factory.

Run with::

    python examples/custom_algorithm.py
"""

from __future__ import annotations

from repro import RegularOddEDS, is_edge_dominating_set, run_anonymous
from repro.algorithms.base import LabelAwareProgram
from repro.analysis import measure_ratio
from repro.generators import random_regular


class DistinguishableEdgeCover(LabelAwareProgram):
    """Select my distinguishable edge (both endpoints must agree).

    An edge joins the output iff it is the distinguishable edge of at
    least one endpoint — exactly the union of all M(i, j), computed in
    one extra round: after the built-in setup I already know whether
    each incident edge is my distinguishable edge *or* my neighbour
    declared it (the ``m_port_tags`` computed by the base class), so I
    can halt immediately.
    """

    def algo_send(self, step):
        return {}

    def algo_receive(self, step, inbox):
        selected = {
            port for port, tags in self.m_port_tags.items() if tags
        }
        self.halt(selected)


def main() -> None:
    print("a custom algorithm in ~10 lines: the distinguishable-edge cover\n")
    for d, n in ((3, 16), (5, 24), (7, 32)):
        graph = random_regular(d, n, seed=d * n)

        custom = run_anonymous(graph, DistinguishableEdgeCover)
        cover = custom.edge_set()
        assert is_edge_dominating_set(graph, cover), (
            "Lemma 1 makes this a cover on odd-regular graphs"
        )

        paper = run_anonymous(graph, RegularOddEDS)
        tuned = paper.edge_set()

        crude = measure_ratio(graph, cover, exact_edge_limit=40)
        good = measure_ratio(graph, tuned, exact_edge_limit=40)
        print(
            f"d={d}, n={n}: crude cover {len(cover):3d} edges "
            f"(ratio <= {float(crude.ratio):.3f}, {custom.rounds} rounds)  "
            f"vs Theorem 4 {len(tuned):3d} edges "
            f"(ratio <= {float(good.ratio):.3f}, {paper.rounds} rounds)"
        )

    print(
        "\nThe crude cover is feasible but redundant; Theorem 4's"
        " sequential M(i, j)\nprocessing and pruning phase are what earn"
        " the tight 4 - 6/(d+1) bound."
    )


if __name__ == "__main__":
    main()
