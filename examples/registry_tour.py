"""Tutorial: the plugin registry and the one-stop ``repro.api`` façade.

The paper's experiments are a cross-product of algorithms × graph
families × measures; ``repro.registry`` makes every axis pluggable.
This walkthrough registers one of each —

* a **custom algorithm** (``lazy_matching``: the identified-model greedy
  baseline re-registered under a promise-free name),
* a **custom graph family** (``concentric_cycles``: two concentric
  cycles joined by spokes, built from the stock generators),
* a **custom measure** (``edge_economy``: what fraction of the graph's
  edges the solution spends)

— and then runs the full cross-product through ``repro.api`` without
touching any engine internals.  Everything registered here is equally
reachable from the CLI (``repro-eds sweep --algorithms ... --measure
...``) and is cached under the same content addresses.

Note that the registrations happen at **module import time**, not
inside a function: engine work units record which modules registered
their entries, so ``--workers N`` processes can re-import this module
and find the plugins even under the ``spawn`` multiprocessing start
method.

Run with::

    python examples/registry_tour.py
"""

from __future__ import annotations

import networkx as nx

from repro import api
from repro.algorithms.maximal_matching_ids import GreedyMaximalMatchingIds
from repro.engine import JobSpec
from repro.generators.regular import cycle
from repro.portgraph.convert import from_networkx, to_simple_networkx
from repro.registry import (
    Measure,
    register_graph_family,
    register_identified,
    register_measure,
)

# 1. an algorithm: model + name + factory; params would go alongside
register_identified(
    "lazy_matching",
    lambda graph: GreedyMaximalMatchingIds,
    description="greedy maximal matching, re-registered as a plugin",
)


# 2. a graph family: (params, seed) -> graph, addressable as data
@register_graph_family("concentric_cycles", params=("n",))
def build_concentric_cycles(params, seed):
    inner = to_simple_networkx(cycle(params["n"], seed=seed))
    outer = nx.relabel_nodes(inner, {v: f"outer-{v}" for v in inner.nodes})
    both = nx.union(inner, outer)
    for v in inner.nodes:
        both.add_edge(v, f"outer-{v}")
    return from_networkx(both)


# 3. a measure: measure(graph, run) -> record-field overrides;
#    unknown keys land in the record's `extra` mapping
@register_measure
class EdgeEconomy(Measure):
    name = "edge_economy"

    def measure(self, graph, run):
        return {
            "edge_economy_pct": round(
                100 * len(run.edge_set) / graph.num_edges, 1
            )
        }


def main() -> None:
    # one unit: custom algorithm x custom family x custom measure
    record = api.run_one(
        "lazy_matching",
        api.graph("concentric_cycles", n=8, seed=1),
        measure="edge_economy",
    )
    assert record.graph_family == "concentric_cycles"
    economy = record.extra["edge_economy_pct"]
    print(
        f"lazy_matching on concentric_cycles(n=8): "
        f"|D| = {record.solution_size} of m = {record.num_edges} edges "
        f"({economy}% spent)"
    )

    # the same names drop straight into a declarative engine sweep —
    # mixed with the paper's algorithms and the built-in messages measure
    report = api.run_sweep(
        [
            JobSpec(
                algorithm=algorithm,
                graph=api.graph("concentric_cycles", n=6, seed=2),
                measure="messages",
            )
            for algorithm in ("lazy_matching", "port_one",
                              "randomized_matching")
        ]
    )
    print("\nmessage complexity on concentric_cycles(n=6):")
    for rec in report.records:
        print(
            f"  {rec.algorithm:<20} rounds={rec.rounds:<4} "
            f"messages={rec.messages}"
        )

    # randomised runs are data: the same unit always replays the same
    # coins (the RNG seed is derived from the unit's content hash)
    first = api.run_one(
        "randomized_matching", api.graph("concentric_cycles", n=6, seed=2),
        measure="messages",
    )
    again = api.run_one(
        "randomized_matching", api.graph("concentric_cycles", n=6, seed=2),
        measure="messages",
    )
    assert first.canonical() == again.canonical()
    print("\nrandomised reruns are byte-identical: True")


if __name__ == "__main__":
    main()
