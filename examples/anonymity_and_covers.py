"""Covering maps: what anonymous networks fundamentally cannot see.

Paper §2.3 in action.  A deterministic anonymous algorithm run on a graph
H and on any graph G it covers produces *lifted* outputs: node v of H
answers exactly what f(v) answers in G.  Consequences demonstrated here:

1. a 6-cycle, a 9-cycle and a 3000-cycle are indistinguishable from a
   single self-looped node — so no anonymous deterministic algorithm can
   find a maximal matching in a symmetric cycle (it would have to select
   either every edge or none);
2. random k-fold lifts of any graph reproduce the base's outputs sheet
   by sheet;
3. this is exactly the lever the paper's lower bounds pull.

Run with::

    python examples/anonymity_and_covers.py
"""

from __future__ import annotations

from repro import (
    PortGraphBuilder,
    PortOneEDS,
    from_networkx,
    random_lift,
    run_anonymous,
    verify_covering_map,
)
from repro.generators import petersen
from repro.portgraph.numbering import factor_pairing_numbering

import networkx as nx


def cycles_cover_a_point() -> None:
    print("1. all symmetric cycles cover the same one-node multigraph")
    base_builder = PortGraphBuilder()
    base_builder.add_node("x", 2)
    base_builder.connect("x", 1, "x", 2)
    point = base_builder.build()

    base_result = run_anonymous(point, PortOneEDS)
    print(f"   one-node base: output X(x) = {sorted(base_result.outputs['x'])}")

    for n in (6, 9, 30):
        cycle = from_networkx(nx.cycle_graph(n), factor_pairing_numbering)
        f = {v: "x" for v in cycle.nodes}
        verify_covering_map(cycle, point, f)
        result = run_anonymous(cycle, PortOneEDS)
        outputs = {result.outputs[v] for v in cycle.nodes}
        assert outputs == {base_result.outputs["x"]}
        selected = len(result.edge_set())
        print(f"   C_{n}: every node outputs the same set; "
              f"|D| = {selected} = n (the whole cycle)")
    print("   -> an anonymous algorithm on a symmetric cycle selects all "
          "edges or none;\n      a maximal matching (which needs ~n/2 "
          "edges) is impossible. [cf. §1.4]")


def random_lifts_lift_outputs() -> None:
    print("\n2. outputs lift along random covering maps")
    base = petersen(seed=7)
    base_result = run_anonymous(base, PortOneEDS)
    for fold in (2, 3, 5):
        lift, f = random_lift(base, fold, seed=fold)
        lift_result = run_anonymous(lift, PortOneEDS)
        mismatches = sum(
            1
            for v in lift.nodes
            if lift_result.outputs[v] != base_result.outputs[f[v]]
        )
        print(f"   {fold}-fold lift of Petersen: {lift.num_nodes} nodes, "
              f"output mismatches vs base: {mismatches}")
        assert mismatches == 0


def main() -> None:
    cycles_cover_a_point()
    random_lifts_lift_outputs()
    print(
        "\n3. the Theorem 1/2 graphs are engineered so that this symmetry"
        "\n   forces any algorithm into an expensive, uniform answer — see"
        "\n   examples/adversarial_tightness.py."
    )


if __name__ == "__main__":
    main()
