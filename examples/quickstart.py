"""Quickstart: find an edge dominating set with an anonymous distributed
algorithm.

This walks the happy path of the library:

1. take any simple graph (here: the Petersen graph),
2. turn it into a port-numbered graph (the paper's §2.1 model — no node
   identifiers, only locally numbered ports),
3. run the Theorem 5 algorithm A(Δ) through the synchronous simulator,
4. decode and verify the output, and compare it with the exact optimum.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import networkx as nx

from repro import (
    BoundedDegreeEDS,
    bounded_degree_ratio,
    from_networkx,
    is_edge_dominating_set,
    minimum_eds_size,
    run_anonymous,
)


def main() -> None:
    # 1. any simple undirected graph
    base = nx.petersen_graph()
    print(f"graph: Petersen ({base.number_of_nodes()} nodes, "
          f"{base.number_of_edges()} edges, 3-regular)")

    # 2. adopt the port-numbering model: each node privately numbers its
    #    endpoints 1..deg(v); nodes have no identifiers.
    graph = from_networkx(base)

    # 3. run A(Δ) with the degree promise Δ = 3.  The factory signature
    #    (degree -> node program) is the anonymity guarantee: a node's
    #    program is a function of its degree alone.
    algorithm = BoundedDegreeEDS(max_degree=3)
    result = run_anonymous(graph, algorithm)
    print(f"rounds: {result.rounds} "
          f"(a function of Δ only — the algorithm is local)")

    # 4. decode the per-node port sets into an edge set and verify.
    solution = result.edge_set()
    assert is_edge_dominating_set(graph, solution)
    optimum = minimum_eds_size(graph)
    guarantee = bounded_degree_ratio(3)
    print(f"|D| = {len(solution)} edges selected; optimum = {optimum}")
    print(f"measured ratio {len(solution) / optimum:.3f} "
          f"<= guaranteed {float(guarantee):.3f} (= 4 - 1/k, Theorem 5)")

    print("\nselected edges (by endpoints):")
    for edge in sorted(solution, key=repr):
        print(f"  {set(edge.endpoints)}")


if __name__ == "__main__":
    main()
