"""The heart of the paper: why 4 - 2/d (and friends) cannot be beaten.

This example builds the adversarial graphs of Theorems 1 and 2, runs the
matching algorithms of Theorems 3 and 4 on them, and shows the two-sided
squeeze empirically:

* the lower-bound construction *forces* every deterministic anonymous
  algorithm to a ratio >= the Table 1 entry (via covering-map symmetry);
* the upper-bound algorithm *guarantees* a ratio <= the same entry;
* so the measured ratio lands exactly on the bound — for every d.

It also prints the covering-argument observable: all nodes in the same
fibre of the covering map produce byte-identical outputs, which is why
the adversary wins.

Run with::

    python examples/adversarial_tightness.py
"""

from __future__ import annotations

from repro import (
    PortOneEDS,
    RegularOddEDS,
    build_even_lower_bound,
    build_odd_lower_bound,
    run_adversary,
)
from repro.analysis import format_ratio_pair


def squeeze_even() -> None:
    print("Theorem 1 ⊓ Theorem 3 — even degrees, O(1)-time algorithm")
    for d in (2, 4, 6, 8, 10):
        instance = build_even_lower_bound(d)
        report = run_adversary(instance, PortOneEDS)
        assert report.fibres_uniform, "covering symmetry must hold"
        assert report.is_tight, "squeeze must land exactly on the bound"
        print(
            f"  d={d:2d}: n={instance.graph.num_nodes:3d}  "
            f"|D|={report.solution_size:3d}  |D*|={instance.optimum_size:2d}  "
            + format_ratio_pair(instance.forced_ratio, report.ratio)
        )


def squeeze_odd() -> None:
    print("\nTheorem 2 ⊓ Theorem 4 — odd degrees, O(d²)-time algorithm")
    for d in (1, 3, 5, 7):
        instance = build_odd_lower_bound(d)
        report = run_adversary(instance, RegularOddEDS)
        assert report.fibres_uniform
        assert report.is_tight
        print(
            f"  d={d:2d}: n={instance.graph.num_nodes:3d}  "
            f"|D|={report.solution_size:3d}  |D*|={instance.optimum_size:2d}  "
            + format_ratio_pair(instance.forced_ratio, report.ratio)
        )


def show_fibre_outputs() -> None:
    print("\nwhy the adversary wins: outputs are constant on covering fibres")
    instance = build_even_lower_bound(4)
    from repro import run_anonymous

    result = run_anonymous(instance.graph, PortOneEDS)
    outputs = {result.outputs[v] for v in instance.graph.nodes}
    print(
        f"  d=4 construction: {instance.graph.num_nodes} nodes, "
        f"{len(outputs)} distinct output(s): "
        f"{[sorted(o) for o in outputs]}"
    )
    print(
        "  every node picks the same port set, so a non-empty answer "
        "drags in a whole 2-factor."
    )


def main() -> None:
    squeeze_even()
    squeeze_odd()
    show_fibre_outputs()


if __name__ == "__main__":
    main()
