"""repro.api — the one-stop façade over the registry and the engine.

Everything the CLI, the experiment drivers, the examples, and the
benchmarks need is three calls:

* :func:`graph` — describe a graph as data (a registered family name +
  parameters + seed);
* :func:`run_one` — execute a single (algorithm, graph, measure) unit
  and get its typed :class:`~repro.engine.records.ResultRecord`;
* :func:`run_sweep` — execute a whole grid (a named scenario, a
  :class:`~repro.engine.grid.SweepGrid`, or an explicit list of
  :class:`~repro.engine.spec.JobSpec` units) with sharded workers and
  the content-addressed result cache.

Anything registered through :mod:`repro.registry` — algorithms, graph
families, measures — is immediately addressable here by name::

    from repro import api

    record = api.run_one(
        "randomized_matching", api.graph("cycle", n=24), measure="messages"
    )
    report = api.run_sweep("default", workers=4, cache=True)
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Mapping, TypeAlias

from repro.engine.backends import ExecutionBackend
from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache, parse_size
from repro.engine.executor import ExecutionReport, run_units
from repro.engine.grid import SweepGrid
from repro.engine.records import ResultRecord
from repro.engine.scenarios import get_scenario
from repro.engine.spec import GraphSpec, JobSpec

__all__ = [
    "CacheLike",
    "as_cache",
    "graph",
    "run_one",
    "run_sweep",
]

#: What callers may pass wherever a cache is accepted: nothing, a bool,
#: a directory, or a ready-made ResultCache.
CacheLike: TypeAlias = "ResultCache | str | os.PathLike[str] | bool | None"


def as_cache(
    cache: CacheLike = None, *, cache_dir: str | os.PathLike[str] | None = None
) -> ResultCache | None:
    """Normalise a cache argument to a :class:`ResultCache` (or None).

    ``True`` opens the default directory (or *cache_dir*), a string/path
    opens that directory, an existing :class:`ResultCache` passes
    through, and ``None``/``False`` disable caching.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache(cache_dir if cache_dir is not None
                           else DEFAULT_CACHE_DIR)
    if cache is None or cache is False:
        return None
    return ResultCache(cache)


def graph(
    family: str, *, seed: int | None = None, **params: int
) -> GraphSpec:
    """Describe a graph as data: a registered family name + parameters."""
    return GraphSpec.make(family, seed=seed, **params)


def run_one(
    algorithm: str,
    graph: GraphSpec,
    *,
    algorithm_params: Mapping[str, Any] | None = None,
    measure: str = "quality",
    optimum: str = "auto",
    exact_edge_limit: int = 48,
    count_messages: bool = False,
    label: str = "",
    cache: CacheLike = None,
    cache_dir: str | os.PathLike[str] | None = None,
) -> ResultRecord:
    """Run one (algorithm, graph, measure) unit and return its record.

    The unit goes through the same executor as a sweep, so the result is
    cache-shared with any grid that contains the same cell.
    """
    unit = JobSpec(
        algorithm=algorithm,
        graph=graph,
        algorithm_params=tuple(sorted((algorithm_params or {}).items())),
        measure=measure,
        optimum=optimum,
        exact_edge_limit=exact_edge_limit,
        count_messages=count_messages,
        label=label,
    )
    report = run_units([unit], cache=as_cache(cache, cache_dir=cache_dir))
    return report.records[0]


def run_sweep(
    grid: "SweepGrid | str | Iterable[JobSpec]",
    *,
    workers: int = 1,
    cache: CacheLike = None,
    cache_dir: str | os.PathLike[str] | None = None,
    progress: Callable[[int, int], None] | None = None,
    jsonl: str | os.PathLike[str] | None = None,
    backend: "ExecutionBackend | str | None" = None,
    cache_max_size: int | str | None = None,
    **overrides: Any,
) -> ExecutionReport:
    """Run a grid of work units through the parallel experiment engine.

    *grid* may be a named scenario (``"default"``, ``"large-regular"``,
    …), a :class:`SweepGrid`, or any iterable of :class:`JobSpec` units.
    Keyword *overrides* (``degrees=…``, ``algorithms=…``, ``measure=…``)
    apply to scenario/grid inputs before expansion.  *jsonl* additionally
    writes the result records as canonical JSON lines.  *backend* picks
    the execution strategy (``"auto"``, ``"inline"``, ``"thread"``,
    ``"process"``, or an :class:`ExecutionBackend`); the default
    ``"auto"`` stays serial for cheap units and fans out across
    *workers* processes once per-unit cost justifies pool startup.
    *cache_max_size* (bytes, or a human size like ``"64MiB"``) is the
    opt-in gc automation: after the sweep the cache is evicted down to
    the cap, least recently written records first.
    """
    if isinstance(grid, str):
        grid = get_scenario(grid)
    if isinstance(grid, SweepGrid):
        if overrides:
            grid = grid.override(**overrides)
        units: list[JobSpec] = grid.expand()
    else:
        if overrides:
            raise TypeError(
                "grid overrides only apply to scenario names or SweepGrid "
                f"inputs, not explicit unit lists: {sorted(overrides)}"
            )
        units = list(grid)
    max_bytes = (
        parse_size(cache_max_size)
        if isinstance(cache_max_size, str) else cache_max_size
    )
    report = run_units(
        units,
        workers=max(1, workers),
        cache=as_cache(cache, cache_dir=cache_dir),
        progress=progress,
        backend=backend,
        cache_max_bytes=max_bytes,
    )
    if jsonl is not None:
        report.store.to_jsonl(jsonl)
    return report
