"""Theorem 1: the lower-bound construction for even degree d.

The graph (paper §3.1, Figure 4):

* nodes ``A = {a_1 .. a_d}`` and ``B = {b_1 .. b_{d-1}}``;
* edges ``S = {{a_1,a_2}, {a_3,a_4}, ..., {a_{d-1},a_d}}`` (a matching)
  plus ``T = A × B`` (the complete bipartite graph ``K_{d,d-1}``).

The graph is d-regular; ``S`` is an optimal edge dominating set of size
``d/2`` because ``|E| = (2d-1)|S|`` and one edge dominates at most
``2d - 1`` edges.

Port numbering (§3.2): the graph is 2-factorised (Petersen) and factor
``i`` is oriented; port ``2i - 1`` of a node leads to its successor and
port ``2i`` to its predecessor.  Every edge of factor ``i`` then carries
label pair ``{2i-1, 2i}``, so the graph covers the one-node multigraph
``M`` with ``p(x, 2i-1) = (x, 2i)`` (§3.3): all nodes are forced to output
identical port sets.  A non-empty output therefore contains a whole
2-factor — ``|V| = 2d - 1`` edges — while the optimum is ``d/2``, forcing
ratio ``(2d-1)/(d/2) = 4 - 2/d`` (§3.4).
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx

from repro.exceptions import ConstructionError
from repro.lowerbounds.instance import LowerBoundInstance
from repro.portgraph.builder import PortGraphBuilder
from repro.portgraph.convert import from_networkx
from repro.portgraph.covering import quotient_by_partition
from repro.portgraph.numbering import factor_pairing_numbering
from repro.portgraph.graph import PortNumberedGraph

__all__ = ["build_even_lower_bound", "single_node_quotient"]


def single_node_quotient(d: int) -> PortNumberedGraph:
    """The one-node multigraph M of §3.3: ``p(x, 2i-1) = (x, 2i)``."""
    if d < 2 or d % 2:
        raise ConstructionError(f"quotient needs even d >= 2, got {d}")
    builder = PortGraphBuilder()
    builder.add_node("x", d)
    for i in range(1, d // 2 + 1):
        builder.connect("x", 2 * i - 1, "x", 2 * i)
    return builder.build()


def build_even_lower_bound(d: int) -> LowerBoundInstance:
    """Construct the Theorem 1 instance for an even degree ``d >= 2``.

    The returned instance is fully verified: d-regularity, optimality
    certificate for ``S``, and the covering map onto the one-node
    quotient.
    """
    if d < 2 or d % 2:
        raise ConstructionError(
            f"Theorem 1 construction needs even d >= 2, got {d}"
        )

    a = [f"a{i}" for i in range(1, d + 1)]
    b = [f"b{j}" for j in range(1, d)]

    base = nx.Graph()
    base.add_nodes_from(a)
    base.add_nodes_from(b)
    s_pairs = [(a[2 * t], a[2 * t + 1]) for t in range(d // 2)]
    base.add_edges_from(s_pairs)
    base.add_edges_from((ai, bj) for ai in a for bj in b)

    graph = from_networkx(base, factor_pairing_numbering)

    edge_index = {e.endpoints: e for e in graph.edges}
    optimum = frozenset(
        edge_index[frozenset(pair)] for pair in s_pairs
    )

    # |E| = (2d - 1) |S| certifies optimality (each edge dominates at most
    # 2d - 1 edges in a d-regular graph).
    if graph.num_edges != (2 * d - 1) * len(optimum):
        raise ConstructionError(
            "optimality certificate failed: |E| != (2d-1)|S|"
        )

    quotient, covering_map = quotient_by_partition(
        graph, {v: "x" for v in graph.nodes}
    )
    if quotient != single_node_quotient(d):
        raise ConstructionError(
            "quotient does not match the single-node multigraph of §3.3"
        )

    instance = LowerBoundInstance(
        family="regular-even",
        d=d,
        graph=graph,
        optimum=optimum,
        quotient=quotient,
        covering_map=covering_map,
        forced_ratio=Fraction(4) - Fraction(2, d),
    )
    instance.verify()
    return instance
