"""Theorem 2: the lower-bound construction for odd degree d.

Let ``k = (d - 1) / 2``.  For each ``ℓ = 1..d`` build a 2k-regular
component ``H(ℓ)`` (paper §4.1, Figure 5) on nodes
``A(ℓ) = {a_{ℓ,1} .. a_{ℓ,2k}}``, ``B(ℓ) = {b_{ℓ,1} .. b_{ℓ,2k}}`` and
``C(ℓ) = {c_ℓ}``, with edges

* ``R(ℓ)`` — the star ``{c_ℓ, b_{ℓ,i}}``,
* ``S(ℓ)`` — the matching ``{a_{ℓ,1},a_{ℓ,2}}, ...``,
* ``T(ℓ)`` — the crown ``{a_{ℓ,i}, b_{ℓ,j}} (i ≠ j)``.

Each ``H(ℓ)`` is 2-factorised to obtain ports ``1..2k`` exactly as in
Theorem 1.  The hub nodes ``P = {p_1..p_d}`` and ``Q = {q_1..q_2k}`` are
then wired to port ``d`` of every component node (§4.1, Figure 6):

* ``(p_ℓ, ℓ) ↔ (c_ℓ, d)``            for ℓ = 1..d,
* ``(p_i, ℓ) ↔ (b_{ℓ,i}, d)``        for ℓ = 1..d, i = 1..2k, i ≠ ℓ,
* ``(p_d, ℓ) ↔ (b_{ℓ,ℓ}, d)``        for ℓ = 1..2k,
* ``(q_i, ℓ) ↔ (a_{ℓ,i}, d)``        for ℓ = 1..d, i = 1..2k.

(The paper prints the third family with the range "ℓ = 1..d", but
``b_{d,d}`` does not exist since ``|B(ℓ)| = 2k = d - 1``; the evidently
intended range ℓ = 1..2k is the one under which every port is wired
exactly once.  The builder verifies completeness, so any wiring error
would be caught.)

The optimum is ``D* = Y ∪ ⋃_ℓ S(ℓ)`` with ``Y = {{p_ℓ, c_ℓ}}``, of size
``(k + 1) d`` (§4.2).  The graph covers the multigraph ``M`` on
``{x_1..x_d, y}`` (§4.3), collapsing each ``H(ℓ)`` to ``x_ℓ`` and
``P ∪ Q`` to ``y``; covering invariance forces any algorithm's output to
contain, for each ℓ, either all ``2d - 1`` edges between ``P ∪ Q`` and
``H(ℓ)`` or a whole 2-factor of ``H(ℓ)`` (also ``2d - 1`` edges), hence
``|D| >= (2d - 1) d`` and the forced ratio is
``(2d-1)d / ((k+1)d) = 4 - 6/(d + 1)`` (§4.4).
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx

from repro.exceptions import ConstructionError
from repro.factorization.two_factor import two_factorise_nx
from repro.lowerbounds.instance import LowerBoundInstance
from repro.portgraph.builder import PortGraphBuilder
from repro.portgraph.covering import quotient_by_partition
from repro.portgraph.graph import PortNumberedGraph

__all__ = ["build_odd_lower_bound", "hub_quotient"]


def hub_quotient(d: int) -> PortNumberedGraph:
    """The multigraph M of §4.3 (Figure 7) on nodes x_1..x_d and y."""
    if d < 1 or d % 2 == 0:
        raise ConstructionError(f"quotient needs odd d >= 1, got {d}")
    k = (d - 1) // 2
    builder = PortGraphBuilder()
    builder.add_node("y", d)
    for ell in range(1, d + 1):
        builder.add_node(f"x{ell}", d)
        for i in range(1, k + 1):
            builder.connect(f"x{ell}", 2 * i - 1, f"x{ell}", 2 * i)
        builder.connect("y", ell, f"x{ell}", d)
    return builder.build()


def _component_nodes(ell: int, k: int) -> tuple[list[str], list[str], str]:
    a = [f"a{ell}_{i}" for i in range(1, 2 * k + 1)]
    b = [f"b{ell}_{i}" for i in range(1, 2 * k + 1)]
    return a, b, f"c{ell}"


def build_odd_lower_bound(d: int) -> LowerBoundInstance:
    """Construct the Theorem 2 instance for an odd degree ``d >= 1``.

    Fully verified on return: d-regularity, the |D*| = (k+1)d optimality
    certificate, and the covering map onto the hub quotient of §4.3.
    """
    if d < 1 or d % 2 == 0:
        raise ConstructionError(
            f"Theorem 2 construction needs odd d >= 1, got {d}"
        )
    k = (d - 1) // 2

    builder = PortGraphBuilder()
    p_nodes = [f"p{ell}" for ell in range(1, d + 1)]
    q_nodes = [f"q{i}" for i in range(1, 2 * k + 1)]
    for node in p_nodes + q_nodes:
        builder.add_node(node, d)

    block_of: dict[str, str] = {node: "y" for node in p_nodes + q_nodes}
    optimum_pairs: list[tuple[str, str]] = []

    for ell in range(1, d + 1):
        a, b, c = _component_nodes(ell, k)
        for node in a + b + [c]:
            builder.add_node(node, d)
            block_of[node] = f"x{ell}"

        # --- H(ℓ): star + matching + crown, 2-factorised for ports 1..2k
        component = nx.Graph()
        component.add_nodes_from(a + b + [c])
        component.add_edges_from((c, bi) for bi in b)                 # R(ℓ)
        s_pairs = [(a[2 * t], a[2 * t + 1]) for t in range(k)]
        component.add_edges_from(s_pairs)                             # S(ℓ)
        component.add_edges_from(
            (a[i], b[j])
            for i in range(2 * k)
            for j in range(2 * k)
            if i != j
        )                                                             # T(ℓ)
        optimum_pairs.extend(s_pairs)

        for factor_index, factor in enumerate(
            two_factorise_nx(component), start=1
        ):
            out_port = 2 * factor_index - 1
            in_port = 2 * factor_index
            for arc in factor.arcs:
                builder.connect(arc.tail, out_port, arc.head, in_port)

        # --- hub wiring: port d of every component node (§4.1)
        builder.connect(f"p{ell}", ell, c, d)
        optimum_pairs.append((f"p{ell}", c))                          # Y
        for i in range(1, 2 * k + 1):
            if i != ell:
                builder.connect(f"p{i}", ell, f"b{ell}_{i}", d)
        if ell <= 2 * k:
            builder.connect(f"p{d}", ell, f"b{ell}_{ell}", d)
        for i in range(1, 2 * k + 1):
            builder.connect(f"q{i}", ell, f"a{ell}_{i}", d)

    graph = builder.build()

    edge_index = {e.endpoints: e for e in graph.edges}
    optimum = frozenset(
        edge_index[frozenset(pair)] for pair in optimum_pairs
    )
    if len(optimum) != (k + 1) * d:
        raise ConstructionError(
            f"|D*| = {len(optimum)} but the paper's certificate "
            f"requires (k+1)d = {(k + 1) * d}"
        )

    quotient, covering_map = quotient_by_partition(graph, block_of)
    if quotient != hub_quotient(d):
        raise ConstructionError(
            "quotient does not match the hub multigraph of §4.3"
        )

    instance = LowerBoundInstance(
        family="regular-odd",
        d=d,
        graph=graph,
        optimum=optimum,
        quotient=quotient,
        covering_map=covering_map,
        forced_ratio=Fraction(4) - Fraction(6, d + 1),
    )
    instance.verify()
    return instance
