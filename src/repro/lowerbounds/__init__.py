"""The paper's lower-bound constructions (Theorems 1-2) and the adversary
driver that confronts algorithms with them."""

from repro.lowerbounds.adversary import AdversaryReport, run_adversary
from repro.lowerbounds.even import build_even_lower_bound, single_node_quotient
from repro.lowerbounds.instance import LowerBoundInstance
from repro.lowerbounds.odd import build_odd_lower_bound, hub_quotient

__all__ = [
    "LowerBoundInstance",
    "build_even_lower_bound",
    "build_odd_lower_bound",
    "single_node_quotient",
    "hub_quotient",
    "run_adversary",
    "AdversaryReport",
]
