"""Adversary driver: run algorithms on lower-bound instances.

This is the empirical engine behind the Table 1 tightness claims.  For a
lower-bound instance and an anonymous algorithm it

* runs the algorithm through the simulator,
* verifies the covering-argument *observable*: all nodes in the same
  fibre of the covering map produce identical outputs (§2.3),
* checks feasibility of the output, and
* reports the achieved ratio |D| / |D*| as an exact fraction.

For a correct implementation of a Theorem 3/4/5 algorithm on its matching
construction the measured ratio must equal the forced ratio *exactly*:
the lower bound forces ``ratio >= bound`` while the upper-bound theorem
guarantees ``ratio <= bound``.  Any deviation in either direction exposes
a bug in the algorithm, the construction, or the simulator — this is the
strongest end-to-end differential test in the package.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.eds.properties import is_edge_dominating_set
from repro.exceptions import AlgorithmContractError
from repro.lowerbounds.instance import LowerBoundInstance
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.scheduler import run_anonymous

__all__ = ["AdversaryReport", "run_adversary"]


@dataclass(frozen=True)
class AdversaryReport:
    """Outcome of one algorithm-vs-construction confrontation."""

    instance: LowerBoundInstance
    solution_size: int
    ratio: Fraction
    rounds: int
    feasible: bool
    fibres_uniform: bool

    @property
    def meets_lower_bound(self) -> bool:
        """Did the construction force at least the claimed ratio?"""
        return self.ratio >= self.instance.forced_ratio

    @property
    def is_tight(self) -> bool:
        """Did the algorithm achieve the bound exactly?"""
        return self.ratio == self.instance.forced_ratio


def run_adversary(
    instance: LowerBoundInstance,
    algorithm: AnonymousAlgorithm,
    *,
    require_feasible: bool = True,
) -> AdversaryReport:
    """Run *algorithm* on *instance* and measure the forced ratio."""
    result = run_anonymous(instance.graph, algorithm)
    edge_set = result.edge_set()

    feasible = is_edge_dominating_set(instance.graph, edge_set)
    if require_feasible and not feasible:
        raise AlgorithmContractError(
            "algorithm produced an infeasible output on the "
            f"{instance.family} instance with d={instance.d}"
        )

    # §2.3 observable: outputs are constant on covering-map fibres.
    outputs_by_fibre: dict[object, set[frozenset[int]]] = {}
    for v in instance.graph.nodes:
        fibre = instance.covering_map[v]
        outputs_by_fibre.setdefault(fibre, set()).add(result.outputs[v])
    fibres_uniform = all(
        len(outputs) == 1 for outputs in outputs_by_fibre.values()
    )

    return AdversaryReport(
        instance=instance,
        solution_size=len(edge_set),
        ratio=instance.ratio_of(len(edge_set)),
        rounds=result.rounds,
        feasible=feasible,
        fibres_uniform=fibres_uniform,
    )
