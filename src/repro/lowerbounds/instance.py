"""The common shape of the paper's lower-bound instances.

Both Theorem 1 (even degree) and Theorem 2 (odd degree) produce

* a d-regular port-numbered graph with an adversarial port numbering,
* its optimal edge dominating set,
* a small quotient multigraph and the covering map onto it (the engine of
  the indistinguishability argument of §2.3), and
* the approximation ratio that any deterministic algorithm is forced to
  incur on the instance.

:class:`LowerBoundInstance` bundles these together with executable
verification of every claimed property.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.eds.properties import is_edge_dominating_set
from repro.exceptions import ConstructionError
from repro.portgraph.covering import verify_covering_map
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["LowerBoundInstance"]


@dataclass(frozen=True)
class LowerBoundInstance:
    """One adversarial instance plus its certificates."""

    family: str
    d: int
    graph: PortNumberedGraph
    optimum: frozenset[PortEdge]
    quotient: PortNumberedGraph
    covering_map: Mapping[Node, Node]
    forced_ratio: Fraction

    def verify(self) -> None:
        """Re-check every structural claim; raises on any violation."""
        if self.graph.regularity() != self.d:
            raise ConstructionError(
                f"instance is not {self.d}-regular"
            )
        if not self.graph.is_simple():
            raise ConstructionError("instance must be a simple graph")
        if not is_edge_dominating_set(self.graph, self.optimum):
            raise ConstructionError("claimed optimum is not an EDS")
        verify_covering_map(self.graph, self.quotient, self.covering_map)

    @property
    def optimum_size(self) -> int:
        return len(self.optimum)

    def ratio_of(self, solution_size: int) -> Fraction:
        """The approximation ratio of a solution of the given size."""
        return Fraction(solution_size, self.optimum_size)
