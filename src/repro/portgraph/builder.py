"""Incremental construction of port-numbered graphs.

:class:`PortGraphBuilder` lets callers wire ports one connection at a time
(the style in which the paper's lower-bound constructions of Sections 3-4
are specified) and then produces a validated
:class:`~repro.portgraph.graph.PortNumberedGraph`.
"""

from __future__ import annotations

from repro.exceptions import GraphValidationError, PortNumberingError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, Port

__all__ = ["PortGraphBuilder"]


class PortGraphBuilder:
    """Builds a port-numbered graph connection by connection.

    Example
    -------
    >>> b = PortGraphBuilder()
    >>> b.add_node("u", degree=1)
    >>> b.add_node("v", degree=1)
    >>> b.connect("u", 1, "v", 1)
    >>> g = b.build()
    >>> g.num_edges
    1
    """

    def __init__(self) -> None:
        self._degrees: dict[Node, int] = {}
        self._p: dict[Port, Port] = {}

    def add_node(self, node: Node, degree: int) -> None:
        """Declare *node* with the given degree.

        Re-declaring a node with the same degree is a no-op; changing the
        degree of an existing node is an error.
        """
        if degree < 0:
            raise PortNumberingError(
                f"node {node!r} cannot have negative degree {degree}"
            )
        existing = self._degrees.get(node)
        if existing is not None and existing != degree:
            raise GraphValidationError(
                f"node {node!r} already declared with degree {existing}, "
                f"cannot re-declare with degree {degree}"
            )
        self._degrees[node] = degree

    def add_nodes(self, nodes: dict[Node, int]) -> None:
        """Declare several nodes at once (mapping node -> degree)."""
        for node, degree in nodes.items():
            self.add_node(node, degree)

    def _check_port(self, node: Node, port: int) -> Port:
        if node not in self._degrees:
            raise GraphValidationError(f"node {node!r} has not been declared")
        if not 1 <= port <= self._degrees[node]:
            raise PortNumberingError(
                f"port {port} out of range 1..{self._degrees[node]} "
                f"for node {node!r}"
            )
        return (node, port)

    def connect(self, u: Node, i: int, v: Node, j: int) -> None:
        """Wire ``p(u, i) = (v, j)`` and ``p(v, j) = (u, i)``.

        Connecting a port twice is an error.  ``connect(v, i, v, i)``
        creates a directed loop (a fixed point of the involution).
        """
        a = self._check_port(u, i)
        b = self._check_port(v, j)
        for port in (a, b):
            if port in self._p and not (a == b and self._p[port] == port):
                raise GraphValidationError(
                    f"port {port!r} is already connected to {self._p[port]!r}"
                )
        self._p[a] = b
        self._p[b] = a

    def connect_fixed_point(self, v: Node, i: int) -> None:
        """Wire the directed loop ``p(v, i) = (v, i)``."""
        self.connect(v, i, v, i)

    def is_complete(self) -> bool:
        """True when every declared port has been connected."""
        total_ports = sum(self._degrees.values())
        return len(self._p) == total_ports

    def unconnected_ports(self) -> list[Port]:
        """All declared ports that have not yet been wired."""
        return [
            (node, i)
            for node, degree in sorted(self._degrees.items(), key=lambda kv: repr(kv[0]))
            for i in range(1, degree + 1)
            if (node, i) not in self._p
        ]

    def build(self) -> PortNumberedGraph:
        """Validate and return the finished graph.

        Raises
        ------
        GraphValidationError
            If some port has not been connected.
        """
        if not self.is_complete():
            dangling = self.unconnected_ports()
            raise GraphValidationError(
                f"{len(dangling)} unconnected port(s), e.g. {dangling[:5]!r}"
            )
        return PortNumberedGraph(self._degrees, self._p)
