"""Port-numbered graphs: the model of computation substrate (paper §2).

Public surface:

* :class:`~repro.portgraph.graph.PortNumberedGraph` — the model type.
* :class:`~repro.portgraph.builder.PortGraphBuilder` — explicit wiring.
* :func:`~repro.portgraph.convert.from_networkx` /
  :func:`~repro.portgraph.convert.to_networkx` — conversions.
* :mod:`~repro.portgraph.numbering` — port-numbering strategies.
* :mod:`~repro.portgraph.labels` — Section 5 machinery (label pairs,
  distinguishable neighbours, the matchings ``M(i, j)``).
* :mod:`~repro.portgraph.covering` — covering maps, quotients and lifts.
"""

from repro.portgraph.arrays import ArrayGraph
from repro.portgraph.builder import PortGraphBuilder
from repro.portgraph.convert import (
    from_neighbour_orders,
    from_networkx,
    to_networkx,
    to_simple_networkx,
)
from repro.portgraph.covering import (
    is_covering_map,
    quotient_by_partition,
    random_lift,
    verify_covering_map,
)
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.labels import (
    all_matchings,
    distinguishable_edge,
    distinguishable_neighbour,
    label_pair,
    label_pairs_at,
    matching_m,
    uniquely_labelled_edges,
)
from repro.portgraph.numbering import (
    factor_pairing_numbering,
    random_numbering,
    sequential_numbering,
)
from repro.portgraph.ports import Node, Port, PortEdge
from repro.portgraph.refinement import (
    best_anonymous_eds_size,
    edge_orbits,
    minimal_quotient,
    stable_partition,
)
from repro.portgraph.render import render_edge_set, render_graph, render_outputs
from repro.portgraph.views import (
    ViewInterner,
    view,
    view_partition,
    views_at_depth,
)

__all__ = [
    "PortNumberedGraph",
    "ArrayGraph",
    "PortGraphBuilder",
    "PortEdge",
    "Node",
    "Port",
    "from_networkx",
    "from_neighbour_orders",
    "to_networkx",
    "to_simple_networkx",
    "sequential_numbering",
    "random_numbering",
    "factor_pairing_numbering",
    "label_pair",
    "label_pairs_at",
    "uniquely_labelled_edges",
    "distinguishable_edge",
    "distinguishable_neighbour",
    "matching_m",
    "all_matchings",
    "verify_covering_map",
    "is_covering_map",
    "quotient_by_partition",
    "random_lift",
    "stable_partition",
    "minimal_quotient",
    "edge_orbits",
    "best_anonymous_eds_size",
    "view",
    "views_at_depth",
    "view_partition",
    "ViewInterner",
    "render_graph",
    "render_edge_set",
    "render_outputs",
]
