"""JSON serialisation of port-numbered graphs.

Port-numbered graphs are exchanged between tools (and checked into test
fixtures) as a small JSON document::

    {
      "nodes": [{"id": "u", "degree": 2}, ...],
      "connections": [[["u", 1], ["v", 2]], ...]
    }

Each connection lists one orbit of the involution; fixed points (directed
loops) are encoded as a single-port orbit ``[["v", 3]]``.  Node ids must
be strings or integers (JSON-representable); richer node objects should
be relabelled before export.
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import GraphValidationError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Port, port_sort_key

__all__ = ["graph_to_json", "graph_from_json", "dump_graph", "load_graph"]


def graph_to_json(graph: PortNumberedGraph) -> dict[str, Any]:
    """Encode *graph* as a JSON-serialisable dictionary."""
    for v in graph.nodes:
        if not isinstance(v, (str, int)):
            raise GraphValidationError(
                f"node {v!r} is not JSON-representable; relabel first"
            )
    nodes = [
        {"id": v, "degree": graph.degree(v)} for v in graph.nodes
    ]
    connections: list[list[list[Any]]] = []
    seen: set[Port] = set()
    for port in sorted(graph.involution, key=port_sort_key):
        if port in seen:
            continue
        image = graph.connection(*port)
        seen.add(port)
        seen.add(image)
        if port == image:
            connections.append([[port[0], port[1]]])
        else:
            connections.append(
                [[port[0], port[1]], [image[0], image[1]]]
            )
    return {"nodes": nodes, "connections": connections}


def graph_from_json(document: dict[str, Any]) -> PortNumberedGraph:
    """Decode a dictionary produced by :func:`graph_to_json`."""
    try:
        node_entries = document["nodes"]
        connection_entries = document["connections"]
    except (KeyError, TypeError) as exc:
        raise GraphValidationError(
            "document must have 'nodes' and 'connections' keys"
        ) from exc

    degrees = {}
    for entry in node_entries:
        degrees[entry["id"]] = int(entry["degree"])

    involution: dict[Port, Port] = {}
    for orbit in connection_entries:
        if len(orbit) == 1:
            (node, port_number), = orbit
            involution[(node, int(port_number))] = (node, int(port_number))
        elif len(orbit) == 2:
            (u, i), (v, j) = orbit
            involution[(u, int(i))] = (v, int(j))
            involution[(v, int(j))] = (u, int(i))
        else:
            raise GraphValidationError(
                f"connection orbit must have 1 or 2 ports, got {orbit!r}"
            )
    return PortNumberedGraph(degrees, involution)


def dump_graph(graph: PortNumberedGraph, path: str) -> None:
    """Write *graph* to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_json(graph), handle, indent=2, sort_keys=True)


def load_graph(path: str) -> PortNumberedGraph:
    """Read a graph written by :func:`dump_graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_json(json.load(handle))
