"""Port-numbering strategies for simple undirected graphs.

The port-numbering model gives an adversary the power to choose how each
node numbers its endpoints.  A *numbering strategy* makes that choice: it
maps a :class:`networkx.Graph` to, for each node, an ordered tuple of its
neighbours; the neighbour in position ``k`` (0-based) is reached through
port ``k + 1``.

Strategies provided here:

* :func:`sequential_numbering` — neighbours sorted by ``repr``; the
  deterministic default.
* :func:`random_numbering` — a uniformly random permutation per node, for
  property-based testing.
* :func:`factor_pairing_numbering` — the adversarial numbering used by the
  paper's lower-bound constructions (Sections 3.2 and 4.1): the graph is
  2-factorised and the oriented factor ``i`` connects port ``2i - 1`` of a
  node to port ``2i`` of its successor.  Only defined for 2k-regular graphs.
"""

from __future__ import annotations

import random
from typing import Callable, Mapping, Sequence

import networkx as nx

from repro.exceptions import NotRegularGraphError
from repro.portgraph.ports import Node

__all__ = [
    "NumberingStrategy",
    "sequential_numbering",
    "random_numbering",
    "factor_pairing_numbering",
]

#: A numbering strategy maps a graph to {node: ordered neighbours}.
NumberingStrategy = Callable[[nx.Graph], Mapping[Node, Sequence[Node]]]


def sequential_numbering(graph: nx.Graph) -> dict[Node, tuple[Node, ...]]:
    """Number each node's neighbours in ``repr``-sorted order."""
    return {
        node: tuple(sorted(graph.neighbors(node), key=repr))
        for node in graph.nodes
    }


def random_numbering(
    seed: int | None = None,
) -> Callable[[nx.Graph], dict[Node, tuple[Node, ...]]]:
    """Return a strategy that permutes each node's neighbours at random.

    The returned callable is itself a :data:`NumberingStrategy`; the *seed*
    fixes the permutation for reproducibility.
    """

    def strategy(graph: nx.Graph) -> dict[Node, tuple[Node, ...]]:
        rng = random.Random(seed)
        numbering: dict[Node, tuple[Node, ...]] = {}
        for node in sorted(graph.nodes, key=repr):
            neighbours = sorted(graph.neighbors(node), key=repr)
            rng.shuffle(neighbours)
            numbering[node] = tuple(neighbours)
        return numbering

    return strategy


def factor_pairing_numbering(graph: nx.Graph) -> dict[Node, tuple[Node, ...]]:
    """The adversarial 2-factor pairing numbering of Sections 3.2 / 4.1.

    The graph must be 2k-regular.  It is decomposed into k 2-factors
    (Petersen's theorem); each factor is oriented into directed cycles, and
    for each arc ``(u, v)`` of factor ``i`` port ``2i - 1`` of ``u`` leads to
    ``v`` while port ``2i`` of ``u`` leads to its predecessor in the factor.

    With this numbering the label pair of *every* edge in factor ``i`` is
    ``{2i - 1, 2i}``, so no node has a uniquely labelled edge — the numbering
    that makes the lower-bound graphs maximally symmetric.
    """
    from repro.factorization.two_factor import two_factorise_nx

    degrees = {d for _, d in graph.degree()}
    if len(degrees) > 1 or (degrees and next(iter(degrees)) % 2):
        raise NotRegularGraphError(
            "factor_pairing_numbering requires a 2k-regular graph; "
            f"degrees present: {sorted(degrees)}"
        )

    factors = two_factorise_nx(graph)
    ordered: dict[Node, list[Node]] = {node: [] for node in graph.nodes}
    for factor in factors:
        successor = factor.successor_map()
        predecessor = factor.predecessor_map()
        for node in graph.nodes:
            # port 2i-1 -> successor in factor i, port 2i -> predecessor
            ordered[node].append(successor[node])
            ordered[node].append(predecessor[node])
    return {node: tuple(neighbours) for node, neighbours in ordered.items()}
