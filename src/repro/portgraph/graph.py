"""The port-numbered graph model of paper Section 2.1.

A port-numbered graph ``G`` is a triple ``(V, d, p)``:

* ``V`` — a finite set of nodes,
* ``d : V -> N`` — the degree function,
* ``p`` — an involution on the port set
  ``P = {(v, i) : v in V, 1 <= i <= d(v)}``.

Orbits of size two of ``p`` are undirected edges (possibly loops or parallel
edges); fixed points are directed loops.  :class:`PortNumberedGraph` stores
this structure immutably, validates it on construction, and exposes the
graph-theoretic views (edges, adjacency, regularity, simplicity) used by
the rest of the package.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import (
    InvolutionError,
    NotRegularGraphError,
    NotSimpleGraphError,
    PortNumberingError,
)
from repro.portgraph.ports import Node, Port, PortEdge, port_sort_key

__all__ = ["PortNumberedGraph"]


class PortNumberedGraph:
    """An immutable port-numbered (multi)graph.

    Parameters
    ----------
    degrees:
        Mapping from node to its degree ``d(v) >= 0``.
    involution:
        Mapping ``p`` from port to port.  It must be defined on exactly the
        port set implied by *degrees* and satisfy ``p(p(x)) == x``.

    Raises
    ------
    PortNumberingError
        If the involution's domain is not exactly the implied port set or a
        degree is negative.
    InvolutionError
        If ``p`` is not self-inverse.
    """

    __slots__ = (
        "_degrees", "_p", "_nodes", "_edges", "_edge_at", "_hash",
        "_compiled",
    )

    def __init__(
        self,
        degrees: Mapping[Node, int],
        involution: Mapping[Port, Port],
    ) -> None:
        self._degrees: dict[Node, int] = dict(degrees)
        for node, degree in self._degrees.items():
            if degree < 0:
                raise PortNumberingError(
                    f"node {node!r} has negative degree {degree}"
                )

        expected_ports = {
            (node, i)
            for node, degree in self._degrees.items()
            for i in range(1, degree + 1)
        }
        given_ports = set(involution)
        if given_ports != expected_ports:
            missing = sorted(expected_ports - given_ports, key=port_sort_key)
            extra = sorted(given_ports - expected_ports, key=port_sort_key)
            raise PortNumberingError(
                "involution domain does not match the port set: "
                f"missing={missing[:5]!r}... extra={extra[:5]!r}..."
                if len(missing) > 5 or len(extra) > 5
                else "involution domain does not match the port set: "
                f"missing={missing!r} extra={extra!r}"
            )

        self._p: dict[Port, Port] = dict(involution)
        for port, image in self._p.items():
            if image not in self._p:
                raise InvolutionError(
                    f"p{port!r} = {image!r} is not a port of the graph"
                )
            if self._p[image] != port:
                raise InvolutionError(
                    f"p is not an involution: p{port!r} = {image!r} "
                    f"but p{image!r} = {self._p[image]!r}"
                )

        self._nodes: tuple[Node, ...] = tuple(
            sorted(self._degrees, key=repr)
        )
        self._edges: tuple[PortEdge, ...] = tuple(self._build_edges())
        self._edge_at: dict[Port, PortEdge] = {}
        for edge in self._edges:
            for port in edge.ports:
                self._edge_at[port] = edge
        self._hash: int | None = None
        self._compiled = None

    def _build_edges(self) -> Iterator[PortEdge]:
        seen: set[Port] = set()
        for port in sorted(self._p, key=port_sort_key):
            if port in seen:
                continue
            image = self._p[port]
            seen.add(port)
            seen.add(image)
            (u, i), (v, j) = port, image
            yield PortEdge.make(u, i, v, j)

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes in a deterministic order."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def edges(self) -> tuple[PortEdge, ...]:
        """All edges (an edge multiset; loops included) in canonical order."""
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def degree(self, node: Node) -> int:
        """The degree ``d(v)`` of *node*."""
        return self._degrees[node]

    @property
    def degrees(self) -> Mapping[Node, int]:
        """Read-only view of the degree function."""
        return dict(self._degrees)

    def ports(self, node: Node) -> range:
        """The port numbers ``1..d(v)`` of *node*."""
        return range(1, self._degrees[node] + 1)

    @property
    def all_ports(self) -> Iterator[Port]:
        """Iterate over every port of the graph."""
        for node in self._nodes:
            for i in self.ports(node):
                yield (node, i)

    def connection(self, node: Node, port: int) -> Port:
        """Return ``p(node, port)`` — the port this port is connected to."""
        try:
            return self._p[(node, port)]
        except KeyError:
            raise KeyError(
                f"({node!r}, {port}) is not a port of the graph"
            ) from None

    @property
    def involution(self) -> Mapping[Port, Port]:
        """A copy of the involution ``p``."""
        return dict(self._p)

    def neighbour(self, node: Node, port: int) -> Node:
        """The node at the other end of the edge attached to this port."""
        return self.connection(node, port)[0]

    def edge_at(self, node: Node, port: int) -> PortEdge:
        """The edge attached to port ``(node, port)``."""
        try:
            return self._edge_at[(node, port)]
        except KeyError:
            raise KeyError(
                f"({node!r}, {port}) is not a port of the graph"
            ) from None

    def edges_at(self, node: Node) -> tuple[PortEdge, ...]:
        """All edges incident to *node*, ordered by port number.

        An undirected loop at *node* appears once per port, matching the
        convention that it occupies two ports.
        """
        return tuple(self.edge_at(node, i) for i in self.ports(node))

    def incident_edge_set(self, node: Node) -> frozenset[PortEdge]:
        """The set of distinct edges incident to *node*."""
        return frozenset(self.edges_at(node))

    def neighbours(self, node: Node) -> tuple[Node, ...]:
        """Neighbours of *node* listed by increasing port number."""
        return tuple(self.neighbour(node, i) for i in self.ports(node))

    # ------------------------------------------------------------------
    # Graph-class predicates
    # ------------------------------------------------------------------

    def is_simple(self) -> bool:
        """True when there are no loops and no parallel edges."""
        seen_pairs: set[frozenset[Node]] = set()
        for edge in self._edges:
            if edge.is_loop:
                return False
            pair = edge.endpoints
            if pair in seen_pairs:
                return False
            seen_pairs.add(pair)
        return True

    def require_simple(self) -> None:
        """Raise :class:`NotSimpleGraphError` unless the graph is simple."""
        if not self.is_simple():
            raise NotSimpleGraphError(
                "operation requires a simple port-numbered graph"
            )

    def regularity(self) -> int | None:
        """Return ``d`` if the graph is d-regular, otherwise ``None``."""
        degrees = set(self._degrees.values())
        if len(degrees) == 1:
            return next(iter(degrees))
        return None

    def require_regular(self) -> int:
        """Return the common degree or raise :class:`NotRegularGraphError`."""
        d = self.regularity()
        if d is None:
            raise NotRegularGraphError(
                f"graph is not regular; degrees span {sorted(set(self._degrees.values()))}"
            )
        return d

    @property
    def max_degree(self) -> int:
        """The maximum degree (0 for the empty graph)."""
        return max(self._degrees.values(), default=0)

    # ------------------------------------------------------------------
    # Simple-graph conveniences
    # ------------------------------------------------------------------

    def port_between(self, u: Node, v: Node) -> tuple[int, int]:
        """For a simple graph, the ports ``(l(u,v), l(v,u))`` of edge {u,v}.

        This is the paper's notation from Section 5: the unique port numbers
        ``i`` and ``j`` with ``p(u, i) = (v, j)``.
        """
        self.require_simple()
        for i in self.ports(u):
            other, j = self.connection(u, i)
            if other == v:
                return (i, j)
        raise KeyError(f"{{{u!r}, {v!r}}} is not an edge of the graph")

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when some edge joins *u* and *v*."""
        return any(self.neighbour(u, i) == v for i in self.ports(u))

    def node_pair_edges(self) -> frozenset[frozenset[Node]]:
        """The edge set as node pairs (meaningful for simple graphs)."""
        return frozenset(edge.endpoints for edge in self._edges)

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortNumberedGraph):
            return NotImplemented
        return self._degrees == other._degrees and self._p == other._p

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    frozenset(self._degrees.items()),
                    frozenset(self._p.items()),
                )
            )
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortNumberedGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"max_degree={self.max_degree})"
        )

    def __getstate__(self):
        # The compiled form and derived caches are rebuilt on demand;
        # pickling ships only the defining (V, d, p) triple.
        return (self._degrees, self._p)

    def __setstate__(self, state) -> None:
        degrees, involution = state
        self.__init__(degrees, involution)

    # ------------------------------------------------------------------
    # Compiled form
    # ------------------------------------------------------------------

    def compiled(self):
        """The cached :class:`~repro.portgraph.compiled.CompiledGraph`.

        Lowered once per graph object and shared by every simulation
        run; see :mod:`repro.portgraph.compiled`.
        """
        if self._compiled is None:
            from repro.obs.spans import span
            from repro.portgraph.compiled import CompiledGraph

            with span("graph_build:compile", n=self.num_nodes):
                self._compiled = CompiledGraph(self)
        return self._compiled

    # ------------------------------------------------------------------
    # Derived constructions
    # ------------------------------------------------------------------

    def induced_subgraph_ports(
        self, keep: Iterable[PortEdge]
    ) -> dict[Node, set[int]]:
        """Map each node to the set of its ports used by edges in *keep*.

        Helper for rendering and for building outputs from edge sets.
        """
        result: dict[Node, set[int]] = {node: set() for node in self._nodes}
        for edge in keep:
            for (node, port) in edge.ports:
                result[node].add(port)
        return result
