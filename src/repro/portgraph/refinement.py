"""Degree/connection refinement: the minimal quotient of a port-numbered
graph, and the exact power of deterministic anonymous algorithms.

The covering-map argument of paper §2.3 shows that a deterministic
anonymous algorithm cannot distinguish nodes that are related by a
covering map.  This module computes the *coarsest* stable partition of a
graph's nodes — the analogue of colour refinement (1-WL) adapted to the
port-numbering model:

* start with one block per degree;
* repeatedly split blocks until, within each block, every port number
  leads to the same (block, peer-port) pair;
* the result is connection-consistent, so it induces a quotient graph
  (:func:`repro.portgraph.covering.quotient_by_partition`) — the
  *minimal base* of the graph.

Two consequences are exposed as functions:

* :func:`minimal_quotient` — the smallest graph the input covers in this
  refinement sense; the lower-bound constructions of Theorems 1-2 are
  engineered so that this quotient is tiny (1 and d+1 nodes), and tests
  verify the refinement rediscovers the papers' partitions automatically.
* :func:`best_anonymous_eds_size` — the *exact* optimum achievable by any
  deterministic anonymous algorithm on a given graph: node outputs are
  constant on refinement classes, so any algorithm's output is a union of
  whole edge orbits; minimising an EDS over unions of orbits yields the
  best possible anonymous solution.  Dividing by the true optimum turns
  every Table 1 lower bound into a direct computation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Mapping

from repro.eds.properties import is_edge_dominating_set
from repro.exceptions import ReproError
from repro.portgraph.covering import quotient_by_partition
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = [
    "stable_partition",
    "minimal_quotient",
    "edge_orbits",
    "best_anonymous_eds_size",
]

_MAX_ORBITS_FOR_SEARCH = 20


def stable_partition(graph: PortNumberedGraph) -> dict[Node, int]:
    """The coarsest connection-consistent partition (block ids as ints).

    Iterated refinement: the initial signature is the degree; each round
    appends, per port, the pair (current block of the neighbour, peer
    port).  Stops at a fixpoint; at most n rounds.
    """
    block: dict[Node, int] = {}
    signature: dict[Node, Hashable] = {
        v: graph.degree(v) for v in graph.nodes
    }
    block = _blocks_from_signatures(signature)

    while True:
        new_signature: dict[Node, Hashable] = {}
        for v in graph.nodes:
            parts = [block[v]]
            for i in graph.ports(v):
                u, j = graph.connection(v, i)
                parts.append((block[u], j))
            new_signature[v] = tuple(parts)
        new_block = _blocks_from_signatures(new_signature)
        if len(set(new_block.values())) == len(set(block.values())):
            return block
        block = new_block


def _blocks_from_signatures(
    signature: Mapping[Node, Hashable],
) -> dict[Node, int]:
    by_signature: dict[Hashable, list[Node]] = {}
    for v, sig in signature.items():
        by_signature.setdefault(sig, []).append(v)
    ordered = sorted(by_signature, key=repr)
    block_of_signature = {sig: idx for idx, sig in enumerate(ordered)}
    return {v: block_of_signature[sig] for v, sig in signature.items()}


def minimal_quotient(
    graph: PortNumberedGraph,
) -> tuple[PortNumberedGraph, dict[Node, int]]:
    """The smallest quotient graph under refinement, with its map.

    The graph covers the quotient (verified internally); a deterministic
    anonymous algorithm behaves identically on both.
    """
    partition = stable_partition(graph)
    quotient, covering_map = quotient_by_partition(graph, partition)
    return quotient, dict(covering_map)


def edge_orbits(
    graph: PortNumberedGraph,
) -> list[frozenset[PortEdge]]:
    """Partition the edges into refinement orbits.

    Two edges are in the same orbit when their endpoint blocks and port
    pairs coincide; any deterministic anonymous algorithm selects either
    all edges of an orbit or none (its output is constant on blocks).
    """
    partition = stable_partition(graph)
    orbit_of: dict[Hashable, set[PortEdge]] = {}
    for e in graph.edges:
        key = frozenset(
            {(partition[e.u], e.i), (partition[e.v], e.j)}
        )
        orbit_of.setdefault(key, set()).add(e)
    return [
        frozenset(edges)
        for _, edges in sorted(orbit_of.items(), key=lambda kv: repr(kv[0]))
    ]


def best_anonymous_eds_size(
    graph: PortNumberedGraph,
    *,
    max_orbits: int = _MAX_ORBITS_FOR_SEARCH,
) -> int:
    """A lower bound on the EDS size *any* deterministic anonymous
    algorithm emits on this graph, of any round complexity.

    Outputs are constant on refinement blocks, so every feasible output
    is a union of whole edge orbits; the minimum dominating orbit-union
    therefore bounds every algorithm from below.  (Whether the bound is
    achievable depends on the graph; on the Theorem 1-2 constructions it
    is — the upper-bound algorithms land exactly on it.)  The search over
    orbit subsets is exhaustive; the orbit count is tiny on symmetric
    adversarial instances, and a guard rejects graphs that are not
    symmetric enough for this to be meaningful.
    """
    orbits = edge_orbits(graph)
    if len(orbits) > max_orbits:
        raise ReproError(
            f"{len(orbits)} edge orbits exceed the search limit "
            f"{max_orbits}; the graph is not symmetric enough for "
            "exhaustive orbit search"
        )
    sizes = [len(orbit) for orbit in orbits]
    best: int | None = None
    for r in range(len(orbits) + 1):
        for chosen in combinations(range(len(orbits)), r):
            total = sum(sizes[k] for k in chosen)
            if best is not None and total >= best:
                continue
            union: set[PortEdge] = set()
            for k in chosen:
                union |= orbits[k]
            if is_edge_dominating_set(graph, union):
                best = total
    if best is None:
        raise ReproError("no union of orbits dominates: graph has no EDS?")
    return best
