"""Conversion between :mod:`networkx` graphs and port-numbered graphs.

Any simple undirected graph can be turned into a port-numbered graph by
choosing, for every node, an ordering of its incident edges (a *numbering
strategy*, see :mod:`repro.portgraph.numbering`).  Conversely a
port-numbered graph projects onto a :class:`networkx.MultiGraph` whose
edges remember their port pairs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import networkx as nx

from repro.exceptions import GraphValidationError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.numbering import NumberingStrategy, sequential_numbering
from repro.portgraph.ports import Node, Port

__all__ = ["from_networkx", "to_networkx", "from_neighbour_orders"]


def from_neighbour_orders(
    orders: Mapping[Node, Sequence[Node]],
) -> PortNumberedGraph:
    """Build a port-numbered graph from explicit neighbour orderings.

    ``orders[v]`` lists the neighbours of ``v``; the neighbour in position
    ``k`` (0-based) is attached to port ``k + 1``.  Orders must be mutually
    consistent: ``u in orders[v]`` iff ``v in orders[u]``, and each
    neighbour may appear at most once (simple graphs only).
    """
    degrees = {node: len(neighbours) for node, neighbours in orders.items()}
    position: dict[tuple[Node, Node], int] = {}
    for node, neighbours in orders.items():
        for k, other in enumerate(neighbours):
            if (node, other) in position:
                raise GraphValidationError(
                    f"neighbour {other!r} listed twice for node {node!r}; "
                    "from_neighbour_orders supports simple graphs only"
                )
            if other not in orders:
                raise GraphValidationError(
                    f"node {node!r} lists unknown neighbour {other!r}"
                )
            position[(node, other)] = k + 1

    involution: dict[Port, Port] = {}
    for (node, other), i in position.items():
        j = position.get((other, node))
        if j is None:
            raise GraphValidationError(
                f"asymmetric adjacency: {node!r} lists {other!r} "
                f"but not vice versa"
            )
        involution[(node, i)] = (other, j)
    return PortNumberedGraph(degrees, involution)


def from_networkx(
    graph: nx.Graph,
    strategy: NumberingStrategy = sequential_numbering,
) -> PortNumberedGraph:
    """Convert a simple :class:`networkx.Graph` into a port-numbered graph.

    Parameters
    ----------
    graph:
        A simple undirected graph (no loops, no parallel edges).
    strategy:
        How each node numbers its neighbours; defaults to the deterministic
        :func:`~repro.portgraph.numbering.sequential_numbering`.
    """
    if graph.is_multigraph() or graph.is_directed():
        raise GraphValidationError(
            "from_networkx expects a simple undirected networkx.Graph"
        )
    if any(graph.has_edge(v, v) for v in graph.nodes):
        raise GraphValidationError("from_networkx does not accept self-loops")

    orders = strategy(graph)
    if set(orders) != set(graph.nodes):
        raise GraphValidationError(
            "numbering strategy must cover exactly the graph's nodes"
        )
    for node, neighbours in orders.items():
        if sorted(map(repr, neighbours)) != sorted(
            map(repr, graph.neighbors(node))
        ):
            raise GraphValidationError(
                f"numbering strategy returned a wrong neighbour multiset "
                f"for node {node!r}"
            )
    return from_neighbour_orders(orders)


def to_networkx(graph: PortNumberedGraph) -> nx.MultiGraph:
    """Project a port-numbered graph onto a :class:`networkx.MultiGraph`.

    Each edge carries attributes ``ports=((u, i), (v, j))`` recording where
    it attaches; directed loops (involution fixed points) become self-loops
    with attribute ``directed_loop=True``.
    """
    result = nx.MultiGraph()
    result.add_nodes_from(graph.nodes)
    for edge in graph.edges:
        result.add_edge(
            edge.u,
            edge.v,
            ports=((edge.u, edge.i), (edge.v, edge.j)),
            directed_loop=edge.is_directed_loop,
        )
    return result


def to_simple_networkx(graph: PortNumberedGraph) -> nx.Graph:
    """Project a *simple* port-numbered graph onto a :class:`networkx.Graph`.

    Raises :class:`~repro.exceptions.NotSimpleGraphError` if the graph has
    loops or parallel edges.
    """
    graph.require_simple()
    result = nx.Graph()
    result.add_nodes_from(graph.nodes)
    for edge in graph.edges:
        result.add_edge(edge.u, edge.v, ports=((edge.u, edge.i), (edge.v, edge.j)))
    return result


__all__.append("to_simple_networkx")
