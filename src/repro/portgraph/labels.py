"""Label pairs, distinguishable neighbours and the matchings M(i, j).

Centralised reference implementations of the concepts from paper Section 5.
The distributed algorithms recompute the same data by message passing (see
:mod:`repro.algorithms.base`); tests assert that both computations agree.

Definitions (for a *simple* port-numbered graph ``G``):

* For an edge ``{v, u}`` with ``p(v, i) = (u, j)`` the *label pair* is the
  unordered pair ``{i, j}`` (written ``l{v, u}`` in the paper).
* An edge incident to ``v`` is *uniquely labelled* (for ``v``) if no other
  edge incident to ``v`` has the same label pair.
* The *distinguishable neighbour* of ``v`` is the endpoint of the uniquely
  labelled edge of ``v`` that minimises the port number ``l(v, u)``
  (Lemma 1: it exists whenever ``deg(v)`` is odd).
* ``M(i, j)`` is the set of edges ``{v, u}`` with ``p(v, i) = (u, j)`` such
  that ``u`` is the distinguishable neighbour of ``v``
  (Lemma 2: each ``M(i, j)`` is a matching).
"""

from __future__ import annotations

from collections import Counter
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = [
    "label_pair",
    "label_pairs_at",
    "uniquely_labelled_edges",
    "distinguishable_neighbour",
    "distinguishable_edge",
    "matching_m",
    "all_matchings",
]


def label_pair(graph: PortNumberedGraph, v: Node, u: Node) -> frozenset[int]:
    """The label pair ``l{v, u}`` of the edge joining *v* and *u*."""
    i, j = graph.port_between(v, u)
    return frozenset({i, j})


def label_pairs_at(
    graph: PortNumberedGraph, v: Node
) -> dict[int, frozenset[int]]:
    """Map each port ``i`` of *v* to the label pair of its edge."""
    graph.require_simple()
    result: dict[int, frozenset[int]] = {}
    for i in graph.ports(v):
        _, j = graph.connection(v, i)
        result[i] = frozenset({i, j})
    return result


def uniquely_labelled_edges(
    graph: PortNumberedGraph, v: Node
) -> tuple[PortEdge, ...]:
    """The uniquely labelled edges of *v*, ordered by port number.

    An edge incident to *v* is uniquely labelled if its label pair differs
    from the label pair of every other edge incident to *v*.
    """
    pairs = label_pairs_at(graph, v)
    multiplicity = Counter(pairs.values())
    return tuple(
        graph.edge_at(v, i)
        for i in graph.ports(v)
        if multiplicity[pairs[i]] == 1
    )


def distinguishable_edge(
    graph: PortNumberedGraph, v: Node
) -> PortEdge | None:
    """The uniquely labelled edge of *v* minimising ``l(v, u)``, if any."""
    unique = uniquely_labelled_edges(graph, v)
    if not unique:
        return None
    # edges_at orders by port number, and uniquely_labelled_edges preserves
    # that order, so the first element minimises l(v, u).
    return unique[0]


def distinguishable_neighbour(
    graph: PortNumberedGraph, v: Node
) -> Node | None:
    """The distinguishable neighbour of *v* (paper Section 5), if any.

    Lemma 1 guarantees existence whenever ``deg(v)`` is odd.
    """
    edge = distinguishable_edge(graph, v)
    if edge is None:
        return None
    return edge.other_endpoint(v)


def matching_m(
    graph: PortNumberedGraph, i: int, j: int
) -> frozenset[PortEdge]:
    """The matching ``M_G(i, j)`` of paper Section 5.

    ``M(i, j)`` contains every edge ``{v, u}`` such that ``p(v, i) = (u, j)``
    and ``u`` is the distinguishable neighbour of ``v``.  By Lemma 2 the
    result is a matching; tests verify this property.
    """
    graph.require_simple()
    edges: set[PortEdge] = set()
    for v in graph.nodes:
        if i not in graph.ports(v):
            continue
        u, port_back = graph.connection(v, i)
        if port_back != j:
            continue
        if distinguishable_neighbour(graph, v) == u:
            edges.add(graph.edge_at(v, i))
    return frozenset(edges)


def all_matchings(
    graph: PortNumberedGraph, max_port: int | None = None
) -> dict[tuple[int, int], frozenset[PortEdge]]:
    """All matchings ``M(i, j)`` for ``i, j`` in ``1..max_port``.

    *max_port* defaults to the maximum degree.  The union of the returned
    matchings covers every node that has a distinguishable neighbour — in
    particular every node of odd degree (Lemmas 1-2).
    """
    bound = graph.max_degree if max_port is None else max_port
    return {
        (i, j): matching_m(graph, i, j)
        for i in range(1, bound + 1)
        for j in range(1, bound + 1)
    }
