"""Plain-text rendering of port-numbered graphs and solutions.

Used by the CLI and the figure reproductions to inspect constructions
without plotting dependencies.  The renderings are deterministic, so
they can be asserted against in tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["render_graph", "render_edge_set", "render_outputs"]


def render_graph(graph: PortNumberedGraph, *, title: str = "") -> str:
    """One line per node: degree and the connection of every port."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    width = max((len(str(v)) for v in graph.nodes), default=1)
    for v in graph.nodes:
        connections = "  ".join(
            f"{i}->{_port_str(graph.connection(v, i))}"
            for i in graph.ports(v)
        )
        lines.append(f"{str(v):>{width}} (deg {graph.degree(v)}): {connections}")
    if graph.num_nodes == 0:
        lines.append("(empty graph)")
    return "\n".join(lines)


def _port_str(port: tuple[Node, int]) -> str:
    node, index = port
    return f"{node}:{index}"


def render_edge_set(
    edges: Iterable[PortEdge], *, title: str = ""
) -> str:
    """A sorted, one-per-line listing of edges with their port pairs."""
    lines: list[str] = []
    if title:
        lines.append(title)
    edge_list = sorted(edges, key=repr)
    for e in edge_list:
        if e.is_directed_loop:
            lines.append(f"  loop {e.u}:{e.i}")
        else:
            lines.append(f"  {e.u}:{e.i} -- {e.v}:{e.j}")
    if not edge_list:
        lines.append("  (empty)")
    return "\n".join(lines)


def render_outputs(
    graph: PortNumberedGraph,
    outputs: Mapping[Node, frozenset[int]],
    *,
    title: str = "",
) -> str:
    """Per-node output port sets, with the selected edge count."""
    lines: list[str] = []
    if title:
        lines.append(title)
    width = max((len(str(v)) for v in graph.nodes), default=1)
    for v in graph.nodes:
        ports = sorted(outputs.get(v, frozenset()))
        lines.append(f"  X({str(v):>{width}}) = {ports}")
    return "\n".join(lines)
