"""Truncated views: what a node can possibly learn in t rounds.

The classical tool of anonymous distributed computing (Angluin [2];
Yamashita-Kameda [24]; used implicitly throughout paper §2.3): the
*view* of node ``v`` at depth ``t`` is the tree of everything reachable
by following connections for ``t`` hops, recording degrees and port
numbers along the way.  After ``t`` synchronous rounds, the state of a
deterministic anonymous node is a function of its depth-``t`` view —
so nodes with equal views produce equal outputs.

View trees grow exponentially with depth (branching = degree), so the
bulk API :func:`views_at_depth` never materialises them: it hash-conses
level by level through a :class:`ViewInterner`, assigning one small
integer per distinct view.  Two nodes (possibly of *different* graphs,
when the interner is shared) have the same view id iff their depth-t
views are isomorphic.  :func:`view` still builds the explicit tree for
small depths, for inspection and tests.

Relationships verified by the test suite:

* equal views at depth = running time  ⇒  equal outputs;
* the partition by depth-``n`` views equals the stable partition of
  :mod:`repro.portgraph.refinement`;
* covering maps preserve views at every depth.
"""

from __future__ import annotations

from typing import Hashable

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node

__all__ = ["view", "views_at_depth", "view_partition", "ViewInterner"]


class ViewInterner:
    """Hash-consing table assigning stable ids to view signatures.

    Ids are canonical within one interner instance; share an instance to
    compare views across graphs (e.g. a cover and its base).
    """

    def __init__(self) -> None:
        self._table: dict[Hashable, int] = {}

    def intern(self, signature: Hashable) -> int:
        return self._table.setdefault(signature, len(self._table))

    def __len__(self) -> int:
        return len(self._table)


def view(graph: PortNumberedGraph, node: Node, depth: int) -> Hashable:
    """The explicit depth-*depth* view tree of *node*.

    Encoded as nested tuples: ``(degree, ((peer_port, subview), ...))``
    with one entry per port in port order.  Exponential in *depth* —
    intended for small depths; use :func:`views_at_depth` for bulk work.
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    if depth == 0:
        return (graph.degree(node), ())
    children = []
    for i in graph.ports(node):
        u, j = graph.connection(node, i)
        children.append((j, view(graph, u, depth - 1)))
    return (graph.degree(node), tuple(children))


def views_at_depth(
    graph: PortNumberedGraph,
    depth: int,
    interner: ViewInterner | None = None,
) -> dict[Node, int]:
    """Interned view ids of every node at the given depth.

    Linear in ``depth * sum(degrees)``.  Equal ids ⇔ isomorphic views
    (within one interner; pass a shared interner to compare graphs).
    """
    if depth < 0:
        raise ValueError(f"depth must be >= 0, got {depth}")
    interner = interner if interner is not None else ViewInterner()
    # The level loop runs over the compiled flat arrays: following a
    # connection is one read of the flat involution instead of a
    # tuple-hash dict lookup.  Signatures are unchanged, so ids stay
    # compatible across interners fed by either representation.
    cg = graph.compiled()
    mate, port_node = cg.flat_lists()
    offsets = cg.offsets
    degrees = cg.degrees
    intern = interner.intern
    peer_label = cg.peer_local_list()
    current = [intern(("leaf", degree)) for degree in degrees]
    for level in range(1, depth + 1):
        current = [
            intern((
                level,
                degrees[k],
                tuple(
                    (peer_label[g], current[port_node[mate[g]]])
                    for g in range(offsets[k], offsets[k + 1])
                ),
            ))
            for k in range(cg.num_nodes)
        ]
    return {v: current[k] for k, v in enumerate(cg.nodes)}


def view_partition(
    graph: PortNumberedGraph, depth: int
) -> dict[Node, int]:
    """Block ids of the partition "equal views at *depth*"."""
    views = views_at_depth(graph, depth)
    ordered = sorted(set(views.values()))
    block_of_view = {vid: idx for idx, vid in enumerate(ordered)}
    return {v: block_of_view[views[v]] for v in graph.nodes}
