"""Array-backed port-numbered graphs: the direct-to-CSR construction path.

:class:`ArrayGraph` is a :class:`~repro.portgraph.graph.PortNumberedGraph`
built *from* the compiled CSR arrays instead of lowering *to* them: a
generator that already knows the flat layout (the structured families in
:mod:`repro.generators.direct`, the pairing-model ``pairing_regular``)
hands over ``offsets``/``mate``/``port_node`` and skips both the
``dict[Port, Port]`` involution walk and ``CompiledGraph.__init__``.

The dict views of the base class (``_degrees``, ``_p``, the edge tuple)
still exist — they materialise lazily on first touch via ``__getattr__``
(an unset ``__slots__`` descriptor raises ``AttributeError``, which is
exactly the hook).  Code that only needs the hot accessors — ``degree``,
``connection``, ``edge_at``, ``edges`` counts, regularity — is served
straight from the arrays, so a million-node graph never pays for the
per-port tuple dictionaries unless something genuinely asks for them.

Node order is the *builder's* construction order (``nodes`` as passed),
not the base class's repr-sort: the structured builders pass repr-sorted
nodes so they stay byte-identical to the networkx path, while
``pairing_regular`` uses numeric order because its port numbering is the
stub layout itself.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Mapping, Sequence

from repro.exceptions import InvolutionError, PortNumberingError
from repro.portgraph.compiled import CompiledGraph
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, Port, PortEdge

__all__ = ["ArrayGraph"]


def _as_q(values) -> array:
    """Coerce to the ``array('q')`` form the compiled contract requires."""
    if isinstance(values, array) and values.typecode == "q":
        return values
    return array("q", values)


class ArrayGraph(PortNumberedGraph):
    """A port-numbered graph whose source of truth is its CSR arrays.

    Parameters
    ----------
    nodes:
        The nodes in construction order; node *index* below means
        position in this sequence.
    degrees:
        ``degrees[k]`` — degree of node ``k``.
    offsets, mate, port_node:
        The compiled layout (see :class:`~repro.portgraph.compiled.
        CompiledGraph`); anything convertible to ``array('q')``.
    validate:
        Check structural validity (CSR consistency, involution).  On by
        default; builders that construct provably valid arrays pass
        ``False``.
    """

    __slots__ = ()

    def __init__(
        self,
        nodes: Sequence[Node],
        degrees: Sequence[int],
        offsets,
        mate,
        port_node,
        *,
        validate: bool = True,
    ) -> None:
        nodes = tuple(nodes)
        degrees = tuple(degrees)
        offsets = _as_q(offsets)
        mate = _as_q(mate)
        port_node = _as_q(port_node)
        if validate:
            _validate_arrays(nodes, degrees, offsets, mate, port_node)
        self._nodes = nodes
        self._hash = None
        self._compiled = CompiledGraph.from_arrays(
            self, nodes, degrees, offsets, mate, port_node
        )
        # ``_degrees``, ``_p``, ``_edges`` and ``_edge_at`` stay unset:
        # ``__getattr__`` materialises them on first touch.

    # ------------------------------------------------------------------
    # Lazy dict materialisation
    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        if name == "_degrees":
            value = dict(zip(self._nodes, self._compiled.degrees))
            self._degrees = value
            return value
        if name == "_p":
            value = self._materialise_involution()
            self._p = value
            return value
        if name == "_edges":
            value = tuple(self._iter_array_edges())
            self._edges = value
            return value
        if name == "_edge_at":
            value: dict[Port, PortEdge] = {}
            for edge in self._edges:
                for port in edge.ports:
                    value[port] = edge
            self._edge_at = value
            return value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def _port_of(self, g: int) -> Port:
        cg = self._compiled
        k = cg.port_node[g]
        return (cg.nodes[k], g - cg.offsets[k] + 1)

    def _materialise_involution(self) -> dict[Port, Port]:
        cg = self._compiled
        port_of = self._port_of
        return {
            port_of(g): port_of(cg.mate[g]) for g in range(cg.num_ports)
        }

    def _iter_array_edges(self) -> Iterator[PortEdge]:
        """Edges in construction (global-port) order.

        For builders that pass repr-sorted nodes this is exactly the
        base class's canonical ``port_sort_key`` order, so the tuple is
        byte-identical to the dict-built graph's.
        """
        cg = self._compiled
        mate = cg.mate
        port_of = self._port_of
        for g in range(cg.num_ports):
            m = mate[g]
            if m < g:
                continue
            (u, i), (v, j) = port_of(g), port_of(m)
            yield PortEdge.make(u, i, v, j)

    # ------------------------------------------------------------------
    # Array-native accessors (no dict materialisation)
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        cg = self._compiled
        try:
            return cg.memo["num_edges"]
        except KeyError:
            pass
        # Each involution orbit of size two is one edge on two ports; a
        # fixed point (directed loop) is one edge on one port.
        fixed = 0
        mate = cg.mate
        try:
            import numpy as np

            arange = np.arange(cg.num_ports, dtype=np.int64)
            fixed = int((np.frombuffer(mate, dtype=np.int64) == arange)
                        .sum()) if cg.num_ports else 0
        except ImportError:
            for g in range(cg.num_ports):
                if mate[g] == g:
                    fixed += 1
        value = (cg.num_ports + fixed) // 2
        cg.memo["num_edges"] = value
        return value

    def degree(self, node: Node) -> int:
        cg = self._compiled
        return cg.degrees[cg.node_index[node]]

    @property
    def degrees(self) -> Mapping[Node, int]:
        return dict(zip(self._nodes, self._compiled.degrees))

    def ports(self, node: Node) -> range:
        return range(1, self.degree(node) + 1)

    def connection(self, node: Node, port: int) -> Port:
        cg = self._compiled
        try:
            k = cg.node_index[node]
        except KeyError:
            raise KeyError(
                f"({node!r}, {port}) is not a port of the graph"
            ) from None
        if not 1 <= port <= cg.degrees[k]:
            raise KeyError(
                f"({node!r}, {port}) is not a port of the graph"
            )
        return self._port_of(cg.mate[cg.offsets[k] + port - 1])

    @property
    def involution(self) -> Mapping[Port, Port]:
        return self._materialise_involution()

    def edge_at(self, node: Node, port: int) -> PortEdge:
        (u, j) = self.connection(node, port)
        return PortEdge.make(node, port, u, j)

    def regularity(self) -> int | None:
        distinct = set(self._compiled.degrees)
        if len(distinct) == 1:
            return next(iter(distinct))
        return None

    @property
    def max_degree(self) -> int:
        cg = self._compiled
        try:
            return cg.memo["max_degree"]
        except KeyError:
            value = max(cg.degrees, default=0)
            cg.memo["max_degree"] = value
            return value

    def is_simple(self) -> bool:
        cg = self._compiled
        try:
            return cg.memo["is_simple"]
        except KeyError:
            pass
        value = self._compute_is_simple()
        cg.memo["is_simple"] = value
        return value

    def _compute_is_simple(self) -> bool:
        cg = self._compiled
        if not cg.num_ports:
            return True
        try:
            import numpy as np
        except ImportError:
            np = None
        if np is not None:
            mate = np.frombuffer(cg.mate, dtype=np.int64)
            owner = np.frombuffer(cg.port_node, dtype=np.int64)
            peer = owner[mate]
            if bool((peer == owner).any()):
                return False  # loop (directed or undirected)
            # Parallel edges: some node lists the same neighbour twice.
            key = owner * cg.num_nodes + peer
            return int(np.unique(key).size) == cg.num_ports
        mate, owner = cg.flat_lists()
        offsets = cg.offsets
        for k in range(cg.num_nodes):
            seen: set[int] = set()
            for g in range(offsets[k], offsets[k + 1]):
                peer = owner[mate[g]]
                if peer == k or peer in seen:
                    return False
                seen.add(peer)
        return True

    # ------------------------------------------------------------------
    # Compiled form / pickling
    # ------------------------------------------------------------------

    def compiled(self) -> CompiledGraph:
        # Built eagerly in ``__init__`` — the whole point of the direct
        # path is that generation *is* compilation.
        return self._compiled

    def __getstate__(self):
        cg = self._compiled
        return ("arrays", self._nodes, cg.degrees, cg.offsets, cg.mate,
                cg.port_node)

    def __setstate__(self, state) -> None:
        tag, nodes, degrees, offsets, mate, port_node = state
        assert tag == "arrays"
        self.__init__(
            nodes, degrees, offsets, mate, port_node, validate=False
        )


def _validate_arrays(
    nodes: tuple,
    degrees: tuple,
    offsets: array,
    mate: array,
    port_node: array,
) -> None:
    n = len(nodes)
    if len(set(nodes)) != n:
        raise PortNumberingError("duplicate node labels")
    if len(degrees) != n or len(offsets) != n + 1 or offsets[0] != 0:
        raise PortNumberingError(
            f"CSR shape mismatch: {n} nodes, {len(degrees)} degrees, "
            f"{len(offsets)} offsets"
        )
    for k in range(n):
        if degrees[k] < 0:
            raise PortNumberingError(
                f"node {nodes[k]!r} has negative degree {degrees[k]}"
            )
        if offsets[k + 1] - offsets[k] != degrees[k]:
            raise PortNumberingError(
                f"offsets do not match degrees at node index {k}"
            )
    total = offsets[n]
    if len(mate) != total or len(port_node) != total:
        raise PortNumberingError(
            f"expected {total} ports, got len(mate)={len(mate)} "
            f"len(port_node)={len(port_node)}"
        )
    try:
        import numpy as np
    except ImportError:
        np = None
    if np is not None and total:
        mate_np = np.frombuffer(mate, dtype=np.int64)
        owner_np = np.frombuffer(port_node, dtype=np.int64)
        offs = np.frombuffer(offsets, dtype=np.int64)
        expected_owner = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(offs)
        )
        if not np.array_equal(owner_np, expected_owner):
            raise PortNumberingError("port_node does not match offsets")
        if mate_np.min() < 0 or mate_np.max() >= total:
            raise InvolutionError("mate index out of range")
        arange = np.arange(total, dtype=np.int64)
        if not np.array_equal(mate_np[mate_np], arange):
            raise InvolutionError("mate is not an involution")
        return
    g = 0
    for k in range(n):
        for _ in range(degrees[k]):
            if port_node[g] != k:
                raise PortNumberingError(
                    "port_node does not match offsets"
                )
            g += 1
    for g in range(total):
        m = mate[g]
        if not 0 <= m < total:
            raise InvolutionError("mate index out of range")
        if mate[m] != g:
            raise InvolutionError("mate is not an involution")
