"""The compiled flat-array form of a port-numbered graph.

:class:`PortNumberedGraph` stores the involution as a ``dict[Port, Port]``
— ideal for validation and graph-theoretic queries, but every simulated
message pays a tuple-hash dict lookup, and a round loop over it churns
through per-node dictionaries.  :class:`CompiledGraph` lowers the same
structure once into flat integer arrays indexed by *global port index*:

* port ``(v, i)`` of the node with construction index ``k`` becomes the
  integer ``g = offsets[k] + i - 1`` (a CSR-style layout: the ports of
  node ``k`` occupy the half-open range ``offsets[k]..offsets[k + 1]``);
* the involution ``p`` becomes one flat ``array('q')`` ``mate`` with
  ``mate[g]`` the global index of ``p``'s image — routing a message is a
  single array read;
* ``port_node[g]`` recovers the owning node index, so local port numbers
  are ``g - offsets[port_node[g]] + 1`` with no dict in sight.

The compiled form is cached on the graph
(:meth:`PortNumberedGraph.compiled`), so the one-time ``O(|P|)``
lowering is shared by every run, measure, and benchmark touching the
same graph object.  Node order is the graph's own deterministic
construction order (``graph.nodes``) — the scheduler takes its fixed
delivery order from here instead of re-deriving it per run.
"""

from __future__ import annotations

from array import array

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, Port

__all__ = ["CompiledGraph"]


class CompiledGraph:
    """Flat-array lowering of one :class:`PortNumberedGraph`.

    Attributes
    ----------
    nodes:
        The graph's nodes in their deterministic construction order;
        node *index* below means position in this tuple.
    degrees:
        ``degrees[k]`` — degree of node ``k`` (plain tuple of ints).
    offsets:
        ``array('q')`` of length ``n + 1``; node ``k``'s ports occupy
        global indices ``offsets[k] .. offsets[k + 1] - 1``.
    mate:
        ``array('q')`` of length ``num_ports``; the involution as a flat
        map from global port index to global port index.
    port_node:
        ``array('q')``; the owning node index of each global port.
    """

    __slots__ = (
        "graph",
        "nodes",
        "node_index",
        "num_nodes",
        "degrees",
        "offsets",
        "num_ports",
        "mate",
        "port_node",
        "memo",
    )

    def __init__(self, graph: PortNumberedGraph) -> None:
        self.graph = graph
        nodes = graph.nodes
        self.nodes = nodes
        n = len(nodes)
        self.num_nodes = n
        node_index: dict[Node, int] = {v: k for k, v in enumerate(nodes)}
        self.node_index = node_index
        degree_of = graph.degrees
        degrees = tuple(degree_of[v] for v in nodes)
        self.degrees = degrees

        offset_list = [0] * (n + 1)
        port_owner: list[int] = []
        total = 0
        for k, degree in enumerate(degrees):
            offset_list[k] = total
            port_owner.extend([k] * degree)
            total += degree
        offset_list[n] = total
        self.offsets = array("q", offset_list)
        self.num_ports = total
        self.port_node = array("q", port_owner)

        # One pass over the involution (the graph's internal dict — the
        # public ``involution`` property would copy it).
        mate_list = [0] * total
        for (v, i), (u, j) in graph._p.items():
            mate_list[offset_list[node_index[v]] + i - 1] = (
                offset_list[node_index[u]] + j - 1
            )
        self.mate = array("q", mate_list)

        #: Derived read-only tables keyed by their producer (batch
        #: programs stash per-algorithm schedules here so repeated runs
        #: on one graph pay the derivation once, like the compiled form
        #: itself).  Entries must be immutable or never mutated.  The
        #: list forms of ``mate``/``port_node`` are seeded from the
        #: construction intermediates.
        self.memo: dict = {"flat_lists": (mate_list, port_owner)}

    @classmethod
    def from_arrays(
        cls,
        graph,
        nodes: tuple[Node, ...],
        degrees: tuple[int, ...],
        offsets: array,
        mate: array,
        port_node: array,
    ) -> "CompiledGraph":
        """Assemble a compiled graph directly from its CSR arrays.

        The direct-to-CSR construction path: generators that already
        know the flat layout (``repro.generators.direct``,
        ``pairing_regular``) hand the arrays over without ever
        materialising the ``dict[Port, Port]`` involution that
        ``__init__`` would walk.  *graph* is the owning
        :class:`~repro.portgraph.arrays.ArrayGraph` view (may be filled
        in by the caller immediately after construction).

        Arrays must be ``array('q')`` — the buffer-protocol contract the
        vector engine's zero-copy views rely on.  Structural validity
        (involution, ranges) is the caller's responsibility; the
        :class:`ArrayGraph` constructor validates by default.
        """
        self = object.__new__(cls)
        self.graph = graph
        self.nodes = tuple(nodes)
        n = len(self.nodes)
        self.num_nodes = n
        self.node_index = {v: k for k, v in enumerate(self.nodes)}
        self.degrees = tuple(degrees)
        self.offsets = offsets
        self.num_ports = offsets[n] if len(offsets) > n else 0
        self.mate = mate
        self.port_node = port_node
        # Unlike ``__init__`` there are no construction intermediates to
        # seed ``flat_lists`` from; the list forms materialise lazily on
        # first use by the compiled per-node loop.
        self.memo = {}
        return self

    def vector(self):
        """The numpy struct-of-arrays view of this graph, memoised.

        Requires the optional ``[vector]`` extra; callers check
        :func:`repro.portgraph.vector.numpy_available` first (the
        vector engine falls back to the compiled loop when numpy is
        missing).
        """
        try:
            return self.memo["vector_graph"]
        except KeyError:
            from repro.obs.spans import span
            from repro.portgraph.vector import VectorGraph

            with span("graph_build:vector_view", n=self.num_nodes):
                vg = VectorGraph(self)
            self.memo["vector_graph"] = vg
            return vg

    def flat_lists(self) -> tuple[list, list]:
        """``(mate, port_node)`` as plain lists, memoised.

        The ``array('q')`` form is the compact source of truth; hot
        loops read the list form (CPython list indexing returns cached
        int objects instead of re-boxing).
        """
        try:
            return self.memo["flat_lists"]
        except KeyError:
            lists = (list(self.mate), list(self.port_node))
            self.memo["flat_lists"] = lists
            return lists

    # -- index arithmetic ---------------------------------------------------

    def gport(self, node_index: int, local_port: int) -> int:
        """Global index of local port *local_port* (1-based) of a node."""
        return self.offsets[node_index] + local_port - 1

    def local(self, g: int) -> int:
        """The 1-based local port number of global port *g*."""
        return g - self.offsets[self.port_node[g]] + 1

    def port(self, g: int) -> Port:
        """Global port index back to the model's ``(node, port)`` pair."""
        k = self.port_node[g]
        return (self.nodes[k], g - self.offsets[k] + 1)

    def peer_local(self, g: int) -> int:
        """Local port number at the far end of global port *g*."""
        return self.local(self.mate[g])

    def peer_local_list(self) -> list[int]:
        """:meth:`peer_local` for every global port, memoised."""
        try:
            return self.memo["peer_local"]
        except KeyError:
            mate, port_node = self.flat_lists()
            offsets = self.offsets
            table = [
                mate[g] - offsets[port_node[mate[g]]] + 1
                for g in range(self.num_ports)
            ]
            self.memo["peer_local"] = table
            return table

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledGraph(n={self.num_nodes}, ports={self.num_ports})"
        )
