"""Ports and port-level edges for port-numbered graphs (paper Section 2.1).

A *port* is a pair ``(v, i)`` where ``v`` is a node and ``i`` is an integer
in ``1..deg(v)``.  The connection structure of a port-numbered graph is an
involution ``p`` on the set of ports; every orbit of ``p`` of size two is an
edge between two distinct ports, and every fixed point is a directed loop.

This module defines the light-weight value types shared by the rest of the
package:

* :class:`PortEdge` — an edge identified by its (unordered) pair of ports.
* helper predicates for loops and canonical ordering.

Nodes may be arbitrary hashable objects; canonical ordering of ports inside
a :class:`PortEdge` is by ``(repr(node), port)`` which is deterministic for
the node types used throughout this package (strings, ints, tuples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple

__all__ = ["Node", "Port", "PortEdge", "port_sort_key"]

Node = Hashable
Port = Tuple[Node, int]


def port_sort_key(port: Port) -> tuple[str, int]:
    """Deterministic total order on ports, independent of hash seeds."""
    node, index = port
    return (repr(node), index)


@dataclass(frozen=True)
class PortEdge:
    """An edge of a port-numbered graph, identified by its two ports.

    Attributes
    ----------
    u, i:
        One endpoint and the port number on that endpoint.
    v, j:
        The other endpoint and its port number.

    The constructor canonicalises the orientation so that equal edges
    compare equal: ``(u, i)`` is the lexicographically smaller port.  A
    *directed loop* (a fixed point ``p(v, i) = (v, i)`` of the involution)
    has ``u == v`` and ``i == j``; an *undirected loop* (``p(v, i) = (v, j)``
    with ``i != j``) has ``u == v`` and ``i != j``.
    """

    u: Node
    i: int
    v: Node
    j: int

    def __post_init__(self) -> None:
        if port_sort_key((self.u, self.i)) > port_sort_key((self.v, self.j)):
            u, i, v, j = self.v, self.j, self.u, self.i
            object.__setattr__(self, "u", u)
            object.__setattr__(self, "i", i)
            object.__setattr__(self, "v", v)
            object.__setattr__(self, "j", j)

    @classmethod
    def make(cls, u: Node, i: int, v: Node, j: int) -> "PortEdge":
        """Create a canonically ordered :class:`PortEdge`."""
        return cls(u, i, v, j)

    @property
    def ports(self) -> frozenset[Port]:
        """The set of ports of this edge (one port for a directed loop)."""
        return frozenset({(self.u, self.i), (self.v, self.j)})

    @property
    def endpoints(self) -> frozenset[Node]:
        """The set of endpoint nodes (a singleton for loops)."""
        return frozenset({self.u, self.v})

    @property
    def is_loop(self) -> bool:
        """True when both endpoints coincide (directed or undirected loop)."""
        return self.u == self.v

    @property
    def is_directed_loop(self) -> bool:
        """True for a fixed point of the involution, ``p(v, i) = (v, i)``."""
        return self.u == self.v and self.i == self.j

    def other_endpoint(self, node: Node) -> Node:
        """Return the endpoint different from *node* (or *node* for loops)."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise KeyError(f"{node!r} is not an endpoint of {self!r}")

    def port_at(self, node: Node) -> int:
        """Return the port number of this edge at *node*.

        For an undirected loop both ports belong to *node*; the smaller one
        is returned.  Raises :class:`KeyError` if *node* is not an endpoint.
        """
        if node == self.u:
            return self.i
        if node == self.v:
            return self.j
        raise KeyError(f"{node!r} is not an endpoint of {self!r}")

    def node_pair(self) -> frozenset[Node]:
        """Alias of :attr:`endpoints`, matching the paper's ``{u, v}``."""
        return self.endpoints

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortEdge({self.u!r}:{self.i} -- {self.v!r}:{self.j})"
