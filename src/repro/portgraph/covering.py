"""Covering maps between port-numbered graphs (paper Section 2.3).

A surjection ``f : V(H) -> V(G)`` is a *covering map* when it preserves
degrees and connections: ``d_H(v) = d_G(f(v))`` and
``p_H(v, i) = (u, j)`` implies ``p_G(f(v), i) = (f(u), j)``.

The fundamental fact (paper Section 2.3) is that a deterministic
distributed algorithm cannot distinguish a graph from its covering graph:
node ``v`` of ``H`` always produces the same output as node ``f(v)`` of
``G``.  Both lower-bound constructions rest on this, and the property is
used throughout the test suite as a universal differential test.

This module provides:

* :func:`verify_covering_map` / :func:`is_covering_map` — check the two
  conditions plus surjectivity;
* :func:`quotient_by_partition` — collapse a graph along a node partition
  when the partition is *connection-consistent*, yielding the quotient
  multigraph and the covering map onto it;
* :func:`random_lift` — a random k-fold covering graph, for property-based
  testing of lifting invariance.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Mapping

from repro.exceptions import CoveringMapError, QuotientError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, Port, port_sort_key

__all__ = [
    "verify_covering_map",
    "is_covering_map",
    "quotient_by_partition",
    "random_lift",
]


def verify_covering_map(
    cover: PortNumberedGraph,
    base: PortNumberedGraph,
    f: Mapping[Node, Node],
) -> None:
    """Raise :class:`CoveringMapError` unless *f* is a covering map.

    Checks, in order: totality of *f*, surjectivity onto the base's nodes,
    degree preservation, and connection preservation.
    """
    missing = [v for v in cover.nodes if v not in f]
    if missing:
        raise CoveringMapError(f"f is undefined on nodes {missing[:5]!r}")

    image = {f[v] for v in cover.nodes}
    base_nodes = set(base.nodes)
    if not image <= base_nodes:
        raise CoveringMapError(
            f"f maps onto nodes outside the base graph: "
            f"{sorted(image - base_nodes, key=repr)[:5]!r}"
        )
    if image != base_nodes:
        raise CoveringMapError(
            f"f is not surjective; uncovered base nodes: "
            f"{sorted(base_nodes - image, key=repr)[:5]!r}"
        )

    for v in cover.nodes:
        if cover.degree(v) != base.degree(f[v]):
            raise CoveringMapError(
                f"degree not preserved at {v!r}: "
                f"d_H({v!r}) = {cover.degree(v)} but "
                f"d_G({f[v]!r}) = {base.degree(f[v])}"
            )

    for v in cover.nodes:
        for i in cover.ports(v):
            u, j = cover.connection(v, i)
            expected = base.connection(f[v], i)
            if expected != (f[u], j):
                raise CoveringMapError(
                    f"connection not preserved at port ({v!r}, {i}): "
                    f"p_H maps it to ({u!r}, {j}) so the base needs "
                    f"p_G({f[v]!r}, {i}) = ({f[u]!r}, {j}), "
                    f"but p_G({f[v]!r}, {i}) = {expected!r}"
                )


def is_covering_map(
    cover: PortNumberedGraph,
    base: PortNumberedGraph,
    f: Mapping[Node, Node],
) -> bool:
    """Boolean form of :func:`verify_covering_map`."""
    try:
        verify_covering_map(cover, base, f)
    except CoveringMapError:
        return False
    return True


def quotient_by_partition(
    graph: PortNumberedGraph,
    block_of: Mapping[Node, Hashable],
) -> tuple[PortNumberedGraph, dict[Node, Hashable]]:
    """Collapse *graph* along a node partition into a quotient multigraph.

    ``block_of`` assigns each node to a block label.  The partition must be
    *connection-consistent*: all nodes of a block share one degree, and for
    every port ``i`` the connection ``p(v, i) = (u, j)`` lands in the same
    block with the same port number ``j`` for every ``v`` in the block.

    Returns the quotient graph (whose nodes are the block labels) together
    with the covering map ``node -> block``; the map is verified before
    being returned.

    Raises
    ------
    QuotientError
        If the partition is not connection-consistent.
    """
    missing = [v for v in graph.nodes if v not in block_of]
    if missing:
        raise QuotientError(f"partition undefined on nodes {missing[:5]!r}")

    blocks: dict[Hashable, list[Node]] = {}
    for v in graph.nodes:
        blocks.setdefault(block_of[v], []).append(v)

    degrees: dict[Node, int] = {}
    for label, members in blocks.items():
        block_degrees = {graph.degree(v) for v in members}
        if len(block_degrees) != 1:
            raise QuotientError(
                f"block {label!r} mixes degrees {sorted(block_degrees)}"
            )
        degrees[label] = next(iter(block_degrees))

    involution: dict[Port, Port] = {}
    for label, members in blocks.items():
        for i in range(1, degrees[label] + 1):
            targets = {
                (block_of[graph.connection(v, i)[0]], graph.connection(v, i)[1])
                for v in members
            }
            if len(targets) != 1:
                raise QuotientError(
                    f"port ({label!r}, {i}) is not well defined: members of "
                    f"the block connect to {sorted(targets, key=port_sort_key)[:5]!r}"
                )
            involution[(label, i)] = next(iter(targets))

    quotient = PortNumberedGraph(degrees, involution)
    f = {v: block_of[v] for v in graph.nodes}
    verify_covering_map(graph, quotient, f)
    return quotient, f


def _random_involution(k: int, rng: random.Random) -> list[int]:
    """A uniformly chosen involution on ``0..k-1`` (may have fixed points)."""
    items = list(range(k))
    rng.shuffle(items)
    sigma = list(range(k))
    while items:
        a = items.pop()
        if not items or rng.random() < 0.5:
            sigma[a] = a
        else:
            b = items.pop()
            sigma[a], sigma[b] = b, a
    return sigma


def random_lift(
    base: PortNumberedGraph,
    fold: int,
    seed: int | None = None,
    node_name: Callable[[Node, int], Node] | None = None,
) -> tuple[PortNumberedGraph, dict[Node, Node]]:
    """Construct a random *fold*-sheeted covering graph of *base*.

    Every node ``v`` of the base lifts to copies ``(v, 0) .. (v, fold-1)``.
    For every edge orbit ``{(v, i), (u, j)}`` of the base involution a
    random permutation ``pi`` of the sheets is chosen and copy ``s`` of
    ``(v, i)`` is wired to copy ``pi(s)`` of ``(u, j)``; fixed points (the
    base's directed loops) use a random involution of the sheets so the
    lifted map remains an involution.

    Returns the lift together with the covering map (projection onto the
    first coordinate, post-processed through *node_name* if given).
    """
    if fold < 1:
        raise CoveringMapError(f"fold must be >= 1, got {fold}")
    rng = random.Random(seed)
    name = node_name or (lambda v, s: (v, s))

    degrees: dict[Node, int] = {}
    for v in base.nodes:
        for s in range(fold):
            degrees[name(v, s)] = base.degree(v)

    involution: dict[Port, Port] = {}
    seen: set[Port] = set()
    for port in sorted(base.involution, key=port_sort_key):
        if port in seen:
            continue
        image = base.connection(*port)
        seen.add(port)
        seen.add(image)
        (v, i), (u, j) = port, image
        if (v, i) == (u, j):
            sigma = _random_involution(fold, rng)
            for s in range(fold):
                involution[(name(v, s), i)] = (name(v, sigma[s]), i)
        else:
            pi = list(range(fold))
            rng.shuffle(pi)
            for s in range(fold):
                involution[(name(v, s), i)] = (name(u, pi[s]), j)
                involution[(name(u, pi[s]), j)] = (name(v, s), i)

    lift = PortNumberedGraph(degrees, involution)
    f = {name(v, s): v for v in base.nodes for s in range(fold)}
    verify_covering_map(lift, base, f)
    return lift, f
