"""The numpy struct-of-arrays view of a compiled port graph.

:class:`~repro.portgraph.compiled.CompiledGraph` lowers a port-numbered
graph into flat ``array('q')`` tables sized for CPython loops; the
vector engine (:mod:`repro.runtime.vector`) wants the same tables as
``np.int64`` arrays so one round of the simulation becomes a handful of
whole-graph array operations — messages gathered through the involution
with a single fancy-index, per-node state reduced over CSR segments
with ``reduceat``.  :class:`VectorGraph` is that view: derived once per
compiled graph and memoised alongside the other derived tables
(``CompiledGraph.memo``), so repeated runs share it exactly like the
batch programs share their schedules.

numpy is an *optional* dependency (the ``[vector]`` extra).  This
module imports without it — :data:`np` is ``None`` and
:func:`numpy_available` answers ``False`` — and every consumer is
expected to check availability before constructing a view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.portgraph.compiled import CompiledGraph

__all__ = ["VectorGraph", "np", "numpy_available", "numpy_version"]


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    return np is not None


def numpy_version() -> str | None:
    """The installed numpy version, or ``None`` when unavailable."""
    return None if np is None else np.__version__


#: Sentinel for "no value" in int64 segment reductions.
_INT64_MAX = (1 << 63) - 1


class VectorGraph:
    """``np.int64`` tables of one compiled graph, indexed by global port.

    Attributes
    ----------
    offsets / degrees / mate / port_node:
        The compiled tables as numpy arrays (``offsets`` has length
        ``n + 1``; the rest are per-port / per-node).
    local:
        1-based local port number of every global port.
    peer_node / peer_local:
        Owning node index / local port number at the far end of every
        global port (one ``mate`` gather, precomputed).
    all_ports:
        ``np.arange(num_ports)`` — the identity send list of a total
        broadcast round.
    """

    __slots__ = (
        "cg",
        "num_nodes",
        "num_ports",
        "offsets",
        "degrees",
        "mate",
        "port_node",
        "local",
        "peer_node",
        "peer_local",
        "all_ports",
        "_starts",
    )

    def __init__(self, cg: "CompiledGraph") -> None:
        if np is None:  # pragma: no cover - callers guard
            raise ImportError(
                "VectorGraph needs numpy; install the [vector] extra"
            )
        self.cg = cg
        n = cg.num_nodes
        total = cg.num_ports
        self.num_nodes = n
        self.num_ports = total
        # array('q') exposes the buffer protocol: these are zero-copy
        # read-only-by-convention views of the compiled tables.
        self.offsets = np.frombuffer(cg.offsets, dtype=np.int64)
        self.mate = np.frombuffer(cg.mate, dtype=np.int64)
        self.port_node = np.frombuffer(cg.port_node, dtype=np.int64)
        self.degrees = np.asarray(cg.degrees, dtype=np.int64)
        self.all_ports = np.arange(total, dtype=np.int64)
        self.local = self.all_ports - self.offsets[self.port_node] + 1
        self.peer_node = self.port_node[self.mate]
        self.peer_local = self.local[self.mate]
        # reduceat segment starts, clipped so empty trailing segments
        # stay in bounds (their results are masked out by callers).
        if total:
            self._starts = np.minimum(self.offsets[:-1], total - 1)
        else:
            self._starts = None

    def segment_min(self, values, empty: int = _INT64_MAX):
        """Per-node minimum of a per-port int64 array.

        ``values[offsets[k]:offsets[k+1]].min()`` for every node, with
        *empty* filled in for degree-0 nodes (``reduceat`` has no empty
        -segment semantics, so their slots are overwritten).
        """
        if self._starts is None:
            return np.full(self.num_nodes, empty, dtype=np.int64)
        out = np.minimum.reduceat(values, self._starts)
        if (self.degrees == 0).any():
            out = np.where(self.degrees == 0, empty, out)
        return out

    def port_sets(self, mask) -> "list[frozenset[int]]":
        """Per-node frozensets of the local ports selected by *mask*.

        The one deliberately-Python step of the vector engine: outputs
        are materialised once per run, after the array loop finishes.
        """
        selected = np.flatnonzero(mask)
        locs = self.local[selected].tolist()
        owners = self.port_node[selected]
        bounds = np.searchsorted(
            owners, np.arange(self.num_nodes + 1, dtype=np.int64)
        )
        return [
            frozenset(locs[bounds[k]:bounds[k + 1]])
            for k in range(self.num_nodes)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VectorGraph(n={self.num_nodes}, ports={self.num_ports})"
