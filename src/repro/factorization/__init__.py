"""Graph factorisation substrate: Euler circuits, Petersen 2-factorisation,
König 1-factorisation (paper Section 2 and the port numberings of
Sections 3.2 / 4.1)."""

from repro.factorization.euler import (
    Arc,
    MultiEdge,
    eulerian_circuits,
    orient_along_euler,
)
from repro.factorization.one_factor import (
    is_one_factor,
    one_factorise_bipartite,
    one_factorise_bipartite_nx,
)
from repro.factorization.two_factor import (
    TwoFactor,
    is_two_factor,
    two_factorise,
    two_factorise_nx,
)

__all__ = [
    "Arc",
    "MultiEdge",
    "eulerian_circuits",
    "orient_along_euler",
    "TwoFactor",
    "two_factorise",
    "two_factorise_nx",
    "is_two_factor",
    "one_factorise_bipartite",
    "one_factorise_bipartite_nx",
    "is_one_factor",
]
