"""Petersen 2-factorisation of 2k-regular multigraphs.

Petersen's theorem (1891; paper Section 2, reference [20]) states that
every 2k-regular multigraph decomposes into k edge-disjoint 2-factors.
Both lower-bound constructions (paper Sections 3.2 and 4.1) use such a
decomposition to define their adversarial port numbering: each factor is
oriented into directed cycles, and factor ``i`` pairs port ``2i - 1`` with
port ``2i``.

Algorithm (the classical constructive proof):

1. Orient each connected component along an Euler circuit.  Every node now
   has out-degree = in-degree = k.
2. Form the bipartite *split graph*: left copy ``(v, 'out')``, right copy
   ``(v, 'in')``, one bipartite edge per arc.  The split graph is
   k-regular, so by Hall's theorem it has a perfect matching.
3. Repeatedly extract a perfect matching (our Hopcroft-Karp) and remove
   it.  Each matching assigns every node exactly one outgoing and one
   incoming arc — a spanning union of directed cycles, i.e. a 2-factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.exceptions import FactorizationError
from repro.factorization.euler import Arc, MultiEdge, orient_along_euler
from repro.matching.bipartite import maximum_bipartite_matching
from repro.portgraph.ports import Node

__all__ = ["TwoFactor", "two_factorise", "two_factorise_nx", "is_two_factor"]


@dataclass(frozen=True)
class TwoFactor:
    """One 2-factor, stored as an orientation into directed cycles.

    ``arcs`` contains exactly one outgoing and one incoming arc per node of
    the factorised graph; following successors traces the disjoint cycles.
    """

    arcs: tuple[Arc, ...]

    def successor_map(self) -> dict[Node, Node]:
        """Map every node to its successor on its cycle."""
        return {arc.tail: arc.head for arc in self.arcs}

    def predecessor_map(self) -> dict[Node, Node]:
        """Map every node to its predecessor on its cycle."""
        return {arc.head: arc.tail for arc in self.arcs}

    def edge_keys(self) -> frozenset[Hashable]:
        """The identities of the undirected edges used by this factor."""
        return frozenset(arc.key for arc in self.arcs)

    def cycles(self) -> list[list[Node]]:
        """The factor's cycles, each as a list of nodes in cycle order."""
        successor = self.successor_map()
        remaining = set(successor)
        result: list[list[Node]] = []
        while remaining:
            start = min(remaining, key=repr)
            cycle = [start]
            remaining.discard(start)
            node = successor[start]
            while node != start:
                cycle.append(node)
                remaining.discard(node)
                node = successor[node]
            result.append(cycle)
        return result


def two_factorise(
    nodes: Iterable[Node],
    edges: Sequence[MultiEdge],
) -> list[TwoFactor]:
    """Decompose a 2k-regular multigraph into k 2-factors.

    Raises
    ------
    FactorizationError
        If the graph is not regular of even degree, or (impossible for
        correct input) a perfect matching cannot be extracted.
    """
    node_list = sorted(set(nodes), key=repr)
    degree: dict[Node, int] = {v: 0 for v in node_list}
    for edge in edges:
        degree[edge.u] += 1
        degree[edge.v] += 1

    degree_values = set(degree.values())
    if len(degree_values) > 1:
        raise FactorizationError(
            f"2-factorisation requires a regular graph; degrees "
            f"{sorted(degree_values)}"
        )
    d = next(iter(degree_values)) if degree_values else 0
    if d % 2:
        raise FactorizationError(
            f"2-factorisation requires even degree, got {d}"
        )
    k = d // 2
    if k == 0:
        return []

    arcs = orient_along_euler(node_list, edges)

    # out_arcs[u][v] = stack of parallel arcs u -> v awaiting assignment
    out_arcs: dict[Node, dict[Node, list[Arc]]] = {v: {} for v in node_list}
    for arc in arcs:
        out_arcs[arc.tail].setdefault(arc.head, []).append(arc)

    factors: list[TwoFactor] = []
    for _ in range(k):
        adjacency = {
            u: sorted(
                (v for v, stack in heads.items() if stack), key=repr
            )
            for u, heads in out_arcs.items()
        }
        matching = maximum_bipartite_matching(adjacency)
        if len(matching) != len(node_list):
            raise FactorizationError(
                "internal error: split graph of an Euler orientation "
                "must have a perfect matching"
            )
        chosen: list[Arc] = []
        for u, v in sorted(matching.items(), key=lambda kv: repr(kv[0])):
            chosen.append(out_arcs[u][v].pop())
        factors.append(TwoFactor(tuple(chosen)))

    leftovers = sum(
        len(stack) for heads in out_arcs.values() for stack in heads.values()
    )
    if leftovers:
        raise FactorizationError(
            f"internal error: {leftovers} arcs left after factorisation"
        )
    return factors


def _nx_multiedges(graph: nx.Graph) -> list[MultiEdge]:
    """Extract keyed edges from a networkx (multi)graph."""
    edges: list[MultiEdge] = []
    if graph.is_multigraph():
        for index, (u, v, key) in enumerate(graph.edges(keys=True)):
            edges.append(MultiEdge(u, v, (u, v, key, index)))
    else:
        for u, v in graph.edges():
            a, b = sorted((u, v), key=repr)
            edges.append(MultiEdge(u, v, (a, b)))
    return edges


def two_factorise_nx(graph: nx.Graph) -> list[TwoFactor]:
    """Petersen 2-factorisation of a 2k-regular networkx (multi)graph."""
    if graph.is_directed():
        raise FactorizationError("two_factorise_nx expects an undirected graph")
    return two_factorise(graph.nodes, _nx_multiedges(graph))


def is_two_factor(
    factor: TwoFactor,
    nodes: Iterable[Node],
    edges: Sequence[MultiEdge] | None = None,
) -> bool:
    """Check that *factor* spans *nodes* with out-degree = in-degree = 1.

    When *edges* is given, additionally checks that every arc is an
    orientation of a distinct edge from the sequence.
    """
    node_set = set(nodes)
    tails = [arc.tail for arc in factor.arcs]
    heads = [arc.head for arc in factor.arcs]
    if set(tails) != node_set or set(heads) != node_set:
        return False
    if len(set(tails)) != len(tails) or len(set(heads)) != len(heads):
        return False
    if edges is not None:
        by_key = {edge.key: edge for edge in edges}
        used = set()
        for arc in factor.arcs:
            edge = by_key.get(arc.key)
            if edge is None or arc.key in used:
                return False
            if {arc.tail, arc.head} != {edge.u, edge.v}:
                return False
            used.add(arc.key)
    return True
