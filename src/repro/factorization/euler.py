"""Eulerian circuits on undirected multigraphs (Hierholzer's algorithm).

Substrate for Petersen 2-factorisation (paper Section 2, reference [20]):
orienting a 2k-regular multigraph along Euler circuits yields a directed
graph in which every node has in-degree and out-degree exactly ``k``.

Edges are identified by explicit keys so that parallel edges and loops are
handled correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from repro.exceptions import FactorizationError
from repro.portgraph.ports import Node

__all__ = ["Arc", "MultiEdge", "eulerian_circuits", "orient_along_euler"]


@dataclass(frozen=True)
class MultiEdge:
    """An undirected multigraph edge with an identifying key."""

    u: Node
    v: Node
    key: Hashable

    @property
    def is_loop(self) -> bool:
        return self.u == self.v


@dataclass(frozen=True)
class Arc:
    """A directed edge (an orientation of a :class:`MultiEdge`)."""

    tail: Node
    head: Node
    key: Hashable


def eulerian_circuits(
    nodes: Iterable[Node],
    edges: Sequence[MultiEdge],
) -> list[list[Arc]]:
    """Euler circuits of every connected component with at least one edge.

    Every edge is traversed exactly once over all returned circuits; each
    circuit is closed (its last head equals its first tail).

    Raises
    ------
    FactorizationError
        If some node has odd degree (loops count 2 towards the degree).
    """
    node_list = sorted(set(nodes), key=repr)
    adjacency: dict[Node, list[tuple[Node, Hashable]]] = {
        v: [] for v in node_list
    }
    degree: dict[Node, int] = {v: 0 for v in node_list}
    for edge in edges:
        if edge.u not in adjacency or edge.v not in adjacency:
            raise FactorizationError(
                f"edge {edge!r} references a node outside the node set"
            )
        adjacency[edge.u].append((edge.v, edge.key))
        degree[edge.u] += 1
        degree[edge.v] += 1
        if not edge.is_loop:
            adjacency[edge.v].append((edge.u, edge.key))
        else:
            adjacency[edge.u].append((edge.u, edge.key))

    odd = [v for v, d in degree.items() if d % 2]
    if odd:
        raise FactorizationError(
            f"Euler circuit requires all degrees even; odd at {odd[:5]!r}"
        )

    pointer: dict[Node, int] = {v: 0 for v in node_list}
    used: set[Hashable] = set()
    circuits: list[list[Arc]] = []

    for start in node_list:
        if degree[start] == 0:
            continue
        if pointer[start] >= len(adjacency[start]):
            continue
        # Skip nodes whose incident edges were all consumed by an earlier
        # circuit of the same component.
        if all(key in used for _, key in adjacency[start][pointer[start]:]):
            continue

        stack: list[tuple[Node, Arc | None]] = [(start, None)]
        circuit_reversed: list[Arc] = []
        while stack:
            v, arc_in = stack[-1]
            advanced = False
            while pointer[v] < len(adjacency[v]):
                w, key = adjacency[v][pointer[v]]
                pointer[v] += 1
                if key in used:
                    continue
                used.add(key)
                stack.append((w, Arc(v, w, key)))
                advanced = True
                break
            if not advanced:
                stack.pop()
                if arc_in is not None:
                    circuit_reversed.append(arc_in)
        circuit = list(reversed(circuit_reversed))
        if circuit:
            circuits.append(circuit)

    if len(used) != len(edges):
        # Can only happen if edge keys collide.
        raise FactorizationError(
            "not all edges were traversed; are edge keys unique?"
        )
    return circuits


def orient_along_euler(
    nodes: Iterable[Node],
    edges: Sequence[MultiEdge],
) -> list[Arc]:
    """Orient every edge along an Euler circuit of its component.

    In the resulting orientation each node's out-degree equals its
    in-degree (half its undirected degree).
    """
    arcs: list[Arc] = []
    for circuit in eulerian_circuits(nodes, edges):
        arcs.extend(circuit)
    return arcs
