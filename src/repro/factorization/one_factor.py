"""König 1-factorisation of regular bipartite graphs.

König's edge-colouring theorem: every d-regular bipartite multigraph is the
union of d perfect matchings.  The constructive proof peels off one perfect
matching at a time (each exists by Hall's theorem; we find it with our
Hopcroft-Karp implementation).

In this package 1-factorisations are used as a substrate utility (e.g. to
build alternative adversarial port numberings of bipartite regular graphs
and in tests of the factorisation stack).  Note that *general* regular
graphs need not admit a 1-factorisation — the paper points at the odd cycle
— which is exactly why the lower-bound constructions rely on Petersen
2-factorisation instead.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.exceptions import FactorizationError
from repro.factorization.euler import MultiEdge
from repro.matching.bipartite import maximum_bipartite_matching
from repro.portgraph.ports import Node

__all__ = ["one_factorise_bipartite", "one_factorise_bipartite_nx", "is_one_factor"]


def one_factorise_bipartite(
    left: Iterable[Node],
    right: Iterable[Node],
    edges: Sequence[MultiEdge],
) -> list[list[MultiEdge]]:
    """Decompose a d-regular bipartite multigraph into d perfect matchings.

    ``edges`` must each join a *left* node to a *right* node (in either
    orientation).  Returns a list of d matchings; every matching covers all
    nodes and every edge appears in exactly one matching.
    """
    left_set = set(left)
    right_set = set(right)
    if left_set & right_set:
        raise FactorizationError("left and right sides must be disjoint")
    if len(left_set) != len(right_set):
        if edges:
            raise FactorizationError(
                "a regular bipartite graph with edges needs equal sides; "
                f"got {len(left_set)} vs {len(right_set)}"
            )
        return []

    degree: dict[Node, int] = {v: 0 for v in left_set | right_set}
    oriented: dict[Node, dict[Node, list[MultiEdge]]] = {
        u: {} for u in left_set
    }
    for edge in edges:
        if edge.u in left_set and edge.v in right_set:
            u, v = edge.u, edge.v
        elif edge.v in left_set and edge.u in right_set:
            u, v = edge.v, edge.u
        else:
            raise FactorizationError(
                f"edge {edge!r} does not join the two sides"
            )
        degree[edge.u] += 1
        degree[edge.v] += 1
        oriented[u].setdefault(v, []).append(edge)

    degree_values = set(degree.values())
    if len(degree_values) > 1:
        raise FactorizationError(
            f"1-factorisation requires a regular graph; degrees "
            f"{sorted(degree_values)}"
        )
    d = next(iter(degree_values)) if degree_values else 0

    factors: list[list[MultiEdge]] = []
    for _ in range(d):
        adjacency = {
            u: sorted((v for v, stack in heads.items() if stack), key=repr)
            for u, heads in oriented.items()
        }
        matching = maximum_bipartite_matching(adjacency)
        if len(matching) != len(left_set):
            raise FactorizationError(
                "internal error: regular bipartite graph must have a "
                "perfect matching (Hall)"
            )
        factor = [
            oriented[u][v].pop()
            for u, v in sorted(matching.items(), key=lambda kv: repr(kv[0]))
        ]
        factors.append(factor)
    return factors


def one_factorise_bipartite_nx(graph: nx.Graph) -> list[list[MultiEdge]]:
    """1-factorise a d-regular bipartite networkx graph.

    The bipartition is recovered by 2-colouring; the graph must be
    connected per component bipartite (networkx determines the sides).
    """
    if graph.is_directed():
        raise FactorizationError("expected an undirected graph")
    try:
        colouring = nx.bipartite.color(graph)
    except nx.NetworkXError as exc:
        raise FactorizationError(f"graph is not bipartite: {exc}") from exc
    left = [v for v, c in colouring.items() if c == 0]
    right = [v for v, c in colouring.items() if c == 1]
    edges: list[MultiEdge] = []
    if graph.is_multigraph():
        for index, (u, v, key) in enumerate(graph.edges(keys=True)):
            edges.append(MultiEdge(u, v, (u, v, key, index)))
    else:
        for u, v in graph.edges():
            a, b = sorted((u, v), key=repr)
            edges.append(MultiEdge(u, v, (a, b)))
    return one_factorise_bipartite(left, right, edges)


def is_one_factor(
    factor: Sequence[MultiEdge],
    nodes: Iterable[Node],
) -> bool:
    """Check that *factor* is a perfect matching on *nodes*."""
    node_set = set(nodes)
    covered: set[Node] = set()
    for edge in factor:
        if edge.is_loop:
            return False
        if edge.u in covered or edge.v in covered:
            return False
        covered.add(edge.u)
        covered.add(edge.v)
    return covered == node_set
