"""Parallel experiment engine with content-addressed result caching.

The engine turns the reproduction's experiments into data-driven grids:

* :mod:`repro.engine.spec` — declarative, hashable work units
  (:class:`JobSpec` / :class:`GraphSpec`) and deterministic seeding;
* :mod:`repro.engine.grid` — :class:`SweepGrid` expansion of
  algorithm × family × size × seed grids;
* :mod:`repro.engine.cache` — the content-addressed on-disk cache under
  ``.repro-cache/`` keyed by the SHA-256 of each unit's canonical JSON;
* :mod:`repro.engine.executor` — serial or ``multiprocessing``-sharded
  execution with write-through caching and progress/ETA reporting;
* :mod:`repro.engine.measures` — the built-in measures (``quality``,
  ``messages``, ``adversary``, ``phase_split``) and the shared
  build → run → measure → record pipeline behind the
  :mod:`repro.registry.measures` plugin protocol;
* :mod:`repro.engine.records` — typed result records and the JSONL
  results store the analysis layer formats.

Every experiment driver (Table 1, sweeps, ablations) routes its
execution through :func:`run_units`, so any repeated cell anywhere in
the harness is computed exactly once per cache directory.
"""

from repro.engine.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
)
from repro.engine.executor import (
    ExecutionReport,
    ProgressPrinter,
    execute_unit,
    run_units,
)
from repro.engine.grid import SweepGrid
from repro.engine.measures import default_execute, unit_rng_seed
from repro.engine.records import ResultRecord, ResultStore
from repro.engine.scenarios import SCENARIOS, get_scenario, scenario_names
from repro.engine.spec import (
    GraphSpec,
    JobSpec,
    canonical_json,
    derive_seed,
    graph_families,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ExecutionReport",
    "GraphSpec",
    "JobSpec",
    "ProgressPrinter",
    "ResultCache",
    "ResultRecord",
    "ResultStore",
    "SCENARIOS",
    "SweepGrid",
    "cache_key",
    "canonical_json",
    "default_execute",
    "derive_seed",
    "execute_unit",
    "get_scenario",
    "graph_families",
    "run_units",
    "scenario_names",
    "unit_rng_seed",
]
