"""Parallel experiment engine with content-addressed result caching.

The engine turns the reproduction's experiments into data-driven grids:

* :mod:`repro.engine.spec` — declarative, hashable work units
  (:class:`JobSpec` / :class:`GraphSpec`) and deterministic seeding;
* :mod:`repro.engine.grid` — :class:`SweepGrid` expansion of
  algorithm × family × size × seed grids;
* :mod:`repro.engine.cache` — the content-addressed on-disk cache under
  ``.repro-cache/`` keyed by the SHA-256 of each unit's canonical JSON,
  with size/age eviction (:meth:`ResultCache.gc`);
* :mod:`repro.engine.backends` — pluggable execution backends
  (``inline``, ``thread``, ``process``, and the self-calibrating
  ``auto`` that probes per-unit cost before paying pool startup);
* :mod:`repro.engine.executor` — grid execution over a backend with
  write-through caching and progress/ETA reporting;
* :mod:`repro.engine.measures` — the built-in measures (``quality``,
  ``messages``, ``adversary``, ``phase_split``) and the shared
  build → run → measure → record pipeline behind the
  :mod:`repro.registry.measures` plugin protocol;
* :mod:`repro.engine.figures` — the paper's figure reproductions
  (E5–E11) as engine units: the ``figure`` graph family plus one
  ``figure:N`` measure per figure;
* :mod:`repro.engine.records` — typed result records and the JSONL
  results store the analysis layer formats.

Every experiment driver (Table 1, figures, sweeps, ablations) routes
its execution through :func:`run_units`, so any repeated cell anywhere
in the harness is computed exactly once per cache directory.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    AutoBackend,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.engine.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    GcReport,
    ResultCache,
    cache_key,
    parse_age,
    parse_size,
)
from repro.engine.executor import (
    ExecutionReport,
    ProgressPrinter,
    execute_unit,
    run_units,
)
from repro.engine.figures import FIGURE_IDS, figure_unit, figure_units
from repro.engine.grid import SweepGrid
from repro.engine.measures import default_execute, unit_rng_seed
from repro.engine.records import ResultRecord, ResultStore
from repro.engine.scenarios import SCENARIOS, get_scenario, scenario_names
from repro.engine.spec import (
    GraphSpec,
    JobSpec,
    canonical_json,
    derive_seed,
)

__all__ = [
    "AutoBackend",
    "BACKEND_NAMES",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ExecutionBackend",
    "ExecutionReport",
    "FIGURE_IDS",
    "GcReport",
    "GraphSpec",
    "InlineBackend",
    "JobSpec",
    "ProcessBackend",
    "ProgressPrinter",
    "ResultCache",
    "ResultRecord",
    "ResultStore",
    "SCENARIOS",
    "SweepGrid",
    "ThreadBackend",
    "cache_key",
    "canonical_json",
    "default_execute",
    "derive_seed",
    "execute_unit",
    "figure_unit",
    "figure_units",
    "get_scenario",
    "parse_age",
    "parse_size",
    "resolve_backend",
    "run_units",
    "scenario_names",
    "unit_rng_seed",
]
