"""The figure reproductions (E5–E11) as engine work units.

The paper's Figures 1–9 are regenerated and verified by the pure
builders in :mod:`repro.experiments.figures`; this module promotes each
of them to a first-class engine citizen:

* the ``figure`` *graph family* builds the
  :class:`~repro.experiments.figures.FigureArtifact` for a figure id —
  building *is* verifying, since every builder eagerly checks each
  claim the paper states about the depicted objects;
* one ``figure:N`` *measure* per figure turns the artifact into a
  :class:`~repro.engine.records.ResultRecord` whose extras carry the
  verified claims and the text rendering.

That makes ``repro-eds figure all`` an ordinary grid run through
:func:`~repro.engine.executor.run_units`: parallel across figures,
served from the content-addressed cache, and byte-reproducible like
every other unit.  Figure units resolve no algorithm (the artifact is
the whole computation), which :attr:`Measure.uses_algorithm` declares.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.engine.records import ResultRecord
from repro.engine.spec import GraphSpec, JobSpec
from repro.exceptions import AlgorithmContractError
from repro.registry.families import register_graph_family
from repro.registry.measures import Measure, register_measure

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.experiments.figures import FigureArtifact

__all__ = ["FIGURE_IDS", "FigureMeasure", "figure_unit", "figure_units"]

#: The figure ids of experiments E5–E11, in paper order.
FIGURE_IDS = ("1", "2", "3", "4", "5", "6", "7", "8", "9")


def _build_artifact(figure_id: str) -> "FigureArtifact":
    # Imported lazily: the figure builders pull in the whole analysis
    # stack, which the registry catalogue must not pay for up front.
    from repro.experiments.figures import all_figures

    return all_figures()[figure_id]()


register_graph_family(
    "figure", params=("id",),
    description="paper figure reproduction (builds the verified artifact)",
)(lambda p, s: _build_artifact(str(p["id"])))


class FigureMeasure(Measure):
    """Regenerate one paper figure and record its verified claims.

    Custom execution: the unit's ``figure`` family builds the artifact
    (running every claim check eagerly), and the record's extras carry
    the claims and the rendering — so a cached figure run replays its
    exact output without rebuilding anything.
    """

    grid_safe = False
    uses_algorithm = False

    def __init__(self, figure_id: str):
        self.figure_id = figure_id
        self.name = f"figure:{figure_id}"

    def execute(self, spec: JobSpec, key: str) -> ResultRecord:
        from repro.experiments.figures import FigureArtifact

        if spec.graph.family != "figure":
            raise AlgorithmContractError(
                f"measure {self.name!r} needs the 'figure' graph family, "
                f"got {spec.graph.family!r}"
            )
        if dict(spec.graph.params).get("id") != int(self.figure_id):
            raise AlgorithmContractError(
                f"measure {self.name!r} got a unit for figure "
                f"{dict(spec.graph.params).get('id')!r}"
            )
        artifact = spec.graph.build()
        assert isinstance(artifact, FigureArtifact)
        return ResultRecord(
            key=key,
            algorithm=spec.algorithm,
            graph_family=spec.graph.family,
            graph_label=artifact.figure_id,
            num_nodes=0,
            num_edges=0,
            max_degree=0,
            solution_size=0,
            optimum=0,
            optimum_exact=False,
            ratio_num=0,
            ratio_den=1,
            rounds=0,
            extra={
                "figure": self.figure_id,
                "figure_id": artifact.figure_id,
                "description": artifact.description,
                "checks": list(artifact.checks),
                "rendering": artifact.rendering,
            },
        )


for _fid in FIGURE_IDS:
    register_measure(FigureMeasure(_fid))


def figure_unit(figure_id: str) -> JobSpec:
    """The work unit reproducing one figure through the engine."""
    return JobSpec(
        algorithm="figure",
        graph=GraphSpec.make("figure", id=int(figure_id)),
        measure=f"figure:{figure_id}",
        optimum="none",
        label=f"figure {figure_id}",
    )


def figure_units(figure_ids: Sequence[str] | None = None) -> list[JobSpec]:
    """Work units for the given figures (default: all of E5–E11)."""
    ids = FIGURE_IDS if figure_ids is None else tuple(figure_ids)
    unknown = sorted(set(ids) - set(FIGURE_IDS))
    if unknown:
        raise KeyError(
            f"unknown figure id(s) {unknown}; available: {FIGURE_IDS}"
        )
    return [figure_unit(fid) for fid in ids]
