"""Declarative algorithm × family × size × seed grids.

A :class:`SweepGrid` expands into independent work units with
deterministic per-unit seeding: each cell's graph seed is derived by
:func:`~repro.engine.spec.derive_seed` from the grid's base seed and the
cell coordinates, so the expansion — and therefore every result — is
identical regardless of worker count, execution order, or which subset
of the grid has been computed before.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.engine.spec import GraphSpec, JobSpec, derive_seed

__all__ = ["SweepGrid"]

#: Families the grid layer knows how to parameterise by (degree, size).
_GRID_FAMILIES = ("regular", "pairing_regular", "bounded")

#: The d-regular families: same feasibility rule, same cell labels.
_REGULAR_FAMILIES = ("regular", "pairing_regular")


@dataclass(frozen=True)
class SweepGrid:
    """A declarative sweep over degrees × sizes × seeds × algorithms."""

    name: str
    algorithms: tuple[str, ...]
    family: str = "regular"
    degrees: tuple[int, ...] = (3,)
    sizes: tuple[int, ...] = (16,)
    seeds: int = 1
    base_seed: int = 0
    measure: str = "quality"
    optimum: str = "auto"
    exact_edge_limit: int = 48
    count_messages: bool = False

    def __post_init__(self) -> None:
        if self.family not in _GRID_FAMILIES:
            raise ValueError(
                f"grid family must be one of {_GRID_FAMILIES}, "
                f"got {self.family!r}"
            )
        if self.seeds < 1:
            raise ValueError("need at least one seed per cell")

    def override(self, **changes: object) -> "SweepGrid":
        """A copy with the given fields replaced (CLI flag overrides)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def _cell_feasible(self, d: int, n: int) -> bool:
        if self.family in _REGULAR_FAMILIES:
            return n > d and (n * d) % 2 == 0
        return n > 1

    def _algorithm_applies(self, algorithm: str, d: int) -> bool:
        # The Theorem 4 algorithm is defined for odd-regular graphs only.
        if algorithm == "regular_odd":
            return self.family in _REGULAR_FAMILIES and d % 2 == 1
        return True

    def _graph_spec(self, d: int, n: int, replicate: int) -> GraphSpec:
        seed = derive_seed(self.name, self.base_seed, self.family,
                           d, n, replicate)
        if self.family in _REGULAR_FAMILIES:
            return GraphSpec.make(self.family, seed=seed, d=d, n=n)
        return GraphSpec.make("bounded", seed=seed, n=n, max_degree=d)

    def cells(self) -> Iterator[tuple[int, int, int]]:
        """The feasible (degree, size, replicate) coordinates, in order."""
        for d in self.degrees:
            for n in self.sizes:
                if not self._cell_feasible(d, n):
                    continue
                for t in range(self.seeds):
                    yield d, n, t

    def expand(self) -> list[JobSpec]:
        """Expand into hashable, independently executable work units."""
        units: list[JobSpec] = []
        for d, n, t in self.cells():
            graph = self._graph_spec(d, n, t)
            label = (
                f"{self.family} d={d} n={n} #{t}"
                if self.family in _REGULAR_FAMILIES
                else f"{self.family} Δ={d} n={n} #{t}"
            )
            for algorithm in self.algorithms:
                if not self._algorithm_applies(algorithm, d):
                    continue
                units.append(
                    JobSpec(
                        algorithm=algorithm,
                        graph=graph,
                        measure=self.measure,
                        optimum=self.optimum,
                        exact_edge_limit=self.exact_edge_limit,
                        count_messages=self.count_messages,
                        label=label,
                    )
                )
        return units
