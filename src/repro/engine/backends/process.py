"""The ``multiprocessing`` fan-out backend.

This is the engine's original sharded executor path, extracted: workers
receive plain spec dictionaries and resolve algorithm/graph/measure
names through the registry themselves, which keeps the fan-out free of
code pickling (and safe under both ``fork`` and ``spawn`` start
methods).  For plugins registered outside the built-in catalogue, each
payload carries the names of the registering modules so a ``spawn``
worker can re-import them — which is why plugins must register at
module import time.

Pool startup costs real time (interpreter spawn + catalogue reload per
worker), so this backend pays off only when per-unit cost is well above
~5 ms; below that, prefer :class:`~repro.engine.backends.inline.
InlineBackend` or let ``"auto"`` calibrate.
"""

from __future__ import annotations

import importlib
import logging
import multiprocessing
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.engine.backends.base import ExecutionBackend
from repro.registry.algorithms import get_algorithm
from repro.registry.families import get_family
from repro.registry.measures import get_measure

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.records import ResultRecord
    from repro.engine.spec import JobSpec
    from repro.obs.spans import UnitTelemetry

__all__ = ["ProcessBackend"]

logger = logging.getLogger(__name__)


def _plugin_modules(units: Iterable["JobSpec"]) -> tuple[str, ...]:
    """Modules whose import (re-)registers the units' registry entries.

    Under the ``spawn`` start method a worker process starts with a
    fresh interpreter: the built-in catalogue reloads lazily, but
    plugins registered by user code would be missing.  Shipping the
    registering modules' names lets workers re-import them.  Built-ins
    and ``__main__`` are excluded (the registry loader and
    multiprocessing itself already handle those), as are the algorithms
    of units whose measure never resolves one (figure units).
    """
    modules: set[str] = set()
    for unit in units:
        measure = get_measure(unit.measure)
        if measure.uses_algorithm:
            modules.add(get_algorithm(unit.algorithm).origin)
        family = get_family(unit.graph.family)
        modules.add(getattr(family.build, "__module__", "") or "")
        modules.add(type(measure).__module__)
    return tuple(sorted(
        m for m in modules
        if m and m != "__main__" and not m.startswith("repro.")
    ))


def _worker(
    payload: tuple[int, dict[str, Any], tuple[str, ...], bool, bool]
) -> tuple[int, dict[str, Any], dict[str, Any] | None]:
    from repro.engine.executor import execute_unit_instrumented
    from repro.engine.spec import JobSpec
    from repro.obs.memory import set_memory_collection
    from repro.obs.spans import set_collection

    index, spec_dict, plugin_modules, collect_telemetry, collect_mem = payload
    # The parent's telemetry switch doesn't exist in a ``spawn`` worker
    # (fresh interpreter) and may be stale in a ``fork`` one, so every
    # payload carries it (the memory switch rides along the same way).
    # Telemetry rides back as a plain dict next to the record dict —
    # never inside it.
    set_collection(collect_telemetry)
    set_memory_collection(collect_mem)
    for module in plugin_modules:
        try:
            importlib.import_module(module)
        except Exception:
            # If the plugin truly cannot be re-created here, resolution
            # below fails with the registry's name-listing error.
            logger.warning(
                "could not re-import plugin module %r in worker", module
            )
    record, telemetry = execute_unit_instrumented(
        JobSpec.from_json_dict(spec_dict)
    )
    return (
        index,
        record.to_json_dict(),
        telemetry.to_json_dict() if telemetry is not None else None,
    )


class ProcessBackend(ExecutionBackend):
    """Shard units across a ``multiprocessing.Pool``."""

    name = "process"

    def __init__(self, workers: int = 1):
        self.workers = max(1, workers)

    def describe(self) -> str:
        return f"process(workers={self.workers})"

    def run(
        self, pending: Sequence[tuple[int, "JobSpec"]]
    ) -> Iterator[tuple[int, "ResultRecord", "UnitTelemetry | None"]]:
        from repro.engine.executor import execute_unit_instrumented
        from repro.engine.records import ResultRecord
        from repro.obs.memory import memory_collection_enabled
        from repro.obs.spans import UnitTelemetry, collection_enabled

        pending = list(pending)
        if self.workers == 1 or len(pending) <= 1:
            # A pool of one (or for one unit) is pure overhead.
            for index, spec in pending:
                record, telemetry = execute_unit_instrumented(spec)
                yield index, record, telemetry
            return
        plugins = _plugin_modules(spec for _, spec in pending)
        collect = collection_enabled()
        collect_mem = memory_collection_enabled()
        payloads = [
            (index, spec.to_json_dict(), plugins, collect, collect_mem)
            for index, spec in pending
        ]
        with multiprocessing.Pool(min(self.workers, len(pending))) as pool:
            for index, record_dict, telemetry_dict in pool.imap_unordered(
                _worker, payloads
            ):
                yield (
                    index,
                    ResultRecord.from_json_dict(record_dict),
                    UnitTelemetry.from_json_dict(telemetry_dict)
                    if telemetry_dict is not None else None,
                )
