"""Pluggable execution backends for the experiment engine.

The executor's scheduling strategy is a plugin: :func:`run_units`
resolves a backend name (or ready-made :class:`ExecutionBackend`) and
hands it the uncached work units.  Four backends ship built in:

* :class:`InlineBackend` — zero-overhead serial execution in the
  calling process (no pickling, no pool);
* :class:`ThreadBackend` — an in-process thread pool, for measure-bound
  units that release the GIL or are I/O-ish;
* :class:`ProcessBackend` — the spawn-safe ``multiprocessing.Pool``
  fan-out with registry-based name resolution in each worker;
* :class:`AutoBackend` — times the first few units inline and switches
  to process fan-out only when per-unit cost justifies pool startup.

All backends honour the engine's determinism contract — records depend
only on their specs — so the backend choice changes wall-clock time,
never results.
"""

from repro.engine.backends.auto import (
    AutoBackend,
    DEFAULT_FANOUT_THRESHOLD,
    PROBE_UNITS,
)
from repro.engine.backends.base import (
    BACKEND_NAMES,
    ExecutionBackend,
    resolve_backend,
)
from repro.engine.backends.inline import InlineBackend
from repro.engine.backends.process import ProcessBackend
from repro.engine.backends.thread import ThreadBackend

__all__ = [
    "AutoBackend",
    "BACKEND_NAMES",
    "DEFAULT_FANOUT_THRESHOLD",
    "ExecutionBackend",
    "InlineBackend",
    "PROBE_UNITS",
    "ProcessBackend",
    "ThreadBackend",
    "resolve_backend",
]
