"""The self-calibrating backend: inline until fan-out pays for itself.

Process-pool startup is a fixed tax (interpreter spawn plus catalogue
reload per worker); for grids of sub-5 ms units it dominates the whole
run, while for expensive units it vanishes.  ``AutoBackend`` measures
instead of guessing: it executes the first few pending units inline
with a wall clock around each, and fans the remainder out to the
process backend only when the observed per-unit cost clears the
threshold (and there is enough work left to amortise the pool).

Grids are not homogeneous — a sweep ordered cheapest-first (small n
before large) would fool a probe-once policy into serial execution just
as the expensive tail arrives.  So the inline decision is provisional:
every unit stays on the clock, and the first unit that itself clears
the threshold re-escalates the rest of the batch to the fan-out
backend.

The calibration affects scheduling only — records depend purely on
their specs — so every decision path yields byte-identical results.
The decision itself is recorded on the backend (and surfaced through
:class:`~repro.engine.executor.ExecutionReport`) so sweeps can report
why they ran the way they did.
"""

from __future__ import annotations

import logging
import time
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.engine.backends.base import ExecutionBackend
from repro.engine.backends.process import ProcessBackend

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.records import ResultRecord
    from repro.engine.spec import JobSpec
    from repro.obs.spans import UnitTelemetry

logger = logging.getLogger(__name__)

__all__ = ["AutoBackend", "DEFAULT_FANOUT_THRESHOLD", "PROBE_UNITS"]

#: Fan out only above this measured per-unit cost (seconds).
#: Re-derived for the compiled simulation core (E19): spawning a
#: 2-worker pool costs ~40 ms of fixed tax, so with a typical ≥ 20-unit
#: remainder and half the work moving off-process, fan-out starts
#: paying at ~40 / (20 × ½) ≈ 4 ms/unit.  The old 10 ms threshold was
#: calibrated when the dict-based scheduler kept per-unit costs high;
#: compiled units are several times cheaper, and keeping the old bar
#: would hold profitably parallel grids inline.
DEFAULT_FANOUT_THRESHOLD = 0.005

#: How many units the calibration probe times inline.
PROBE_UNITS = 3


class AutoBackend(ExecutionBackend):
    """Calibrate on the first few units; fan out when (or once) slow.

    *clock* and *fanout* exist for tests: a fake clock makes units look
    arbitrarily slow without sleeping, and an injected fan-out backend
    observes the hand-off without spawning processes.
    """

    name = "auto"

    def __init__(
        self,
        workers: int = 1,
        *,
        threshold: float = DEFAULT_FANOUT_THRESHOLD,
        probe: int = PROBE_UNITS,
        clock: Callable[[], float] = time.perf_counter,
        fanout: ExecutionBackend | None = None,
    ):
        self.workers = max(1, workers)
        self.threshold = threshold
        self.probe = max(1, probe)
        self.clock = clock
        self.fanout = (
            fanout if fanout is not None else ProcessBackend(self.workers)
        )
        self.decision = ""
        self._resolved = "inline"

    def describe(self) -> str:
        return f"auto:{self._resolved}"

    def _commit(self, resolved: str, decision: str) -> None:
        self._resolved = resolved
        self.decision = decision
        logger.debug("auto backend: %s", decision)

    def _measure_hint(self, pending: Sequence[tuple[int, "JobSpec"]]) -> str:
        """The units' unanimous scheduling hint, or ``""`` if mixed/none.

        Measures that know their units' cost profile advertise it via
        :attr:`~repro.registry.measures.Measure.preferred_backend`
        (e.g. ``comparison`` grids of tiny units hint ``inline``); a
        unanimous hint replaces calibration entirely.
        """
        from repro.registry.measures import get_measure

        hints = {
            get_measure(spec.measure).preferred_backend
            for _, spec in pending
        }
        if len(hints) == 1:
            return next(iter(hints))
        return ""

    def run(
        self, pending: Sequence[tuple[int, "JobSpec"]]
    ) -> Iterator[tuple[int, "ResultRecord", "UnitTelemetry | None"]]:
        from repro.engine.executor import execute_unit_instrumented

        pending = list(pending)
        hint = self._measure_hint(pending) if pending else ""
        if hint == "inline":
            self._commit(
                "inline",
                f"measure hint: all {len(pending)} unit(s) prefer inline "
                "— calibration skipped",
            )
            if self.workers <= 1:
                for index, spec in pending:
                    record, telemetry = execute_unit_instrumented(spec)
                    yield index, record, telemetry
            else:
                # The hint skips the probe, not the safety net: a unit
                # that itself clears the threshold still re-escalates.
                yield from self._inline_provisional(pending)
            return
        if hint in ("process", "thread") and self.workers > 1:
            if hint == "thread":
                from repro.engine.backends.thread import ThreadBackend

                fanout: ExecutionBackend = ThreadBackend(self.workers)
            else:
                fanout = self.fanout
            self._commit(
                fanout.describe(),
                f"measure hint: all {len(pending)} unit(s) prefer "
                f"{hint} — fanning out without calibration",
            )
            yield from fanout.run(pending)
            return
        if self.workers <= 1 or len(pending) <= self.probe + 1:
            self._commit(
                "inline",
                "no fan-out possible "
                f"(workers={self.workers}, pending={len(pending)})"
                if self.workers <= 1
                else f"{len(pending)} pending unit(s) — too few to "
                "amortise a pool",
            )
            for index, spec in pending:
                record, telemetry = execute_unit_instrumented(spec)
                yield index, record, telemetry
            return

        elapsed = 0.0
        for index, spec in pending[: self.probe]:
            started = self.clock()
            record, telemetry = execute_unit_instrumented(spec)
            elapsed += self.clock() - started
            yield index, record, telemetry
        per_unit = elapsed / self.probe
        remainder = pending[self.probe:]

        if per_unit >= self.threshold:
            self._commit(
                self.fanout.describe(),
                f"probed {self.probe} unit(s): {per_unit * 1000:.1f} ms/unit"
                f" ≥ {self.threshold * 1000:.1f} ms threshold → "
                f"{self.fanout.describe()} for {len(remainder)} unit(s)",
            )
            yield from self.fanout.run(remainder)
            return

        self._commit(
            "inline",
            f"probed {self.probe} unit(s): {per_unit * 1000:.1f} ms/unit"
            f" < {self.threshold * 1000:.1f} ms threshold → staying "
            "inline",
        )
        # Provisional: grids ordered cheapest-first would otherwise fool
        # the probe, so the first genuinely slow unit re-escalates.
        yield from self._inline_provisional(remainder)

    def _inline_provisional(
        self, remainder: Sequence[tuple[int, "JobSpec"]]
    ) -> Iterator[tuple[int, "ResultRecord", "UnitTelemetry | None"]]:
        """Inline execution, every unit on the clock; the first unit
        that itself clears the threshold re-escalates the rest."""
        from repro.engine.executor import execute_unit_instrumented

        for position, (index, spec) in enumerate(remainder):
            started = self.clock()
            record, telemetry = execute_unit_instrumented(spec)
            cost = self.clock() - started
            yield index, record, telemetry
            rest = remainder[position + 1:]
            if cost >= self.threshold and len(rest) > 1:
                self._commit(
                    self.fanout.describe(),
                    f"{self.decision}; re-escalated after a "
                    f"{cost * 1000:.1f} ms unit → "
                    f"{self.fanout.describe()} for {len(rest)} unit(s)",
                )
                yield from self.fanout.run(rest)
                return
