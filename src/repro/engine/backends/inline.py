"""The zero-overhead serial backend.

Executes every unit in the calling process, in submission order, with
no pickling, no pool startup, and no thread handoff.  This is the right
choice for grids of very small units (pool startup alone dominates
below ~5 ms/unit) and is what ``"auto"`` stays on until calibration
says otherwise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

from repro.engine.backends.base import ExecutionBackend

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.records import ResultRecord
    from repro.engine.spec import JobSpec
    from repro.obs.spans import UnitTelemetry

__all__ = ["InlineBackend"]


class InlineBackend(ExecutionBackend):
    """Serial in-process execution (no pool, no pickling)."""

    name = "inline"

    def run(
        self, pending: Sequence[tuple[int, "JobSpec"]]
    ) -> Iterator[tuple[int, "ResultRecord", "UnitTelemetry | None"]]:
        from repro.engine.executor import execute_unit_instrumented

        for index, spec in pending:
            record, telemetry = execute_unit_instrumented(spec)
            yield index, record, telemetry
