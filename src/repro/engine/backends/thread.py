"""The thread-pool backend.

Shares the interpreter with the caller, so pure-Python CPU-bound units
gain nothing under the GIL — but measure-bound units that release the
GIL (C-extension graph kernels, I/O-ish measures, subprocess-backed
solvers) overlap without any of the process backend's costs: no
interpreter spawn, no catalogue reload, no spec serialisation, and
plugins registered in this process are simply visible.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.engine.backends.base import ExecutionBackend

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.records import ResultRecord
    from repro.engine.spec import JobSpec
    from repro.obs.spans import UnitTelemetry

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Fan units across an in-process thread pool."""

    name = "thread"

    def __init__(self, workers: int = 1):
        self.workers = max(1, workers)

    def describe(self) -> str:
        return f"thread(workers={self.workers})"

    def run(
        self, pending: Sequence[tuple[int, "JobSpec"]]
    ) -> Iterator[tuple[int, "ResultRecord", "UnitTelemetry | None"]]:
        from repro.engine.executor import execute_unit_instrumented

        pending = list(pending)
        if not pending:
            return
        # Note: worker threads see the executor's process-wide telemetry
        # switch, not its contextvars; each task installs its own span
        # recorder, so units never share one.
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(pending))
        ) as pool:
            futures = {
                pool.submit(execute_unit_instrumented, spec): index
                for index, spec in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    record, telemetry = future.result()
                    yield futures[future], record, telemetry
