"""The execution-backend protocol and the name → backend table.

An :class:`ExecutionBackend` turns a batch of pending work units into
result records.  The contract mirrors the engine's determinism promise:
a backend may compute units in any order and on any substrate (the
calling thread, a thread pool, a process pool), but each record depends
only on its spec — so every backend produces byte-identical results and
the choice is purely a performance decision.

Backends are constructed from a *name* plus the worker count through
:func:`resolve_backend`; ``"auto"`` calibrates at run time (see
:mod:`repro.engine.backends.auto`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.records import ResultRecord
    from repro.engine.spec import JobSpec
    from repro.obs.spans import UnitTelemetry

__all__ = ["BACKEND_NAMES", "ExecutionBackend", "resolve_backend"]


class ExecutionBackend:
    """Base class for execution backends.

    Subclasses implement :meth:`run`, yielding ``(index, record,
    telemetry)`` triples in any order; the executor reassembles
    submission order.  The third element is the unit's
    :class:`~repro.obs.spans.UnitTelemetry` (``None`` when telemetry is
    off — and always ``None``-able: the executor also accepts bare
    ``(index, record)`` pairs from third-party backends that predate
    telemetry).  Telemetry travels *next to* the record, never inside
    it, preserving the byte-identity contract for cached records.
    :meth:`describe` names what actually ran (e.g.
    ``"process(workers=4)"``) and :attr:`decision` carries a human-
    readable calibration note for backends that choose at run time.
    """

    #: Registry name; set by subclasses.
    name: str = ""
    #: Calibration note (empty for backends with nothing to decide).
    decision: str = ""

    def run(
        self, pending: Sequence[tuple[int, "JobSpec"]]
    ) -> Iterator[tuple[int, "ResultRecord", "UnitTelemetry | None"]]:
        """Execute *pending* units, yielding results as they finish."""
        raise NotImplementedError

    def describe(self) -> str:
        """What this backend ran as (recorded in the execution report)."""
        return self.name


#: The names ``resolve_backend`` (and the CLI ``--backend`` flag) accept.
BACKEND_NAMES = ("auto", "inline", "process", "thread")


def resolve_backend(
    backend: "ExecutionBackend | str | None", *, workers: int = 1
) -> ExecutionBackend:
    """Normalise a backend argument to an :class:`ExecutionBackend`.

    ``None`` means ``"auto"``: serial for cheap units, process fan-out
    once per-unit cost justifies pool startup.  Ready-made backend
    instances pass through (worker count and all).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    from repro.engine.backends.auto import AutoBackend
    from repro.engine.backends.inline import InlineBackend
    from repro.engine.backends.process import ProcessBackend
    from repro.engine.backends.thread import ThreadBackend

    if backend is None:
        backend = "auto"
    if backend == "auto":
        return AutoBackend(workers=workers)
    if backend == "inline":
        return InlineBackend()
    if backend == "process":
        return ProcessBackend(workers=workers)
    if backend == "thread":
        return ThreadBackend(workers=workers)
    raise ValueError(
        f"unknown execution backend {backend!r}; "
        f"available: {', '.join(BACKEND_NAMES)}"
    )
