"""Built-in measures and the shared unit-execution pipeline.

:func:`default_execute` is the build → resolve → run → measure → record
pipeline behind every measure that follows the plugin protocol
(:meth:`~repro.registry.measures.Measure.measure` returning record-field
overrides).  The built-ins registered here are

* ``quality`` — feasibility + approximation ratio against a chosen
  optimum policy (the workhorse of the sweeps);
* ``comparison`` — quality plus a traced message count in one unit;
  the measure of ``repro-eds compare`` grids, hinting ``inline``
  scheduling to the auto backend;
* ``messages`` — message-complexity profiling via a traced run;
* ``adversary`` — the Table 1 tightness confrontation on a lower-bound
  construction (custom execution);
* ``phase_split`` — the Theorem 4 phase-I/phase-II snapshot used by the
  ablations (custom execution).

The per-unit RNG for randomised algorithms is derived here from the
unit's content hash (``derive_seed("rng", key)``): the same work unit
always replays the same coins, so randomised results are cacheable and
byte-identical across reruns, worker counts, and processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.analysis.reference import regular_odd_reference
from repro.bounds import (
    DUAL_BOUND_EDGE_LIMIT,
    BoundResult,
    nu_sandwich,
    verify_certificate,
)
from repro.eds.bounds import eds_lower_bound, eds_lower_bound_from_nu
from repro.eds.exact import minimum_eds_size
from repro.eds.properties import is_edge_dominating_set
from repro.engine.records import ResultRecord
from repro.engine.spec import JobSpec, derive_seed
from repro.exceptions import AlgorithmContractError
from repro.lowerbounds.adversary import run_adversary
from repro.lowerbounds.instance import LowerBoundInstance
from repro.obs.spans import current_recorder, span
from repro.portgraph.graph import PortNumberedGraph
from repro.registry.algorithms import BoundAlgorithm, resolve
from repro.registry.measures import AlgorithmRun, Measure, register_measure

__all__ = [
    "AdversaryMeasure",
    "ComparisonMeasure",
    "MessagesMeasure",
    "OptimumOutcome",
    "PhaseSplitMeasure",
    "QualityMeasure",
    "ThreadedComparisonMeasure",
    "default_execute",
    "unit_rng_seed",
]

#: ResultRecord fields a measure may override directly; anything else a
#: measure returns is stored in the record's ``extra`` mapping.
_RECORD_FIELDS = frozenset(
    ResultRecord.__dataclass_fields__
) - {"key", "extra"}


def unit_rng_seed(key: str) -> int:
    """The per-unit RNG seed: a pure function of the content address."""
    return derive_seed("rng", key)


def resolve_unit_algorithm(spec: JobSpec, key: str) -> BoundAlgorithm:
    """Resolve a unit's algorithm with its content-derived RNG bound."""
    return resolve(
        spec.algorithm, dict(spec.algorithm_params),
        rng_seed=unit_rng_seed(key),
    )


def default_execute(measure: Measure, spec: JobSpec, key: str) -> ResultRecord:
    """The shared pipeline: build, run, measure, assemble the record.

    Each stage runs under a telemetry span (no-ops when telemetry is
    off): ``graph_build``, ``resolve``, ``simulate`` (the runtime
    annotates it with the engine name and round count), ``feasibility``
    and ``measure:<name>`` — with the optimum computation nested inside
    the measure span as its own ``optimum`` child.
    """
    # ``graph_build`` keeps only coordination self-time: the generator
    # runs under the ``graph_build:generate`` child, and the lowering
    # steps triggered later (``graph_build:compile`` in
    # ``PortNumberedGraph.compiled``, ``graph_build:vector_view`` in
    # ``CompiledGraph.vector``) record themselves wherever they fire, so
    # the phase table pins exactly which build stage dominates.  On the
    # direct-to-CSR path the generator emits compiled arrays itself, so
    # ``generate`` covers the array synthesis and ``compile`` never
    # fires; the span is tagged ``direct`` so the report can tell the
    # two shapes apart, and the build counters feed the edges/s line.
    with span("graph_build", family=spec.graph.family) as build:
        with span("graph_build:generate"):
            graph = spec.graph.build()
        if build is not None:
            build.attrs["direct"] = (
                getattr(graph, "_compiled", None) is not None
            )
        recorder = current_recorder()
        if recorder is not None and isinstance(graph, PortNumberedGraph):
            recorder.count("graph_build.graphs")
            recorder.count("graph_build.edges", graph.num_edges)
    if not isinstance(graph, PortNumberedGraph):
        raise AlgorithmContractError(
            f"measure {measure.name!r} needs a plain graph family, got "
            f"{spec.graph.family!r}"
        )
    with span("resolve", algorithm=spec.algorithm):
        algorithm = resolve_unit_algorithm(spec, key)

    trace = None
    with span("simulate", algorithm=spec.algorithm, traced=False) as sim:
        if measure.needs_trace(spec) and algorithm.traced is not None:
            if sim is not None:
                sim.attrs["traced"] = True
            result = algorithm.traced(graph)
            edge_set, rounds, trace = (
                result.edge_set(), result.rounds, result.trace
            )
        else:
            edge_set, rounds = algorithm.run(graph)

    if measure.check_feasible:
        with span("feasibility"):
            feasible = is_edge_dominating_set(graph, edge_set)
        if not feasible:
            raise AlgorithmContractError(
                f"{spec.algorithm} produced an infeasible output on "
                f"{spec.display_label()}"
            )

    run = AlgorithmRun(
        spec=spec, algorithm=algorithm, edge_set=edge_set,
        rounds=rounds, trace=trace,
    )
    with span(f"measure:{measure.name}"):
        overrides = dict(measure.measure(graph, run))
    extra: dict[str, Any] = dict(overrides.pop("extra", {}))
    fields: dict[str, Any] = {
        "key": key,
        "algorithm": spec.algorithm,
        "graph_family": spec.graph.family,
        "graph_label": spec.display_label(),
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "max_degree": graph.max_degree,
        "solution_size": len(edge_set),
        "optimum": 0,
        "optimum_exact": False,
        "ratio_num": 0,
        "ratio_den": 1,
        "rounds": rounds,
        "messages": None,
    }
    for name, value in overrides.items():
        if name in _RECORD_FIELDS:
            fields[name] = value
        else:
            extra[name] = value
    return ResultRecord(extra=extra, **fields)


# ---------------------------------------------------------------------------
# Built-in measures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OptimumOutcome:
    """What one unit's optimum policy resolved to.

    ``lower``/``upper`` bracket the *EDS optimum* (0 means "no bound on
    that side"); ``nu`` carries the ν sandwich when one was computed, so
    telemetry can report the dual−primal gap.  ``resolved`` names the
    engine that actually ran — ``auto`` units record whether they
    escalated to ``"exact"``, ``"blossom"`` or ``"sandwich"``.
    """

    lower: int
    upper: int
    exact: bool
    resolved: str
    nu: BoundResult | None = None


@register_measure
class QualityMeasure(Measure):
    """Feasibility + approximation ratio against an optimum policy.

    The unit's ``optimum`` field selects the baseline: ``"exact"``
    (branch-and-bound), ``"lower_bound"`` (poly-time bound),
    ``"dual_bound"`` (the certified ν sandwich — interval ratios),
    ``"auto"`` (exact while affordable, then blossom, then sandwich)
    or ``"none"`` (sizes and rounds only).
    """

    name = "quality"

    def needs_trace(self, spec: JobSpec) -> bool:
        return spec.count_messages

    @staticmethod
    def _optimum(
        spec: JobSpec, graph: PortNumberedGraph
    ) -> OptimumOutcome:
        with span("optimum", mode=spec.optimum) as opt:
            out = QualityMeasure._optimum_value(spec, graph)
            if opt is not None:
                opt.attrs["exact"] = out.exact
                opt.attrs["resolved"] = out.resolved
                if out.nu is not None:
                    opt.attrs["gap"] = out.nu.gap
            if out.nu is not None:
                rec = current_recorder()
                if rec is not None:
                    rec.count("optimum.sandwich")
                    rec.count("optimum.gap_total", out.nu.gap)
        return out

    @staticmethod
    def _sandwich(spec: JobSpec, graph: PortNumberedGraph) -> OptimumOutcome:
        """The dual_bound path: a verified ν bracket → an EDS interval.

        The primal matching order derives from the unit's own content
        (``derive_seed``), so the bracket — like everything else in a
        record — is a pure function of the spec.  Every emitted bound
        is re-proven by :func:`repro.bounds.verify_certificate` under
        its own span before it may enter a record.
        """
        nu = nu_sandwich(
            graph, seed=derive_seed("bounds", spec.to_json_dict())
        )
        with span("optimum_verify"):
            verify_certificate(graph, nu)
        lower = eds_lower_bound_from_nu(
            nu.lower, graph.num_edges, graph.max_degree
        )
        # The primal maximal matching is itself a feasible EDS, so its
        # size upper-bounds the optimum.
        upper = nu.lower if graph.num_edges else 0
        return OptimumOutcome(
            lower=lower, upper=upper, exact=False,
            resolved="sandwich", nu=nu,
        )

    @staticmethod
    def _optimum_value(
        spec: JobSpec, graph: PortNumberedGraph
    ) -> OptimumOutcome:
        if spec.optimum == "none":
            return OptimumOutcome(0, 0, False, "none")
        if spec.optimum == "exact":
            value = minimum_eds_size(graph)
            return OptimumOutcome(value, value, True, "exact")
        if spec.optimum == "lower_bound":
            return OptimumOutcome(
                eds_lower_bound(graph), 0, False, "blossom"
            )
        if spec.optimum == "dual_bound":
            return QualityMeasure._sandwich(spec, graph)
        # "auto": exact while affordable, then the blossom lower bound,
        # then the certified sandwich once blossom itself is the cost.
        if graph.num_edges <= spec.exact_edge_limit:
            value = minimum_eds_size(graph)
            return OptimumOutcome(value, value, True, "exact")
        if graph.num_edges <= DUAL_BOUND_EDGE_LIMIT:
            return OptimumOutcome(
                eds_lower_bound(graph), 0, False, "blossom"
            )
        return QualityMeasure._sandwich(spec, graph)

    def measure(
        self, graph: PortNumberedGraph, run: AlgorithmRun
    ) -> dict[str, Any]:
        spec = run.spec
        out = self._optimum(spec, graph)
        size = len(run.edge_set)
        if out.lower > 0:
            ratio = Fraction(size, out.lower)
        else:
            ratio = Fraction(1) if spec.optimum != "none" else Fraction(0)
        overrides: dict[str, Any] = {
            "optimum": out.lower,
            "optimum_exact": out.exact,
            "ratio_num": ratio.numerator,
            "ratio_den": ratio.denominator,
        }
        if out.upper > 0 and not out.exact:
            # A two-sided bracket: the solution is also an upper bound
            # witness, so ratio_lo is always >= 1 by construction.
            upper = min(out.upper, size)
            ratio_lo = Fraction(size, upper)
            overrides.update(
                optimum_lower=out.lower,
                optimum_upper=upper,
                ratio_lo_num=ratio_lo.numerator,
                ratio_lo_den=ratio_lo.denominator,
                ratio_hi_num=ratio.numerator,
                ratio_hi_den=ratio.denominator,
            )
            if out.nu is not None:
                # Extras (not record fields): the raw ν bracket.
                overrides["nu_lower"] = out.nu.lower
                overrides["nu_upper"] = out.nu.upper
        if spec.count_messages:
            if run.trace is not None:
                overrides["messages"] = run.trace.total_messages
            elif run.algorithm.model == "central":
                overrides["messages"] = 0
        return overrides


@register_measure
class ComparisonMeasure(QualityMeasure):
    """The head-to-head measure behind ``repro-eds compare``.

    Everything :class:`QualityMeasure` reports — feasibility, exact-
    fraction ratio against the unit's optimum policy — plus the message
    count from a traced run, so one unit yields all three comparison
    axes (ratio, rounds, messages) for paper algorithms and baselines
    alike.  Comparison grids are tiny by design (the exact optimum must
    stay affordable), so the measure advertises ``preferred_backend =
    "inline"`` and the ``auto`` backend skips pool calibration
    entirely.
    """

    name = "comparison"
    preferred_backend = "inline"

    def needs_trace(self, spec: JobSpec) -> bool:
        return True

    def measure(
        self, graph: PortNumberedGraph, run: AlgorithmRun
    ) -> dict[str, Any]:
        overrides = dict(super().measure(graph, run))
        if run.trace is not None:
            overrides["messages"] = run.trace.total_messages
        elif run.algorithm.model == "central":
            overrides["messages"] = 0
        return overrides


@register_measure
class ThreadedComparisonMeasure(ComparisonMeasure):
    """:class:`ComparisonMeasure` hinting ``thread`` scheduling.

    The ROADMAP follow-up behind ``Measure.preferred_backend="thread"``:
    comparison grids at larger sizes spend their time inside the
    compiled batch round loop and the traced re-run — work that, unlike
    the old dict-churning scheduler, leaves the result assembly cheap
    enough that thread fan-out's zero startup tax beats a process pool
    on medium grids (a process pool pays interpreter spawn + catalogue
    reload per worker; threads pay nothing and still overlap the
    executor's cache I/O).  Results are byte-identical to ``comparison``
    modulo the measure name in the unit (so the two measures cache
    separately, by design: the measure name is part of the content
    address).
    """

    name = "comparison-mt"
    preferred_backend = "thread"


@register_measure
class MessagesMeasure(Measure):
    """Message-complexity profiling: total traffic and the per-round peak.

    Central algorithms send nothing by definition; every distributed
    model is re-run with tracing enabled.
    """

    name = "messages"

    def needs_trace(self, spec: JobSpec) -> bool:
        return True

    def measure(
        self, graph: PortNumberedGraph, run: AlgorithmRun
    ) -> dict[str, Any]:
        if run.trace is not None:
            per_round = tuple(r.message_count for r in run.trace.rounds)
            total = run.trace.total_messages
            peak = max(per_round, default=0)
        elif run.algorithm.model == "central":
            total, peak = 0, 0
        else:
            raise AlgorithmContractError(
                f"algorithm {run.algorithm.name!r} cannot be message-traced"
            )
        return {"messages": total, "extra": {"max_round_messages": peak}}


@register_measure
class AdversaryMeasure(Measure):
    """Table 1 tightness: the algorithm against its adversarial instance.

    Custom execution: the unit's family builds a
    :class:`LowerBoundInstance`, and the confrontation drives the
    simulator through the algorithm's raw anonymous factory.
    """

    name = "adversary"
    requires_lower_bound = True
    grid_safe = False

    def execute(self, spec: JobSpec, key: str) -> ResultRecord:
        instance = spec.graph.build()
        assert isinstance(instance, LowerBoundInstance)
        algorithm = resolve_unit_algorithm(spec, key)
        if algorithm.factory is None:
            raise AlgorithmContractError(
                f"adversary units need an anonymous algorithm, got "
                f"{spec.algorithm!r}"
            )
        report = run_adversary(instance, algorithm.factory(instance.graph))
        return ResultRecord(
            key=key,
            algorithm=spec.algorithm,
            graph_family=spec.graph.family,
            graph_label=spec.display_label(),
            num_nodes=instance.graph.num_nodes,
            num_edges=instance.graph.num_edges,
            max_degree=instance.graph.max_degree,
            solution_size=report.solution_size,
            optimum=instance.optimum_size,
            optimum_exact=True,
            ratio_num=report.ratio.numerator,
            ratio_den=report.ratio.denominator,
            rounds=report.rounds,
            extra={
                "forced_ratio_num": instance.forced_ratio.numerator,
                "forced_ratio_den": instance.forced_ratio.denominator,
                "tight": report.is_tight,
                "feasible": report.feasible,
                "fibres_uniform": report.fibres_uniform,
            },
        )


@register_measure
class PhaseSplitMeasure(Measure):
    """The Theorem 4 phase-I/phase-II snapshot (ablation E13).

    Custom execution: runs the centralised reference implementation and
    records the phase-I edge-cover size against the final pruned size.
    """

    name = "phase_split"
    grid_safe = False

    def execute(self, spec: JobSpec, key: str) -> ResultRecord:
        graph = spec.graph.build()
        assert isinstance(graph, PortNumberedGraph)
        after_phase1, final = regular_odd_reference(graph)
        if not is_edge_dominating_set(graph, after_phase1):
            raise AlgorithmContractError(
                "phase I of Theorem 4 must already be an EDS"
            )
        return ResultRecord(
            key=key,
            algorithm=spec.algorithm,
            graph_family=spec.graph.family,
            graph_label=spec.display_label(),
            num_nodes=graph.num_nodes,
            num_edges=graph.num_edges,
            max_degree=graph.max_degree,
            solution_size=len(after_phase1),
            optimum=0,
            optimum_exact=False,
            ratio_num=0,
            ratio_den=1,
            rounds=0,
            extra={"final_size": len(final)},
        )
