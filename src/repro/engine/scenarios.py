"""Named sweep scenarios for the ``repro-eds sweep`` command.

``default`` is small enough for a laptop smoke run; ``large-regular`` is
the grid the sequential harness could never finish — random regular
graphs with d ∈ {2..10} and n up to 2048, ten seeds per cell — and is
only practical through the engine's sharded executor and cache;
``xlarge-regular`` pushes n to 16384 on top of the compiled simulation
core (E19) and, since the certified-bounds subsystem (E21), reports
ratio intervals from the ν sandwich instead of running blind;
``huge-regular`` rides the direct-to-CSR pairing-model generator to
n = 10^6 (E24, vector engine);
``comparison`` is the regular-family half of the ``repro-eds compare``
head-to-head (paper algorithms vs the :mod:`repro.baselines` family).
"""

from __future__ import annotations

from repro.engine.grid import SweepGrid

__all__ = ["SCENARIOS", "get_scenario", "scenario_names"]

SCENARIOS: dict[str, SweepGrid] = {
    "default": SweepGrid(
        name="default",
        algorithms=("port_one", "regular_odd", "bounded_degree"),
        family="regular",
        degrees=(2, 3, 4, 5),
        sizes=(16, 32),
        seeds=3,
        optimum="auto",
    ),
    "large-regular": SweepGrid(
        name="large-regular",
        algorithms=("port_one", "regular_odd", "bounded_degree"),
        family="regular",
        degrees=(2, 3, 4, 5, 6, 7, 8, 9, 10),
        sizes=(64, 128, 256, 512, 1024, 2048),
        seeds=10,
        # The exact solver is hopeless at this scale; report ratios
        # against the poly-time lower bound instead.
        optimum="lower_bound",
    ),
    # The scale the compiled simulation core unlocks (E19): n up to
    # 16384, where the dict-based scheduler alone spent minutes per
    # unit.  Ratios ran as ``optimum="none"`` until the certified
    # bounds subsystem (E21): the blossom lower bound was ~3 minutes
    # per unit at this size, while the primal/dual ν sandwich brackets
    # the optimum in under a second — so the scenario now reports
    # honest ratio *intervals* (``ratio_lo``/``ratio_hi``) end to end.
    "xlarge-regular": SweepGrid(
        name="xlarge-regular",
        algorithms=("port_one", "regular_odd", "bounded_degree"),
        family="regular",
        degrees=(2, 3, 4, 8),
        sizes=(4096, 8192, 16384),
        seeds=2,
        optimum="dual_bound",
    ),
    # The million-node scenario the direct-to-CSR path unlocks: the
    # pairing-model generator emits compiled arrays in O(nd), so graph
    # build stays seconds even at n = 10^6 where the networkx regular
    # family spent minutes in dict walks.  Ratios are off
    # (``optimum="none"``): at this scale the object of study is
    # rounds/sizes/memory per degree (E24); pass ``--optimum
    # dual_bound`` for certified intervals when you can afford the
    # ν-sandwich at 4·10^6 edges.  Run with ``--engine vector``.
    "huge-regular": SweepGrid(
        name="huge-regular",
        algorithms=("port_one", "regular_odd", "bounded_degree"),
        family="pairing_regular",
        degrees=(2, 3, 4, 8),
        sizes=(131072, 1048576),
        seeds=1,
        optimum="none",
    ),
    "bounded-mixed": SweepGrid(
        name="bounded-mixed",
        algorithms=("bounded_degree", "ids_greedy", "central_greedy"),
        family="bounded",
        degrees=(3, 4, 5),
        sizes=(16, 32, 64),
        seeds=5,
        optimum="auto",
    ),
    # Paper algorithms vs the repro.baselines comparison family, one
    # ratio/rounds/messages unit per cell; `repro-eds compare` runs this
    # grid over two graph families.  Sizes stay under the exact-optimum
    # limit so every ratio is against the true optimum.
    "comparison": SweepGrid(
        name="comparison",
        algorithms=(
            "port_one", "regular_odd", "bounded_degree",
            "greedy_mds_line", "lp_rounding", "forest_dds",
            "central_optimal",
        ),
        family="regular",
        degrees=(3, 4, 5),
        sizes=(12, 16),
        seeds=2,
        measure="comparison",
        optimum="auto",
    ),
}


def scenario_names() -> tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> SweepGrid:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from None
