"""Named sweep scenarios for the ``repro-eds sweep`` command.

``default`` is small enough for a laptop smoke run; ``large-regular`` is
the grid the sequential harness could never finish — random regular
graphs with d ∈ {2..10} and n up to 2048, ten seeds per cell — and is
only practical through the engine's sharded executor and cache.
"""

from __future__ import annotations

from repro.engine.grid import SweepGrid

__all__ = ["SCENARIOS", "get_scenario", "scenario_names"]

SCENARIOS: dict[str, SweepGrid] = {
    "default": SweepGrid(
        name="default",
        algorithms=("port_one", "regular_odd", "bounded_degree"),
        family="regular",
        degrees=(2, 3, 4, 5),
        sizes=(16, 32),
        seeds=3,
        optimum="auto",
    ),
    "large-regular": SweepGrid(
        name="large-regular",
        algorithms=("port_one", "regular_odd", "bounded_degree"),
        family="regular",
        degrees=(2, 3, 4, 5, 6, 7, 8, 9, 10),
        sizes=(64, 128, 256, 512, 1024, 2048),
        seeds=10,
        # The exact solver is hopeless at this scale; report ratios
        # against the poly-time lower bound instead.
        optimum="lower_bound",
    ),
    "bounded-mixed": SweepGrid(
        name="bounded-mixed",
        algorithms=("bounded_degree", "ids_greedy", "central_greedy"),
        family="bounded",
        degrees=(3, 4, 5),
        sizes=(16, 32, 64),
        seeds=5,
        optimum="auto",
    ),
}


def scenario_names() -> tuple[str, ...]:
    return tuple(sorted(SCENARIOS))


def get_scenario(name: str) -> SweepGrid:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from None
