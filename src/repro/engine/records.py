"""Typed result records and the in-memory/JSONL results store.

:class:`ResultRecord` is the engine's unit of output: everything the
analysis layer needs (sizes, exact-fraction ratio, rounds, message
counts, measurement extras) in a JSON-round-trippable shape.  A record
serialised by a worker process and deserialised by the parent is equal —
field for field and byte for byte under canonical JSON — to one computed
in-process, which is what makes ``--workers N`` results reproducible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentRow
from repro.engine.spec import canonical_json

__all__ = ["ResultRecord", "ResultStore"]


@dataclass(frozen=True)
class ResultRecord:
    """One finished work unit's measurements."""

    key: str
    algorithm: str
    graph_family: str
    graph_label: str
    num_nodes: int
    num_edges: int
    max_degree: int
    solution_size: int
    optimum: int  # 0 when the unit did not measure an optimum
    optimum_exact: bool
    ratio_num: int
    ratio_den: int
    rounds: int
    messages: int | None = None
    #: Two-sided optimum bracket (``dual_bound``/escalated ``auto``
    #: units): certified ``optimum_lower <= opt <= optimum_upper`` and
    #: the induced ratio interval.  All zero/defaults — and absent from
    #: the JSON encoding — when the unit measured a one-sided or exact
    #: optimum, so records from the historical modes keep their bytes.
    optimum_lower: int = 0
    optimum_upper: int = 0
    ratio_lo_num: int = 0
    ratio_lo_den: int = 1
    ratio_hi_num: int = 0
    ratio_hi_den: int = 1
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def ratio(self) -> Fraction:
        return Fraction(self.ratio_num, self.ratio_den)

    @property
    def has_optimum(self) -> bool:
        return self.optimum > 0

    @property
    def has_interval(self) -> bool:
        """True when the record carries a two-sided optimum bracket."""
        return self.optimum_upper > 0

    @property
    def ratio_lo(self) -> Fraction:
        """The optimistic end of the ratio interval.

        Falls back to the point ratio when the record has no bracket,
        so aggregations can mix exact and interval records.
        """
        if self.has_interval:
            return Fraction(self.ratio_lo_num, self.ratio_lo_den)
        return self.ratio

    @property
    def ratio_hi(self) -> Fraction:
        """The pessimistic end (equals ``ratio`` on interval records)."""
        if self.has_interval:
            return Fraction(self.ratio_hi_num, self.ratio_hi_den)
        return self.ratio

    def to_json_dict(self) -> dict[str, Any]:
        data = {
            "key": self.key,
            "algorithm": self.algorithm,
            "graph_family": self.graph_family,
            "graph_label": self.graph_label,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "max_degree": self.max_degree,
            "solution_size": self.solution_size,
            "optimum": self.optimum,
            "optimum_exact": self.optimum_exact,
            "ratio_num": self.ratio_num,
            "ratio_den": self.ratio_den,
            "rounds": self.rounds,
            "messages": self.messages,
            "extra": dict(self.extra),
        }
        if self.has_interval:
            data.update(
                optimum_lower=self.optimum_lower,
                optimum_upper=self.optimum_upper,
                ratio_lo_num=self.ratio_lo_num,
                ratio_lo_den=self.ratio_lo_den,
                ratio_hi_num=self.ratio_hi_num,
                ratio_hi_den=self.ratio_hi_den,
            )
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ResultRecord":
        return cls(
            key=data["key"],
            algorithm=data["algorithm"],
            graph_family=data["graph_family"],
            graph_label=data["graph_label"],
            num_nodes=data["num_nodes"],
            num_edges=data["num_edges"],
            max_degree=data["max_degree"],
            solution_size=data["solution_size"],
            optimum=data["optimum"],
            optimum_exact=data["optimum_exact"],
            ratio_num=data["ratio_num"],
            ratio_den=data["ratio_den"],
            rounds=data["rounds"],
            messages=data.get("messages"),
            optimum_lower=data.get("optimum_lower", 0),
            optimum_upper=data.get("optimum_upper", 0),
            ratio_lo_num=data.get("ratio_lo_num", 0),
            ratio_lo_den=data.get("ratio_lo_den", 1),
            ratio_hi_num=data.get("ratio_hi_num", 0),
            ratio_hi_den=data.get("ratio_hi_den", 1),
            extra=dict(data.get("extra", {})),
        )

    def canonical(self) -> str:
        """Canonical JSON encoding (the byte-identity comparison form)."""
        return canonical_json(self.to_json_dict())

    def to_experiment_row(self) -> ExperimentRow:
        """Adapt to the :mod:`repro.analysis.runner` row type."""
        return ExperimentRow(
            algorithm=self.algorithm,
            graph_label=self.graph_label,
            num_nodes=self.num_nodes,
            num_edges=self.num_edges,
            max_degree=self.max_degree,
            solution_size=self.solution_size,
            optimum=self.optimum,
            optimum_exact=self.optimum_exact,
            ratio=self.ratio,
            rounds=self.rounds,
        )


class ResultStore:
    """An ordered collection of records with summaries and JSONL I/O."""

    def __init__(self, records: Iterable[ResultRecord] = ()):
        self.records: list[ResultRecord] = list(records)

    def append(self, record: ResultRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[ResultRecord]) -> None:
        self.records.extend(records)

    def __iter__(self) -> Iterator[ResultRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def experiment_rows(self) -> list[ExperimentRow]:
        return [r.to_experiment_row() for r in self.records]

    def has_intervals(self) -> bool:
        """True when any stored record carries a ratio interval."""
        return any(r.has_interval for r in self.records)

    def summary_rows(self) -> list[tuple[object, ...]]:
        """Per-algorithm aggregates over the stored records.

        When any record carries a two-sided bracket, every row gains a
        ``mean ratio ∈`` interval column (point-ratio records contribute
        a zero-width interval); summaries of the historical one-sided
        modes are column-for-column what they always were.
        """
        intervals = self.has_intervals()
        grouped: dict[str, list[ResultRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.algorithm, []).append(record)
        rows: list[tuple[object, ...]] = []
        for name in sorted(grouped):
            records = grouped[name]
            ratios = [r.ratio for r in records if r.has_optimum]
            mean_ratio = (
                f"{float(sum(ratios) / len(ratios)):.4f}" if ratios else "-"
            )
            max_ratio = f"{float(max(ratios)):.4f}" if ratios else "-"
            mean_rounds = sum(r.rounds for r in records) / len(records)
            row = [
                name,
                len(records),
                mean_ratio,
                max_ratio,
                f"{mean_rounds:.1f}",
                sum(r.solution_size for r in records),
            ]
            if intervals:
                bracketed = [
                    r for r in records if r.has_optimum or r.has_interval
                ]
                if bracketed:
                    lo = sum(r.ratio_lo for r in bracketed) / len(bracketed)
                    hi = sum(r.ratio_hi for r in bracketed) / len(bracketed)
                    row.insert(4, f"[{float(lo):.4f}, {float(hi):.4f}]")
                else:
                    row.insert(4, "-")
            rows.append(tuple(row))
        return rows

    def format_summary(self, *, title: str = "sweep summary") -> str:
        headers = ["algorithm", "units", "mean ratio", "max ratio",
                   "mean rounds", "Σ|D|"]
        if self.has_intervals():
            headers.insert(4, "mean ratio ∈")
        return format_table(headers, self.summary_rows(), title=title)

    def to_jsonl(self, path: str | Path) -> None:
        """Write one canonical-JSON record per line (deterministic bytes)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(record.canonical())
                handle.write("\n")

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "ResultStore":
        store = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    store.append(ResultRecord.from_json_dict(json.loads(line)))
        return store
