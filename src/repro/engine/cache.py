"""Content-addressed on-disk result cache.

Every work unit serialises to canonical JSON; its SHA-256 digest is the
unit's *content address*.  A finished :class:`~repro.engine.records.
ResultRecord` is stored as JSON under ``<root>/<key[:2]>/<key>.json``, so
re-running any sweep or benchmark recomputes only the cells whose specs
changed.  Writes are atomic (temp file + ``os.replace``) so concurrent
sweeps sharing a cache directory never observe torn records.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.engine.spec import JobSpec, canonical_json

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "cache_key",
    "human_bytes",
]

#: Bump when the record schema or unit semantics change incompatibly;
#: old cache entries then simply stop matching.
#: v2: the registry redesign — identified-model algorithms are now
#: message-traced under ``count_messages`` (previously ``None``), and
#: randomised units bind a content-derived RNG.
CACHE_SCHEMA_VERSION = 2

DEFAULT_CACHE_DIR = ".repro-cache"


def human_bytes(size: int) -> str:
    """Render a byte count for humans (binary units, one decimal)."""
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time summary of one cache directory."""

    root: str
    entries: int
    total_bytes: int

    def format(self) -> str:
        lines = [
            f"cache directory: {self.root}",
            f"entries:         {self.entries}",
            f"total size:      {human_bytes(self.total_bytes)}",
        ]
        if self.entries:
            mean = self.total_bytes / self.entries
            lines.append(f"mean entry:      {human_bytes(round(mean))}")
        return "\n".join(lines)


def cache_key(spec: JobSpec) -> str:
    """The stable content address of one work unit."""
    payload = {"schema": CACHE_SCHEMA_VERSION, "unit": spec.to_json_dict()}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed key → record-dict store with hit/miss counters."""

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached record for *key*, or ``None`` on a miss.

        Corrupt entries (truncated writes from killed runs, manual edits)
        count as misses and are recomputed and overwritten.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(record, dict):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: dict[str, Any]) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for entry in sorted(self.root.glob("*/*.json")):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def stats(self) -> CacheStats:
        """Entry count and on-disk footprint of this cache directory."""
        entries = 0
        total = 0
        for key in self.keys():
            try:
                total += self.path_for(key).stat().st_size
            except OSError:
                continue
            entries += 1
        return CacheStats(
            root=str(self.root), entries=entries, total_bytes=total
        )

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed
