"""Content-addressed on-disk result cache.

Every work unit serialises to canonical JSON; its SHA-256 digest is the
unit's *content address*.  A finished :class:`~repro.engine.records.
ResultRecord` is stored as JSON under ``<root>/<key[:2]>/<key>.json``, so
re-running any sweep or benchmark recomputes only the cells whose specs
changed.  Writes are atomic (temp file + ``os.replace``) so concurrent
sweeps sharing a cache directory never observe torn records.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.engine.spec import JobSpec, canonical_json

__all__ = ["CACHE_SCHEMA_VERSION", "DEFAULT_CACHE_DIR", "ResultCache", "cache_key"]

#: Bump when the record schema or unit semantics change incompatibly;
#: old cache entries then simply stop matching.
CACHE_SCHEMA_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-cache"


def cache_key(spec: JobSpec) -> str:
    """The stable content address of one work unit."""
    payload = {"schema": CACHE_SCHEMA_VERSION, "unit": spec.to_json_dict()}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed key → record-dict store with hit/miss counters."""

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached record for *key*, or ``None`` on a miss.

        Corrupt entries (truncated writes from killed runs, manual edits)
        count as misses and are recomputed and overwritten.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(record, dict):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: dict[str, Any]) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for entry in sorted(self.root.glob("*/*.json")):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed
