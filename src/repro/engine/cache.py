"""Content-addressed on-disk result cache.

Every work unit serialises to canonical JSON; its SHA-256 digest is the
unit's *content address*.  A finished :class:`~repro.engine.records.
ResultRecord` is stored as JSON under ``<root>/<key[:2]>/<key>.json``, so
re-running any sweep or benchmark recomputes only the cells whose specs
changed.  Writes are atomic (temp file + ``os.replace``) so concurrent
sweeps sharing a cache directory never observe torn records.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.engine.spec import JobSpec, canonical_json
from repro.obs.session import current_session

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "GcReport",
    "ResultCache",
    "cache_key",
    "human_bytes",
    "parse_age",
    "parse_size",
]

logger = logging.getLogger(__name__)

#: Bump when the record schema or unit semantics change incompatibly;
#: old cache entries then simply stop matching.
#: v2: the registry redesign — identified-model algorithms are now
#: message-traced under ``count_messages`` (previously ``None``), and
#: randomised units bind a content-derived RNG.
#: v3: the certified-bounds subsystem — ``optimum="dual_bound"`` units
#: carry interval fields in their records.
CACHE_SCHEMA_VERSION = 3

#: The pre-bounds schema tag.  The v3 bump is *scoped*: only the new
#: ``dual_bound`` mode (whose records did not exist before) addresses
#: under v3; every historical mode — ``exact``, ``none``,
#: ``lower_bound``, ``auto`` — keeps its v2 address, because its record
#: bytes are unchanged (interval fields are only emitted by the
#: sandwich path) and invalidating terabyte-scale sweep caches for a
#: feature they do not use would be pure waste.  ``auto`` units above
#: :data:`repro.bounds.DUAL_BOUND_EDGE_LIMIT` edges now resolve to the
#: sandwich instead of blossom; any stale v2 entry there still holds a
#: sound (blossom) lower bound, just without the interval columns.
_LEGACY_SCHEMA_VERSION = 2

DEFAULT_CACHE_DIR = ".repro-cache"


def human_bytes(size: int) -> str:
    """Render a byte count for humans (binary units, one decimal)."""
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


#: Size suffixes accepted by :func:`parse_size` (binary multiples).
_SIZE_UNITS = {
    "B": 1,
    "K": 1024, "KB": 1024, "KIB": 1024,
    "M": 1024 ** 2, "MB": 1024 ** 2, "MIB": 1024 ** 2,
    "G": 1024 ** 3, "GB": 1024 ** 3, "GIB": 1024 ** 3,
    "T": 1024 ** 4, "TB": 1024 ** 4, "TIB": 1024 ** 4,
}

#: Age suffixes accepted by :func:`parse_age`, in seconds.
_AGE_UNITS = {
    "S": 1, "M": 60, "H": 3600, "D": 86400, "W": 7 * 86400,
}


def _parse_suffixed(text: str, units: "dict[str, int]", kind: str) -> float:
    raw = text.strip().upper()
    suffix_len = 0
    while suffix_len < len(raw) and raw[-suffix_len - 1].isalpha():
        suffix_len += 1
    number, suffix = raw[: len(raw) - suffix_len], raw[len(raw) - suffix_len:]
    try:
        value = float(number)
        scale = units[suffix] if suffix else 1
    except (ValueError, KeyError):
        raise ValueError(
            f"cannot parse {kind} {text!r}; expected a number with an "
            f"optional suffix from {sorted(units)}"
        ) from None
    if not (0 <= value < float("inf")):  # rejects negatives, inf, nan
        raise ValueError(
            f"{kind} must be a finite non-negative number, got {text!r}"
        )
    return value * scale


def parse_size(text: str) -> int:
    """Parse a human size like ``"64MiB"``, ``"1.5G"`` or ``"2048"``
    (plain bytes) into a byte count.  Suffixes are binary multiples."""
    return int(_parse_suffixed(text, _SIZE_UNITS, "size"))


def parse_age(text: str) -> float:
    """Parse a human age like ``"90s"``, ``"12h"``, ``"7d"`` or ``"300"``
    (plain seconds) into seconds."""
    return _parse_suffixed(text, _AGE_UNITS, "age")


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time summary of one cache directory."""

    root: str
    entries: int
    total_bytes: int

    def format(self) -> str:
        lines = [
            f"cache directory: {self.root}",
            f"entries:         {self.entries}",
            f"total size:      {human_bytes(self.total_bytes)}",
        ]
        if self.entries:
            mean = self.total_bytes / self.entries
            lines.append(f"mean entry:      {human_bytes(round(mean))}")
        return "\n".join(lines)


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`ResultCache.gc` pass removed and what survived."""

    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int

    def format(self) -> str:
        return (
            f"evicted {self.removed} record(s) "
            f"({human_bytes(self.freed_bytes)}); "
            f"kept {self.kept} record(s) ({human_bytes(self.kept_bytes)})"
        )


def cache_key(spec: JobSpec) -> str:
    """The stable content address of one work unit.

    The schema tag is per-mode (see :data:`_LEGACY_SCHEMA_VERSION`):
    ``dual_bound`` units address under the current schema, everything
    else keeps its pre-bounds v2 address byte-for-byte — pinned by the
    ``tests/data/v2_optimum_keys.json`` fixture.
    """
    schema = (
        CACHE_SCHEMA_VERSION
        if spec.optimum == "dual_bound"
        else _LEGACY_SCHEMA_VERSION
    )
    payload = {"schema": schema, "unit": spec.to_json_dict()}
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed key → record-dict store with hit/miss counters."""

    def __init__(self, root: str | os.PathLike[str] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached record for *key*, or ``None`` on a miss.

        Corrupt entries (truncated writes from killed runs, manual edits)
        count as misses and are recomputed and overwritten.
        """
        path = self.path_for(key)
        session = current_session()
        started = time.perf_counter() if session is not None else 0.0
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError:
            return self._miss(session, started)
        except json.JSONDecodeError:
            logger.warning(
                "corrupt cache entry %s — recomputing and overwriting", path
            )
            return self._miss(session, started)
        if not isinstance(record, dict):
            logger.warning(
                "malformed cache entry %s (not a record) — recomputing", path
            )
            return self._miss(session, started)
        self.hits += 1
        if session is not None:
            session.metrics.inc("cache.hit")
            session.metrics.observe(
                "cache.read_s", time.perf_counter() - started
            )
        return record

    def _miss(self, session, started: float) -> None:
        self.misses += 1
        if session is not None:
            session.metrics.inc("cache.miss")
            session.metrics.observe(
                "cache.read_s", time.perf_counter() - started
            )
        return None

    def put(self, key: str, record: dict[str, Any]) -> None:
        session = current_session()
        started = time.perf_counter() if session is not None else 0.0
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if session is not None:
            session.metrics.inc("cache.write")
            session.metrics.observe(
                "cache.write_s", time.perf_counter() - started
            )

    def touch(self, key: str) -> None:
        """Refresh *key*'s mtime so write-age LRU treats it as fresh.

        A plain ``get`` deliberately does not refresh mtime; callers
        that are about to run a size-capped :meth:`gc` touch the keys
        the current sweep used (hits included), so "this run's records
        are evicted last" holds even for fully warm runs.
        """
        try:
            os.utime(self.path_for(key))
        except OSError:
            pass

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for entry in sorted(self.root.glob("*/*.json")):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def stats(self) -> CacheStats:
        """Entry count and on-disk footprint of this cache directory."""
        entries = 0
        total = 0
        for key in self.keys():
            try:
                total += self.path_for(key).stat().st_size
            except OSError:
                continue
            entries += 1
        return CacheStats(
            root=str(self.root), entries=entries, total_bytes=total
        )

    def clear(self) -> int:
        """Delete every cached record; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                self.path_for(key).unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def gc(
        self,
        *,
        max_bytes: int | None = None,
        max_age: float | None = None,
        now: float | None = None,
    ) -> GcReport:
        """Evict cached records by age and/or total-size budget.

        Two passes: first every record whose mtime is older than
        *max_age* seconds goes; then, while the surviving footprint
        still exceeds *max_bytes*, the least recently touched records
        go (eviction order is mtime, oldest first — a ``get`` does not
        refresh mtime, so this is write-age LRU, which matches how the
        content-addressed cache is actually reused: recomputed sweeps
        rewrite their entries).  *now* exists for deterministic tests.
        """
        if max_bytes is None and max_age is None:
            raise ValueError("gc needs max_bytes and/or max_age")
        now = time.time() if now is None else now
        entries: list[tuple[float, int, Path]] = []
        for key in self.keys():
            path = self.path_for(key)
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first

        removed = 0
        freed = 0
        survivors: list[tuple[float, int, Path]] = []
        for mtime, size, path in entries:
            if max_age is not None and now - mtime > max_age:
                try:
                    path.unlink()
                except OSError:
                    # Still on disk: count it among the survivors so the
                    # size pass and the report stay truthful.
                    survivors.append((mtime, size, path))
                    continue
                removed += 1
                freed += size
            else:
                survivors.append((mtime, size, path))

        if max_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            kept: list[tuple[float, int, Path]] = []
            for position, (mtime, size, path) in enumerate(survivors):
                if total > max_bytes:
                    try:
                        path.unlink()
                    except OSError:
                        kept.append((mtime, size, path))
                        continue
                    removed += 1
                    freed += size
                    total -= size
                else:
                    kept.extend(survivors[position:])
                    break
            survivors = kept

        session = current_session()
        if session is not None and removed:
            session.metrics.inc("cache.evict", removed)
        return GcReport(
            removed=removed,
            freed_bytes=freed,
            kept=len(survivors),
            kept_bytes=sum(size for _, size, _ in survivors),
        )
