"""Declarative work units for the parallel experiment engine.

A *work unit* (:class:`JobSpec`) is plain data: an algorithm name plus
parameters, a graph specification (family name, parameters, seed), a
measurement kind, and measurement options.  Because units are data they
can be

* hashed into a stable content address (:mod:`repro.engine.cache`),
* shipped to ``multiprocessing`` workers without pickling any code
  (:mod:`repro.engine.executor`), and
* expanded from declarative grids (:mod:`repro.engine.grid`).

The single point where names turn back into runnable code is
:meth:`GraphSpec.build` (graph families) together with
:func:`repro.analysis.runner.resolve_algorithm` (algorithms).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

from repro.generators.bounded import (
    caterpillar,
    grid,
    path,
    random_bounded_degree,
    random_tree,
    star,
)
from repro.generators.regular import (
    complete,
    cycle,
    hypercube,
    random_regular,
    torus,
)
from repro.generators.special import crown, matching_union
from repro.lowerbounds.even import build_even_lower_bound
from repro.lowerbounds.instance import LowerBoundInstance
from repro.lowerbounds.odd import build_odd_lower_bound
from repro.portgraph.graph import PortNumberedGraph

__all__ = [
    "GraphSpec",
    "JobSpec",
    "canonical_json",
    "derive_seed",
    "graph_families",
]

#: Measurement kinds understood by the executor.
MEASURES = ("quality", "adversary", "phase_split")

#: Optimum policies for the ``quality`` measure.
OPTIMUM_MODES = ("auto", "exact", "lower_bound", "none")


def canonical_json(obj: Any) -> str:
    """Serialise *obj* to a canonical JSON string (sorted keys, no
    whitespace) so equal values always produce equal bytes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(*parts: Any) -> int:
    """Derive a deterministic 63-bit seed from arbitrary JSON-able parts.

    Uses SHA-256 (not Python's salted ``hash``) so the same parts yield
    the same seed in every process, interpreter invocation, and worker —
    the foundation of reproducible per-unit seeding.
    """
    digest = hashlib.sha256(canonical_json(list(parts)).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ---------------------------------------------------------------------------
# Graph family registry
# ---------------------------------------------------------------------------

def _seeded(seed: int | None) -> int:
    return 0 if seed is None else seed


_FAMILIES: dict[str, Callable[[dict[str, int], int | None], object]] = {
    "regular": lambda p, s: random_regular(p["d"], p["n"], seed=_seeded(s)),
    "cycle": lambda p, s: cycle(p["n"], seed=s),
    "complete": lambda p, s: complete(p["n"], seed=s),
    "hypercube": lambda p, s: hypercube(p["dim"], seed=s),
    "torus": lambda p, s: torus(p["rows"], p["cols"], seed=s),
    "crown": lambda p, s: crown(p["k"], seed=s),
    "matching_union": lambda p, s: matching_union(p["pairs"]),
    "bounded": lambda p, s: random_bounded_degree(
        p["n"], p["max_degree"], seed=_seeded(s)
    ),
    "path": lambda p, s: path(p["n"], seed=s),
    "grid": lambda p, s: grid(p["rows"], p["cols"], seed=s),
    "tree": lambda p, s: random_tree(p["n"], seed=_seeded(s)),
    "star": lambda p, s: star(p["leaves"], seed=s),
    "caterpillar": lambda p, s: caterpillar(
        p["spine"], p["legs"], seed=s
    ),
    "lower_bound_even": lambda p, s: build_even_lower_bound(p["d"]),
    "lower_bound_odd": lambda p, s: build_odd_lower_bound(p["d"]),
}

#: Families whose builder returns a :class:`LowerBoundInstance`.
LOWER_BOUND_FAMILIES = frozenset({"lower_bound_even", "lower_bound_odd"})


def graph_families() -> tuple[str, ...]:
    """The graph family names work units can reference."""
    return tuple(sorted(_FAMILIES))


@dataclass(frozen=True)
class GraphSpec:
    """A graph described as data: family name + parameters + seed."""

    family: str
    params: tuple[tuple[str, int], ...] = ()
    seed: int | None = None

    @classmethod
    def make(
        cls, family: str, *, seed: int | None = None, **params: int
    ) -> "GraphSpec":
        if family not in _FAMILIES:
            raise KeyError(
                f"unknown graph family {family!r}; "
                f"available: {graph_families()}"
            )
        return cls(family, tuple(sorted(params.items())), seed)

    @property
    def is_lower_bound(self) -> bool:
        return self.family in LOWER_BOUND_FAMILIES

    def build(self) -> PortNumberedGraph | LowerBoundInstance:
        """Construct the graph (or lower-bound instance) this spec names."""
        builder = _FAMILIES[self.family]
        return builder(dict(self.params), self.seed)

    def label(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.params)
        seed = "" if self.seed is None else f" seed={self.seed}"
        return f"{self.family} {parts}{seed}".strip()

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "GraphSpec":
        return cls.make(
            data["family"], seed=data.get("seed"), **data.get("params", {})
        )


@dataclass(frozen=True)
class JobSpec:
    """One independent, hashable unit of experimental work.

    ``measure`` selects what the executor does:

    * ``"quality"`` — run the algorithm, check feasibility, and measure
      the solution against an optimum chosen by ``optimum``:
      ``"exact"`` (branch-and-bound), ``"lower_bound"`` (poly-time bound),
      ``"auto"`` (exact up to ``exact_edge_limit`` edges, else the bound)
      or ``"none"`` (sizes and rounds only — for round-complexity sweeps
      and very large grids);
    * ``"adversary"`` — the graph spec must name a lower-bound
      construction; runs the Table 1 tightness confrontation;
    * ``"phase_split"`` — the Theorem 4 phase-I/phase-II snapshot used by
      the ablation study.
    """

    algorithm: str
    graph: GraphSpec
    algorithm_params: tuple[tuple[str, int], ...] = ()
    measure: str = "quality"
    optimum: str = "auto"
    exact_edge_limit: int = 48
    count_messages: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.measure not in MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; available: {MEASURES}"
            )
        if self.optimum not in OPTIMUM_MODES:
            raise ValueError(
                f"unknown optimum mode {self.optimum!r}; "
                f"available: {OPTIMUM_MODES}"
            )
        if self.measure == "adversary" and not self.graph.is_lower_bound:
            raise ValueError(
                "adversary units need a lower-bound graph family, got "
                f"{self.graph.family!r}"
            )

    def with_label(self, label: str) -> "JobSpec":
        return replace(self, label=label)

    def display_label(self) -> str:
        return self.label or self.graph.label()

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "algorithm_params": dict(self.algorithm_params),
            "graph": self.graph.to_json_dict(),
            "measure": self.measure,
            "optimum": self.optimum,
            "exact_edge_limit": self.exact_edge_limit,
            "count_messages": self.count_messages,
            "label": self.label,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            algorithm=data["algorithm"],
            graph=GraphSpec.from_json_dict(data["graph"]),
            algorithm_params=tuple(
                sorted(data.get("algorithm_params", {}).items())
            ),
            measure=data.get("measure", "quality"),
            optimum=data.get("optimum", "auto"),
            exact_edge_limit=data.get("exact_edge_limit", 48),
            count_messages=data.get("count_messages", False),
            label=data.get("label", ""),
        )
