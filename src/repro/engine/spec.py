"""Declarative work units for the parallel experiment engine.

A *work unit* (:class:`JobSpec`) is plain data: an algorithm name plus
parameters, a graph specification (family name, parameters, seed), a
measurement kind, and measurement options.  Because units are data they
can be

* hashed into a stable content address (:mod:`repro.engine.cache`),
* shipped to ``multiprocessing`` workers without pickling any code
  (:mod:`repro.engine.executor`), and
* expanded from declarative grids (:mod:`repro.engine.grid`).

Names turn back into runnable code through the :mod:`repro.registry`
catalogue: graph families via :func:`repro.registry.get_family`,
algorithms via :func:`repro.registry.resolve`, and measures via
:func:`repro.registry.get_measure` — so anything registered there is
immediately addressable from a work unit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.lowerbounds.instance import LowerBoundInstance
from repro.portgraph.graph import PortNumberedGraph
from repro.registry.base import UnknownNameError
from repro.registry.families import get_family
from repro.registry.measures import get_measure, measure_names

__all__ = [
    "GraphSpec",
    "JobSpec",
    "OPTIMUM_MODES",
    "canonical_json",
    "derive_seed",
]

#: Optimum policies for the ``quality`` measure.
OPTIMUM_MODES = ("auto", "exact", "lower_bound", "dual_bound", "none")


def canonical_json(obj: Any) -> str:
    """Serialise *obj* to a canonical JSON string (sorted keys, no
    whitespace) so equal values always produce equal bytes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def derive_seed(*parts: Any) -> int:
    """Derive a deterministic 63-bit seed from arbitrary JSON-able parts.

    Uses SHA-256 (not Python's salted ``hash``) so the same parts yield
    the same seed in every process, interpreter invocation, and worker —
    the foundation of reproducible per-unit seeding.
    """
    digest = hashlib.sha256(canonical_json(list(parts)).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class GraphSpec:
    """A graph described as data: family name + parameters + seed."""

    family: str
    params: tuple[tuple[str, int], ...] = ()
    seed: int | None = None

    @classmethod
    def make(
        cls, family: str, *, seed: int | None = None, **params: int
    ) -> "GraphSpec":
        get_family(family)  # raises UnknownNameError with the name list
        return cls(family, tuple(sorted(params.items())), seed)

    @property
    def is_lower_bound(self) -> bool:
        return get_family(self.family).lower_bound

    def build(self) -> PortNumberedGraph | LowerBoundInstance:
        """Construct the graph (or lower-bound instance) this spec names."""
        return get_family(self.family).make(dict(self.params), self.seed)

    def label(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in self.params)
        seed = "" if self.seed is None else f" seed={self.seed}"
        return f"{self.family} {parts}{seed}".strip()

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "GraphSpec":
        return cls.make(
            data["family"], seed=data.get("seed"), **data.get("params", {})
        )


@dataclass(frozen=True)
class JobSpec:
    """One independent, hashable unit of experimental work.

    ``measure`` names a registered :class:`~repro.registry.measures.
    Measure` and selects what the executor does.  The built-ins:

    * ``"quality"`` — run the algorithm, check feasibility, and measure
      the solution against an optimum chosen by ``optimum``:
      ``"exact"`` (branch-and-bound), ``"lower_bound"`` (poly-time bound),
      ``"dual_bound"`` (the certified primal/dual ν sandwich from
      :mod:`repro.bounds` — interval ratios in near-linear time),
      ``"auto"`` (exact up to ``exact_edge_limit`` edges, then the
      blossom bound, then the sandwich past
      :data:`repro.bounds.DUAL_BOUND_EDGE_LIMIT` edges) or ``"none"``
      (sizes and rounds only — for round-complexity sweeps);
    * ``"messages"`` — run with tracing and record the message traffic;
    * ``"adversary"`` — the graph spec must name a lower-bound
      construction; runs the Table 1 tightness confrontation;
    * ``"phase_split"`` — the Theorem 4 phase-I/phase-II snapshot used by
      the ablation study.
    """

    algorithm: str
    graph: GraphSpec
    algorithm_params: tuple[tuple[str, int], ...] = ()
    measure: str = "quality"
    optimum: str = "auto"
    exact_edge_limit: int = 48
    count_messages: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        try:
            measure = get_measure(self.measure)
        except UnknownNameError:
            raise ValueError(
                f"unknown measure {self.measure!r}; "
                f"available: {measure_names()}"
            ) from None
        if self.optimum not in OPTIMUM_MODES:
            raise ValueError(
                f"unknown optimum mode {self.optimum!r}; "
                f"available: {OPTIMUM_MODES}"
            )
        if measure.requires_lower_bound and not self.graph.is_lower_bound:
            raise ValueError(
                f"{self.measure} units need a lower-bound graph family, "
                f"got {self.graph.family!r}"
            )

    def with_label(self, label: str) -> "JobSpec":
        return replace(self, label=label)

    def display_label(self) -> str:
        return self.label or self.graph.label()

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "algorithm_params": dict(self.algorithm_params),
            "graph": self.graph.to_json_dict(),
            "measure": self.measure,
            "optimum": self.optimum,
            "exact_edge_limit": self.exact_edge_limit,
            "count_messages": self.count_messages,
            "label": self.label,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            algorithm=data["algorithm"],
            graph=GraphSpec.from_json_dict(data["graph"]),
            algorithm_params=tuple(
                sorted(data.get("algorithm_params", {}).items())
            ),
            measure=data.get("measure", "quality"),
            optimum=data.get("optimum", "auto"),
            exact_edge_limit=data.get("exact_edge_limit", 48),
            count_messages=data.get("count_messages", False),
            label=data.get("label", ""),
        )
