"""Grid execution over pluggable backends, with write-through caching.

:func:`execute_unit` turns one :class:`~repro.engine.spec.JobSpec` into a
:class:`~repro.engine.records.ResultRecord`; :func:`run_units` maps a
whole grid, serving already-computed cells from the content-addressed
cache and handing the rest to an execution backend
(:mod:`repro.engine.backends`): inline serial, a thread pool, a
``multiprocessing`` fan-out, or the self-calibrating ``"auto"`` default
that probes per-unit cost before committing to pool startup.

Determinism contract: a record depends only on its spec — never on the
backend, worker count, execution order, or wall clock — so
``--backend inline`` and ``--backend process --workers 4`` produce
byte-identical results.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Iterable, TextIO

from repro.engine.backends.base import ExecutionBackend, resolve_backend
from repro.engine.cache import GcReport, ResultCache, cache_key
from repro.engine.records import ResultRecord, ResultStore
from repro.engine.spec import JobSpec
from repro.obs.memory import set_memory_collection
from repro.obs.session import TelemetrySession, current_session
from repro.obs.spans import (
    UnitTelemetry,
    collection_enabled,
    recording,
    set_collection,
    span,
)
from repro.registry.measures import get_measure

__all__ = [
    "ExecutionReport",
    "ProgressPrinter",
    "execute_unit",
    "execute_unit_instrumented",
    "run_units",
]


# ---------------------------------------------------------------------------
# Single-unit execution
# ---------------------------------------------------------------------------


def execute_unit(spec: JobSpec) -> ResultRecord:
    """Execute one work unit (in-process; used directly by backends).

    Dispatches to the unit's registered measure
    (:mod:`repro.registry.measures`); the content address doubles as the
    source of the unit's RNG seed, so randomised algorithms are exactly
    as reproducible as deterministic ones.
    """
    key = cache_key(spec)
    return get_measure(spec.measure).execute(spec, key)


def execute_unit_instrumented(
    spec: JobSpec,
) -> tuple[ResultRecord, UnitTelemetry | None]:
    """Execute one unit, collecting telemetry if enabled in this process.

    The record is bit-for-bit the one :func:`execute_unit` produces —
    telemetry travels *next to* it, never inside it, so cached bytes are
    unaffected.  Returns ``(record, None)`` when collection is off (the
    common case; the extra cost is one flag check).
    """
    if not collection_enabled():
        return execute_unit(spec), None
    started = time.perf_counter()
    with recording() as rec:
        with span("resolve", measure=spec.measure):
            key = cache_key(spec)
            measure = get_measure(spec.measure)
        record = measure.execute(spec, key)
    wall_s = time.perf_counter() - started
    return record, UnitTelemetry.from_recorder(
        rec,
        key=key,
        algorithm=spec.algorithm,
        label=spec.graph.label(),
        measure=spec.measure,
        wall_s=wall_s,
    )


# ---------------------------------------------------------------------------
# Grid execution
# ---------------------------------------------------------------------------


class ProgressPrinter:
    """Throttled progress/ETA lines for long sweeps (stderr by default)."""

    def __init__(
        self,
        total: int,
        *,
        label: str = "sweep",
        stream: TextIO | None = None,
        min_interval: float = 0.5,
    ):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._started = time.monotonic()
        self._last_printed = 0.0

    def __call__(self, done: int, cached: int) -> None:
        now = time.monotonic()
        if done < self.total and now - self._last_printed < self.min_interval:
            return
        self._last_printed = now
        elapsed = now - self._started
        computed = done - cached
        remaining = self.total - done
        if computed > 0 and remaining > 0:
            eta = f"{elapsed / computed * remaining:.1f}s"
        elif remaining > 0:
            eta = "?"
        else:
            eta = "0s"
        if computed > 0 and elapsed > 0:
            rate = f" | {computed / elapsed:.1f} units/s"
        else:
            # All served from cache (or nothing done yet): a computed-
            # unit throughput would be meaningless, so show none.
            rate = ""
        self.stream.write(
            f"[{self.label}] {done}/{self.total} units "
            f"({cached} cached) | elapsed {elapsed:.1f}s{rate} | eta {eta}\n"
        )
        self.stream.flush()


@dataclass
class ExecutionReport:
    """The outcome of one grid execution."""

    store: ResultStore
    cache_hits: int
    computed: int
    #: What actually ran, e.g. ``"inline"`` or ``"auto:process(workers=4)"``.
    backend: str = "inline"
    #: The calibration note for backends that decide at run time.
    calibration: str = ""
    #: The post-sweep cache eviction outcome, when a size cap was set.
    gc: GcReport | None = None
    #: Wall-clock duration of the whole :func:`run_units` call.
    wall_time_s: float = 0.0
    #: The telemetry session that was active during execution, if any.
    telemetry: TelemetrySession | None = None

    @property
    def records(self) -> list[ResultRecord]:
        return self.store.records

    @property
    def total(self) -> int:
        return self.cache_hits + self.computed

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def cache_line(self) -> str:
        return (
            f"cache: {self.cache_hits} hit(s), {self.computed} computed "
            f"({self.hit_rate:.1%} hit rate)"
        )

    def backend_line(self) -> str:
        line = f"backend: {self.backend}"
        if self.calibration:
            line += f" [{self.calibration}]"
        return line

    def gc_line(self) -> str:
        if self.gc is None:
            return "cache gc: not requested"
        return f"cache gc: {self.gc.format()}"


def run_units(
    units: Iterable[JobSpec],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
    backend: ExecutionBackend | str | None = None,
    cache_max_bytes: int | None = None,
) -> ExecutionReport:
    """Execute *units*, in order, and return their records.

    Cached units are served from *cache* (write-through for the rest);
    the remainder run on *backend* — a name from
    :data:`~repro.engine.backends.BACKEND_NAMES`, a ready-made
    :class:`ExecutionBackend`, or ``None`` for the self-calibrating
    ``"auto"`` default.  Results are reassembled into submission order,
    so the returned records are identical for every backend and worker
    count.

    *cache_max_bytes* is the opt-in gc automation: after execution the
    cache is evicted down to the cap with :meth:`ResultCache.gc` —
    write-age LRU, with every key this run used (cache hits included)
    refreshed first, so this run's records are the last to go.  The
    eviction outcome is reported on :attr:`ExecutionReport.gc`.
    """
    started = time.perf_counter()
    session = current_session()
    units = list(units)
    keys = [cache_key(unit) for unit in units]
    records: dict[int, ResultRecord] = {}

    if cache is not None:
        for index, key in enumerate(keys):
            cached = cache.get(key)
            if cached is not None:
                records[index] = ResultRecord.from_json_dict(cached)
    hits = len(records)
    missing = [i for i in range(len(units)) if i not in records]
    done = hits
    if progress is not None:
        progress(done, hits)

    resolved = resolve_backend(backend, workers=workers)
    if session is not None:
        # Flip the process-wide collection switch for the duration of
        # the run: worker threads don't inherit our contextvars, so the
        # session itself can't be their signal (the process backend
        # forwards the flag to pool workers in the unit payload).
        set_collection(True)
        set_memory_collection(session.capture_memory)
    try:
        for item in resolved.run([(i, units[i]) for i in missing]):
            # Backends yield (index, record, telemetry); third-party
            # backends predating telemetry may yield bare 2-tuples.
            index, record = item[0], item[1]
            unit_telemetry = item[2] if len(item) > 2 else None
            records[index] = record
            if cache is not None:
                cache.put(keys[index], record.to_json_dict())
            if session is not None and unit_telemetry is not None:
                session.add_unit(unit_telemetry)
            done += 1
            if progress is not None:
                progress(done, hits)
    finally:
        if session is not None:
            set_collection(False)
            set_memory_collection(False)

    gc_report = None
    if cache is not None and cache_max_bytes is not None:
        # Cache hits don't refresh mtime, so a fully warm sweep's records
        # would otherwise be the *oldest* and evicted first.  Touch every
        # key this run used before evicting by write-age LRU.
        for key in keys:
            cache.touch(key)
        gc_report = cache.gc(max_bytes=cache_max_bytes)

    if session is not None:
        session.note("backend", resolved.describe())
        if resolved.decision:
            session.note("calibration", resolved.decision)

    store = ResultStore(records[i] for i in range(len(units)))
    return ExecutionReport(
        store=store,
        cache_hits=hits,
        computed=len(missing),
        backend=resolved.describe(),
        calibration=resolved.decision,
        gc=gc_report,
        wall_time_s=time.perf_counter() - started,
        telemetry=session,
    )
