"""Sharded execution of work units with write-through caching.

:func:`execute_unit` turns one :class:`~repro.engine.spec.JobSpec` into a
:class:`~repro.engine.records.ResultRecord`; :func:`run_units` maps a
whole grid, serving already-computed cells from the content-addressed
cache and fanning the rest across ``multiprocessing`` workers.

Determinism contract: a record depends only on its spec — never on the
worker count, execution order, or wall clock — so ``--workers 4`` and
``--workers 1`` produce byte-identical results.  Workers receive plain
spec dictionaries and resolve algorithm/graph names themselves, which
keeps the fan-out free of code pickling (and safe under both ``fork``
and ``spawn`` start methods).
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Iterable, TextIO

from repro.analysis.messages import profile_messages
from repro.analysis.reference import regular_odd_reference
from repro.analysis.runner import resolve_algorithm
from repro.eds.bounds import eds_lower_bound
from repro.eds.exact import minimum_eds_size
from repro.eds.properties import is_edge_dominating_set
from repro.engine.cache import ResultCache, cache_key
from repro.engine.records import ResultRecord, ResultStore
from repro.engine.spec import JobSpec
from repro.exceptions import AlgorithmContractError
from repro.lowerbounds.adversary import run_adversary
from repro.lowerbounds.instance import LowerBoundInstance
from repro.portgraph.graph import PortNumberedGraph
from repro.runtime.algorithm import AnonymousAlgorithm

__all__ = [
    "ExecutionReport",
    "ProgressPrinter",
    "execute_unit",
    "run_units",
]


# ---------------------------------------------------------------------------
# Single-unit execution
# ---------------------------------------------------------------------------


def _anonymous_factory(
    spec: JobSpec, graph: PortNumberedGraph
) -> AnonymousAlgorithm | None:
    """The raw anonymous-model factory for the unit's algorithm, if any.

    Needed by the measurement paths that drive the simulator directly
    (adversary confrontations, message tracing).  Resolved through the
    one algorithm registry in :mod:`repro.analysis.runner`, so newly
    registered anonymous algorithms are picked up automatically.
    """
    algorithm = resolve_algorithm(
        spec.algorithm, **dict(spec.algorithm_params)
    )
    if algorithm.factory is None:
        return None
    return algorithm.factory(graph)


def _measure_optimum(
    spec: JobSpec, graph: PortNumberedGraph
) -> tuple[int, bool]:
    if spec.optimum == "none":
        return 0, False
    if spec.optimum == "exact":
        return minimum_eds_size(graph), True
    if spec.optimum == "lower_bound":
        return eds_lower_bound(graph), False
    # "auto": exact when affordable, else the poly-time lower bound
    if graph.num_edges <= spec.exact_edge_limit:
        return minimum_eds_size(graph), True
    return eds_lower_bound(graph), False


def _quality_record(spec: JobSpec, key: str) -> ResultRecord:
    graph = spec.graph.build()
    assert isinstance(graph, PortNumberedGraph)
    algorithm = resolve_algorithm(spec.algorithm, **dict(spec.algorithm_params))
    edge_set, rounds = algorithm.run(graph)
    if not is_edge_dominating_set(graph, edge_set):
        raise AlgorithmContractError(
            f"{spec.algorithm} produced an infeasible output on "
            f"{spec.display_label()}"
        )
    optimum, exact = _measure_optimum(spec, graph)
    if optimum > 0:
        ratio = Fraction(len(edge_set), optimum)
    else:
        ratio = Fraction(1) if spec.optimum != "none" else Fraction(0)

    messages: int | None = None
    if spec.count_messages:
        if algorithm.factory is not None:
            messages = profile_messages(
                graph, algorithm.factory(graph)
            ).total_messages
        elif algorithm.model == "central":
            messages = 0

    return ResultRecord(
        key=key,
        algorithm=spec.algorithm,
        graph_family=spec.graph.family,
        graph_label=spec.display_label(),
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        solution_size=len(edge_set),
        optimum=optimum,
        optimum_exact=exact,
        ratio_num=ratio.numerator,
        ratio_den=ratio.denominator,
        rounds=rounds,
        messages=messages,
    )


def _adversary_record(spec: JobSpec, key: str) -> ResultRecord:
    instance = spec.graph.build()
    assert isinstance(instance, LowerBoundInstance)
    factory = _anonymous_factory(spec, instance.graph)
    if factory is None:
        raise AlgorithmContractError(
            f"adversary units need an anonymous algorithm, got "
            f"{spec.algorithm!r}"
        )
    report = run_adversary(instance, factory)
    return ResultRecord(
        key=key,
        algorithm=spec.algorithm,
        graph_family=spec.graph.family,
        graph_label=spec.display_label(),
        num_nodes=instance.graph.num_nodes,
        num_edges=instance.graph.num_edges,
        max_degree=instance.graph.max_degree,
        solution_size=report.solution_size,
        optimum=instance.optimum_size,
        optimum_exact=True,
        ratio_num=report.ratio.numerator,
        ratio_den=report.ratio.denominator,
        rounds=report.rounds,
        extra={
            "forced_ratio_num": instance.forced_ratio.numerator,
            "forced_ratio_den": instance.forced_ratio.denominator,
            "tight": report.is_tight,
            "feasible": report.feasible,
            "fibres_uniform": report.fibres_uniform,
        },
    )


def _phase_split_record(spec: JobSpec, key: str) -> ResultRecord:
    graph = spec.graph.build()
    assert isinstance(graph, PortNumberedGraph)
    after_phase1, final = regular_odd_reference(graph)
    if not is_edge_dominating_set(graph, after_phase1):
        raise AlgorithmContractError(
            "phase I of Theorem 4 must already be an EDS"
        )
    return ResultRecord(
        key=key,
        algorithm=spec.algorithm,
        graph_family=spec.graph.family,
        graph_label=spec.display_label(),
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        solution_size=len(after_phase1),
        optimum=0,
        optimum_exact=False,
        ratio_num=0,
        ratio_den=1,
        rounds=0,
        extra={"final_size": len(final)},
    )


def execute_unit(spec: JobSpec) -> ResultRecord:
    """Execute one work unit (in-process; used directly by workers)."""
    key = cache_key(spec)
    if spec.measure == "adversary":
        return _adversary_record(spec, key)
    if spec.measure == "phase_split":
        return _phase_split_record(spec, key)
    return _quality_record(spec, key)


def _worker(payload: tuple[int, dict[str, Any]]) -> tuple[int, dict[str, Any]]:
    index, spec_dict = payload
    record = execute_unit(JobSpec.from_json_dict(spec_dict))
    return index, record.to_json_dict()


# ---------------------------------------------------------------------------
# Grid execution
# ---------------------------------------------------------------------------


class ProgressPrinter:
    """Throttled progress/ETA lines for long sweeps (stderr by default)."""

    def __init__(
        self,
        total: int,
        *,
        label: str = "sweep",
        stream: TextIO | None = None,
        min_interval: float = 0.5,
    ):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._started = time.monotonic()
        self._last_printed = 0.0

    def __call__(self, done: int, cached: int) -> None:
        now = time.monotonic()
        if done < self.total and now - self._last_printed < self.min_interval:
            return
        self._last_printed = now
        elapsed = now - self._started
        computed = done - cached
        remaining = self.total - done
        if computed > 0 and remaining > 0:
            eta = f"{elapsed / computed * remaining:.1f}s"
        elif remaining > 0:
            eta = "?"
        else:
            eta = "0s"
        self.stream.write(
            f"[{self.label}] {done}/{self.total} units "
            f"({cached} cached) | elapsed {elapsed:.1f}s | eta {eta}\n"
        )
        self.stream.flush()


@dataclass
class ExecutionReport:
    """The outcome of one grid execution."""

    store: ResultStore
    cache_hits: int
    computed: int

    @property
    def records(self) -> list[ResultRecord]:
        return self.store.records

    @property
    def total(self) -> int:
        return self.cache_hits + self.computed

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def cache_line(self) -> str:
        return (
            f"cache: {self.cache_hits} hit(s), {self.computed} computed "
            f"({self.hit_rate:.1%} hit rate)"
        )


def run_units(
    units: Iterable[JobSpec],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ExecutionReport:
    """Execute *units*, in order, and return their records.

    Cached units are served from *cache* (write-through for the rest).
    With ``workers > 1`` the uncached units are sharded across a process
    pool; results are reassembled into submission order, so the returned
    records are identical for every worker count.
    """
    units = list(units)
    keys = [cache_key(unit) for unit in units]
    records: dict[int, ResultRecord] = {}

    if cache is not None:
        for index, key in enumerate(keys):
            cached = cache.get(key)
            if cached is not None:
                records[index] = ResultRecord.from_json_dict(cached)
    hits = len(records)
    missing = [i for i in range(len(units)) if i not in records]
    done = hits
    if progress is not None:
        progress(done, hits)

    def _finish(index: int, record: ResultRecord) -> None:
        nonlocal done
        records[index] = record
        if cache is not None:
            cache.put(keys[index], record.to_json_dict())
        done += 1
        if progress is not None:
            progress(done, hits)

    if workers > 1 and len(missing) > 1:
        payloads = [(i, units[i].to_json_dict()) for i in missing]
        with multiprocessing.Pool(min(workers, len(missing))) as pool:
            for index, record_dict in pool.imap_unordered(_worker, payloads):
                _finish(index, ResultRecord.from_json_dict(record_dict))
    else:
        for index in missing:
            _finish(index, execute_unit(units[index]))

    store = ResultStore(records[i] for i in range(len(units)))
    return ExecutionReport(store=store, cache_hits=hits, computed=len(missing))
