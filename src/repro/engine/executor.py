"""Sharded execution of work units with write-through caching.

:func:`execute_unit` turns one :class:`~repro.engine.spec.JobSpec` into a
:class:`~repro.engine.records.ResultRecord`; :func:`run_units` maps a
whole grid, serving already-computed cells from the content-addressed
cache and fanning the rest across ``multiprocessing`` workers.

Determinism contract: a record depends only on its spec — never on the
worker count, execution order, or wall clock — so ``--workers 4`` and
``--workers 1`` produce byte-identical results.  Workers receive plain
spec dictionaries and resolve algorithm/graph names through the
registry themselves, which keeps the fan-out free of code pickling (and
safe under both ``fork`` and ``spawn`` start methods).  For plugins
registered outside the built-in catalogue, each payload carries the
names of the registering modules so a ``spawn`` worker can re-import
them — which is why plugins must register at module import time.
"""

from __future__ import annotations

import importlib
import multiprocessing
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, TextIO

from repro.engine.cache import ResultCache, cache_key
from repro.engine.records import ResultRecord, ResultStore
from repro.engine.spec import JobSpec
from repro.registry.algorithms import get_algorithm
from repro.registry.families import get_family
from repro.registry.measures import get_measure

__all__ = [
    "ExecutionReport",
    "ProgressPrinter",
    "execute_unit",
    "run_units",
]


# ---------------------------------------------------------------------------
# Single-unit execution
# ---------------------------------------------------------------------------


def execute_unit(spec: JobSpec) -> ResultRecord:
    """Execute one work unit (in-process; used directly by workers).

    Dispatches to the unit's registered measure
    (:mod:`repro.registry.measures`); the content address doubles as the
    source of the unit's RNG seed, so randomised algorithms are exactly
    as reproducible as deterministic ones.
    """
    key = cache_key(spec)
    return get_measure(spec.measure).execute(spec, key)


def _plugin_modules(units: Iterable[JobSpec]) -> tuple[str, ...]:
    """Modules whose import (re-)registers the units' registry entries.

    Under the ``spawn`` start method a worker process starts with a
    fresh interpreter: the built-in catalogue reloads lazily, but
    plugins registered by user code would be missing.  Shipping the
    registering modules' names lets workers re-import them — which is
    why plugins should register at module import time.  Built-ins and
    ``__main__`` are excluded (the registry loader and multiprocessing
    itself already handle those).
    """
    modules: set[str] = set()
    for unit in units:
        modules.add(get_algorithm(unit.algorithm).origin)
        family = get_family(unit.graph.family)
        modules.add(getattr(family.build, "__module__", "") or "")
        modules.add(type(get_measure(unit.measure)).__module__)
    return tuple(sorted(
        m for m in modules
        if m and m != "__main__" and not m.startswith("repro.")
    ))


def _worker(
    payload: tuple[int, dict[str, Any], tuple[str, ...]]
) -> tuple[int, dict[str, Any]]:
    index, spec_dict, plugin_modules = payload
    for module in plugin_modules:
        try:
            importlib.import_module(module)
        except Exception:
            # If the plugin truly cannot be re-created here, resolution
            # below fails with the registry's name-listing error.
            pass
    record = execute_unit(JobSpec.from_json_dict(spec_dict))
    return index, record.to_json_dict()


# ---------------------------------------------------------------------------
# Grid execution
# ---------------------------------------------------------------------------


class ProgressPrinter:
    """Throttled progress/ETA lines for long sweeps (stderr by default)."""

    def __init__(
        self,
        total: int,
        *,
        label: str = "sweep",
        stream: TextIO | None = None,
        min_interval: float = 0.5,
    ):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._started = time.monotonic()
        self._last_printed = 0.0

    def __call__(self, done: int, cached: int) -> None:
        now = time.monotonic()
        if done < self.total and now - self._last_printed < self.min_interval:
            return
        self._last_printed = now
        elapsed = now - self._started
        computed = done - cached
        remaining = self.total - done
        if computed > 0 and remaining > 0:
            eta = f"{elapsed / computed * remaining:.1f}s"
        elif remaining > 0:
            eta = "?"
        else:
            eta = "0s"
        self.stream.write(
            f"[{self.label}] {done}/{self.total} units "
            f"({cached} cached) | elapsed {elapsed:.1f}s | eta {eta}\n"
        )
        self.stream.flush()


@dataclass
class ExecutionReport:
    """The outcome of one grid execution."""

    store: ResultStore
    cache_hits: int
    computed: int

    @property
    def records(self) -> list[ResultRecord]:
        return self.store.records

    @property
    def total(self) -> int:
        return self.cache_hits + self.computed

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def cache_line(self) -> str:
        return (
            f"cache: {self.cache_hits} hit(s), {self.computed} computed "
            f"({self.hit_rate:.1%} hit rate)"
        )


def run_units(
    units: Iterable[JobSpec],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> ExecutionReport:
    """Execute *units*, in order, and return their records.

    Cached units are served from *cache* (write-through for the rest).
    With ``workers > 1`` the uncached units are sharded across a process
    pool; results are reassembled into submission order, so the returned
    records are identical for every worker count.
    """
    units = list(units)
    keys = [cache_key(unit) for unit in units]
    records: dict[int, ResultRecord] = {}

    if cache is not None:
        for index, key in enumerate(keys):
            cached = cache.get(key)
            if cached is not None:
                records[index] = ResultRecord.from_json_dict(cached)
    hits = len(records)
    missing = [i for i in range(len(units)) if i not in records]
    done = hits
    if progress is not None:
        progress(done, hits)

    def _finish(index: int, record: ResultRecord) -> None:
        nonlocal done
        records[index] = record
        if cache is not None:
            cache.put(keys[index], record.to_json_dict())
        done += 1
        if progress is not None:
            progress(done, hits)

    if workers > 1 and len(missing) > 1:
        plugins = _plugin_modules(units[i] for i in missing)
        payloads = [(i, units[i].to_json_dict(), plugins) for i in missing]
        with multiprocessing.Pool(min(workers, len(missing))) as pool:
            for index, record_dict in pool.imap_unordered(_worker, payloads):
                _finish(index, ResultRecord.from_json_dict(record_dict))
    else:
        for index in missing:
            _finish(index, execute_unit(units[index]))

    store = ResultStore(records[i] for i in range(len(units)))
    return ExecutionReport(store=store, cache_hits=hits, computed=len(missing))
