"""Plain-text table rendering for experiment results.

No third-party dependencies: the harness prints aligned monospace tables
that mirror the paper's Table 1 layout and the per-figure reports.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

__all__ = ["format_table", "format_fraction", "format_ratio_pair"]


def format_fraction(value: Fraction, digits: int = 4) -> str:
    """Render a fraction as both exact and decimal, e.g. ``7/2 (3.5000)``."""
    if value.denominator == 1:
        return f"{value.numerator} ({float(value):.{digits}f})"
    return f"{value.numerator}/{value.denominator} ({float(value):.{digits}f})"


def format_ratio_pair(expected: Fraction, measured: Fraction) -> str:
    """Render an expected-vs-measured ratio comparison with a verdict."""
    verdict = "TIGHT" if expected == measured else (
        "below" if measured < expected else "ABOVE-BOUND!"
    )
    return (
        f"paper {format_fraction(expected)} | "
        f"measured {format_fraction(measured)} | {verdict}"
    )


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[k]) for k, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)
