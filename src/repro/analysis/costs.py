"""Executable version of the Section 7 cost/weight certificate.

The proof of Theorem 5 bounds |D| against any maximal matching D* by a
double-counting argument: internal nodes (covered by D*) receive costs
``c(v) ∈ {0, 1/2, 1, 3/2, 2}`` summing to |D|, edges receive weights
whose sum W is non-negative, and per-node weight bounds as a function of
c(v) force the histogram inequality

    2·I4 <= (Δ-3)·I3 + (2Δ-4)·I2 + (2Δ-2)·I1 + (2Δ-2)·I0

where ``I_x`` counts internal nodes of cost ``x/2``.  From it the ratio
``|D| / |D*| <= 4 - 2/(Δ-1)`` follows by algebra.

This module computes the costs, the histogram, and the certificate chain
for an *actual run* of the algorithm, turning the proof into a checkable
artifact (experiment E11, Figure 9's anatomy).  The histogram inequality
is implied by the weight argument whenever D was produced by a correct
A(Δ) run; tests assert it on random graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

from repro.exceptions import AlgorithmContractError
from repro.matching.properties import covered_nodes, is_maximal_matching
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["CostCertificate", "compute_cost_certificate"]


@dataclass(frozen=True)
class CostCertificate:
    """The §7.5-§7.8 accounting for one solution/reference pair.

    ``delta`` is the *algorithm's* odd parameter Δ' (>= 3, >= every node
    degree) — the quantity the paper's per-cost weight bounds are stated
    in, not the graph's maximum degree.
    """

    costs: Mapping[Node, Fraction]
    histogram: tuple[int, int, int, int, int]  # I0, I1, I2, I3, I4
    solution_size: int
    reference_size: int
    delta: int

    @property
    def total_cost(self) -> Fraction:
        return sum(self.costs.values(), Fraction(0))

    @property
    def histogram_inequality_holds(self) -> bool:
        """2·I4 <= (Δ-3)·I3 + (2Δ-4)·I2 + (2Δ-2)·I1 + (2Δ-2)·I0."""
        i0, i1, i2, i3, i4 = self.histogram
        delta = self.delta
        rhs = (
            (delta - 3) * i3
            + (2 * delta - 4) * i2
            + (2 * delta - 2) * i1
            + (2 * delta - 2) * i0
        )
        return 2 * i4 <= rhs

    @property
    def implied_ratio_bound(self) -> Fraction:
        """|D|/|D*| computed from the histogram (must equal the direct
        ratio — a self-check of the accounting)."""
        i0, i1, i2, i3, i4 = self.histogram
        numerator = 4 * i4 + 3 * i3 + 2 * i2 + i1
        denominator = i0 + i1 + i2 + i3 + i4
        if denominator == 0:
            return Fraction(0)
        return Fraction(numerator, denominator)


def compute_cost_certificate(
    graph: PortNumberedGraph,
    solution: Iterable[PortEdge],
    reference: Iterable[PortEdge],
    delta: int | None = None,
) -> CostCertificate:
    """Compute the §7.5 cost assignment of *solution* against *reference*.

    Parameters
    ----------
    graph:
        The host graph (simple).
    solution:
        The edge dominating set D produced by the algorithm.
    reference:
        A maximal matching D* (e.g. a minimum one); its covered nodes are
        the *internal* nodes.
    delta:
        The algorithm's odd parameter Δ' (§7 assumes Δ = 2k + 1 >= 3 and
        every degree <= Δ).  Defaults to the graph's maximum degree
        rounded up to an odd number >= 3.

    Cost assignment (§7.5): for each edge of D joining an internal node
    to an external node, the internal endpoint pays 1; for each edge of D
    joining two internal nodes, both pay 1/2.  Every edge of D has at
    least one internal endpoint (D* is maximal), so the total cost is
    exactly |D| — verified here.
    """
    graph.require_simple()
    if delta is None:
        delta = max(graph.max_degree, 3)
        if delta % 2 == 0:
            delta += 1
    if delta < 3 or delta % 2 == 0 or delta < graph.max_degree:
        raise AlgorithmContractError(
            f"delta must be odd, >= 3 and >= the maximum degree; got "
            f"{delta} for a graph of max degree {graph.max_degree}"
        )
    d_edges = frozenset(solution)
    ref_edges = frozenset(reference)
    if not is_maximal_matching(graph, ref_edges):
        raise AlgorithmContractError(
            "the reference D* must be a maximal matching (§7.4)"
        )

    internal = covered_nodes(ref_edges)
    costs: dict[Node, Fraction] = {v: Fraction(0) for v in internal}
    for e in d_edges:
        u_internal = e.u in internal
        v_internal = e.v in internal
        if u_internal and v_internal:
            costs[e.u] += Fraction(1, 2)
            costs[e.v] += Fraction(1, 2)
        elif u_internal:
            costs[e.u] += 1
        elif v_internal:
            costs[e.v] += 1
        else:
            raise AlgorithmContractError(
                f"edge {e!r} of D has two external endpoints — "
                "then D* would not be maximal"
            )

    histogram = [0, 0, 0, 0, 0]
    for v, cost in costs.items():
        doubled = cost * 2
        if doubled.denominator != 1 or not 0 <= doubled <= 4:
            raise AlgorithmContractError(
                f"cost c({v!r}) = {cost} outside {{0, 1/2, 1, 3/2, 2}}"
            )
        histogram[int(doubled)] += 1

    certificate = CostCertificate(
        costs=costs,
        histogram=tuple(histogram),
        solution_size=len(d_edges),
        reference_size=len(ref_edges),
        delta=delta,
    )
    if certificate.total_cost != len(d_edges):
        raise AlgorithmContractError(
            "accounting failure: total cost must equal |D|"
        )
    return certificate
