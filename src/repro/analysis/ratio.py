"""Approximation-ratio measurement against exact or bounded optima.

Small instances are compared against the exact branch-and-bound optimum;
larger ones fall back to the poly-time lower bound of
:func:`repro.eds.bounds.eds_lower_bound` (the reported ratio is then an
upper estimate of the true ratio, flagged as such).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from repro.eds.bounds import eds_lower_bound
from repro.eds.exact import minimum_eds_size
from repro.eds.properties import is_edge_dominating_set
from repro.exceptions import AlgorithmContractError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge

__all__ = ["RatioReport", "measure_ratio"]

#: Above this edge count the exact solver is skipped by default.
EXACT_EDGE_LIMIT = 48


@dataclass(frozen=True)
class RatioReport:
    """Measured quality of one solution."""

    solution_size: int
    optimum: int
    ratio: Fraction
    exact: bool  # True: optimum is exact; False: optimum is a lower bound

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        marker = "" if self.exact else " (vs lower bound)"
        return (
            f"|D| = {self.solution_size}, opt {'=' if self.exact else '>='}"
            f" {self.optimum}, ratio <= {float(self.ratio):.4f}{marker}"
        )


def measure_ratio(
    graph: PortNumberedGraph,
    solution: Iterable[PortEdge],
    *,
    exact_edge_limit: int = EXACT_EDGE_LIMIT,
    known_optimum: int | None = None,
) -> RatioReport:
    """Measure |D| / opt for a feasible solution *D*.

    Raises
    ------
    AlgorithmContractError
        If *solution* is not an edge dominating set of *graph*.
    """
    edge_set = frozenset(solution)
    if not is_edge_dominating_set(graph, edge_set):
        raise AlgorithmContractError("solution is not an EDS")
    size = len(edge_set)

    if known_optimum is not None:
        optimum, exact = known_optimum, True
    elif graph.num_edges <= exact_edge_limit:
        optimum, exact = minimum_eds_size(graph), True
    else:
        optimum, exact = eds_lower_bound(graph), False

    if optimum == 0:
        ratio = Fraction(1)
    else:
        ratio = Fraction(size, optimum)
    return RatioReport(size, optimum, ratio, exact)
