"""Experiment runner: algorithms × graphs → measured rows.

A thin orchestration layer shared by the CLI, the examples, and the
benchmark harness.  An *algorithm spec* couples a display name with a
callable running it on a port-numbered graph and returning the selected
edge set plus the round count.

Since the introduction of :mod:`repro.registry` this module no longer
owns the algorithm table: :func:`standard_algorithms` is a thin adapter
over the registry (use :func:`repro.registry.resolve` to look up a
single algorithm by name).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from repro.analysis.ratio import RatioReport, measure_ratio
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge
from repro.registry.algorithms import BoundAlgorithm
from repro.registry.algorithms import resolve as _registry_resolve
from repro.runtime.algorithm import AnonymousAlgorithm

__all__ = [
    "AlgorithmSpec",
    "ExperimentRow",
    "run_on",
    "standard_algorithms",
]

Runner = Callable[[PortNumberedGraph], tuple[frozenset[PortEdge], int]]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named, runnable algorithm.

    For anonymous-model algorithms ``factory`` exposes the raw node-
    program factory (given the target graph), which the experiment
    engine needs to drive the simulator directly — adversary
    confrontations and message tracing.
    """

    name: str
    run: Runner
    model: str  # "anonymous" | "identified" | "randomized" | "central"
    factory: Callable[[PortNumberedGraph], AnonymousAlgorithm] | None = None

    @classmethod
    def from_bound(cls, bound: BoundAlgorithm) -> "AlgorithmSpec":
        """Adapt a registry :class:`BoundAlgorithm` to the legacy shape."""
        return cls(bound.name, bound.run, bound.model, bound.factory)


@dataclass(frozen=True)
class ExperimentRow:
    """One (algorithm, graph) measurement."""

    algorithm: str
    graph_label: str
    num_nodes: int
    num_edges: int
    max_degree: int
    solution_size: int
    optimum: int
    optimum_exact: bool
    ratio: Fraction
    rounds: int

    @property
    def ratio_float(self) -> float:
        return float(self.ratio)


#: The historical harness comparison set (the deterministic algorithms
#: plus both baselines).  The registry may contain more — randomised
#: algorithms, third-party plugins — see repro.registry.algorithm_names().
STANDARD_ALGORITHM_NAMES = (
    "port_one",
    "regular_odd",
    "bounded_degree",
    "ids_greedy",
    "central_greedy",
)


def standard_algorithms() -> dict[str, AlgorithmSpec]:
    """The algorithms the harness compares, resolved from the registry.

    ``port_one`` and ``regular_odd`` are only *guaranteed* on regular
    graphs of the right parity; the runner executes whatever it is given
    and feasibility is checked downstream.
    """
    return {
        name: AlgorithmSpec.from_bound(_registry_resolve(name))
        for name in STANDARD_ALGORITHM_NAMES
    }


def run_on(
    spec: AlgorithmSpec,
    graph: PortNumberedGraph,
    *,
    graph_label: str = "",
    known_optimum: int | None = None,
    exact_edge_limit: int = 48,
) -> ExperimentRow:
    """Run one algorithm on one graph and measure the ratio."""
    edge_set, rounds = spec.run(graph)
    report: RatioReport = measure_ratio(
        graph,
        edge_set,
        known_optimum=known_optimum,
        exact_edge_limit=exact_edge_limit,
    )
    return ExperimentRow(
        algorithm=spec.name,
        graph_label=graph_label or f"n={graph.num_nodes}",
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        solution_size=report.solution_size,
        optimum=report.optimum,
        optimum_exact=report.exact,
        ratio=report.ratio,
        rounds=rounds,
    )
