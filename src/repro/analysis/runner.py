"""Experiment runner: algorithms × graphs → measured rows.

A thin orchestration layer shared by the CLI, the examples, and the
benchmark harness.  An *algorithm spec* couples a display name with a
callable running it on a port-numbered graph and returning the selected
edge set plus the round count.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from repro.algorithms.bounded_degree import BoundedDegreeEDS
from repro.algorithms.maximal_matching_ids import GreedyMaximalMatchingIds
from repro.algorithms.port_one import PortOneEDS
from repro.algorithms.regular_odd import RegularOddEDS
from repro.analysis.ratio import RatioReport, measure_ratio
from repro.eds.greedy import two_approx_eds
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.scheduler import run_anonymous, run_identified

__all__ = [
    "AlgorithmSpec",
    "ExperimentRow",
    "resolve_algorithm",
    "run_on",
    "standard_algorithms",
]

Runner = Callable[[PortNumberedGraph], tuple[frozenset[PortEdge], int]]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named, runnable algorithm.

    For anonymous-model algorithms ``factory`` exposes the raw node-
    program factory (given the target graph), which the experiment
    engine needs to drive the simulator directly — adversary
    confrontations and message tracing.
    """

    name: str
    run: Runner
    model: str  # "anonymous" | "identified" | "central"
    factory: Callable[[PortNumberedGraph], AnonymousAlgorithm] | None = None


@dataclass(frozen=True)
class ExperimentRow:
    """One (algorithm, graph) measurement."""

    algorithm: str
    graph_label: str
    num_nodes: int
    num_edges: int
    max_degree: int
    solution_size: int
    optimum: int
    optimum_exact: bool
    ratio: Fraction
    rounds: int

    @property
    def ratio_float(self) -> float:
        return float(self.ratio)


def _port_one(graph: PortNumberedGraph):
    result = run_anonymous(graph, PortOneEDS)
    return result.edge_set(), result.rounds


def _regular_odd(graph: PortNumberedGraph):
    result = run_anonymous(graph, RegularOddEDS)
    return result.edge_set(), result.rounds


def _bounded(graph: PortNumberedGraph):
    result = run_anonymous(graph, BoundedDegreeEDS(max(graph.max_degree, 1)))
    return result.edge_set(), result.rounds


def _ids_greedy(graph: PortNumberedGraph):
    result = run_identified(graph, GreedyMaximalMatchingIds)
    return result.edge_set(), result.rounds


def _central_greedy(graph: PortNumberedGraph):
    return two_approx_eds(graph), 0


def standard_algorithms() -> dict[str, AlgorithmSpec]:
    """The algorithms the harness compares.

    ``port_one`` and ``regular_odd`` are only *guaranteed* on regular
    graphs of the right parity; the runner executes whatever it is given
    and feasibility is checked downstream.
    """
    return {
        "port_one": AlgorithmSpec(
            "port_one", _port_one, "anonymous", lambda graph: PortOneEDS
        ),
        "regular_odd": AlgorithmSpec(
            "regular_odd", _regular_odd, "anonymous",
            lambda graph: RegularOddEDS,
        ),
        "bounded_degree": AlgorithmSpec(
            "bounded_degree", _bounded, "anonymous",
            lambda graph: BoundedDegreeEDS(max(graph.max_degree, 1)),
        ),
        "ids_greedy": AlgorithmSpec("ids_greedy", _ids_greedy, "identified"),
        "central_greedy": AlgorithmSpec(
            "central_greedy", _central_greedy, "central"
        ),
    }


def resolve_algorithm(name: str, **params: int) -> AlgorithmSpec:
    """Resolve an algorithm name (plus optional parameters) to a spec.

    The parallel experiment engine addresses algorithms by name so that
    work units stay plain data; this is the single point where names turn
    back into runnable code.  ``bounded_degree`` accepts an explicit
    ``delta`` promise (used e.g. by the inflated-Δ ablation); all other
    algorithms take no parameters.
    """
    if name == "bounded_degree" and "delta" in params:
        delta = params.pop("delta")
        if params:
            raise KeyError(f"unknown parameters for {name}: {sorted(params)}")

        def _bounded_fixed(graph: PortNumberedGraph):
            result = run_anonymous(graph, BoundedDegreeEDS(delta))
            return result.edge_set(), result.rounds

        return AlgorithmSpec(
            "bounded_degree", _bounded_fixed, "anonymous",
            lambda graph: BoundedDegreeEDS(delta),
        )
    if params:
        raise KeyError(f"unknown parameters for {name}: {sorted(params)}")
    try:
        return standard_algorithms()[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: "
            f"{sorted(standard_algorithms())}"
        ) from None


def run_on(
    spec: AlgorithmSpec,
    graph: PortNumberedGraph,
    *,
    graph_label: str = "",
    known_optimum: int | None = None,
    exact_edge_limit: int = 48,
) -> ExperimentRow:
    """Run one algorithm on one graph and measure the ratio."""
    edge_set, rounds = spec.run(graph)
    report: RatioReport = measure_ratio(
        graph,
        edge_set,
        known_optimum=known_optimum,
        exact_edge_limit=exact_edge_limit,
    )
    return ExperimentRow(
        algorithm=spec.name,
        graph_label=graph_label or f"n={graph.num_nodes}",
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree,
        solution_size=report.solution_size,
        optimum=report.optimum,
        optimum_exact=report.exact,
        ratio=report.ratio,
        rounds=rounds,
    )
