"""Message-complexity profiling for simulated runs.

The paper's complexity measure is synchronous rounds; this module adds
the orthogonal measure practitioners ask about — how many messages cross
the network — by re-running an algorithm with tracing enabled and
summarising the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError
from repro.portgraph.graph import PortNumberedGraph
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.scheduler import run_anonymous

__all__ = ["MessageProfile", "profile_messages"]


@dataclass(frozen=True)
class MessageProfile:
    """Traffic summary of one run."""

    rounds: int
    total_messages: int
    max_round_messages: int
    messages_per_round: tuple[int, ...]

    @property
    def mean_round_messages(self) -> float:
        if not self.messages_per_round:
            return 0.0
        return self.total_messages / len(self.messages_per_round)


def profile_messages(
    graph: PortNumberedGraph,
    algorithm: AnonymousAlgorithm,
    *,
    max_rounds: int = 100_000,
) -> MessageProfile:
    """Run *algorithm* with tracing and summarise its message traffic."""
    result = run_anonymous(
        graph, algorithm, max_rounds=max_rounds, record_trace=True
    )
    if result.trace is None:
        raise SimulationError("tracing was requested but not recorded")
    per_round = tuple(r.message_count for r in result.trace.rounds)
    return MessageProfile(
        rounds=result.rounds,
        total_messages=result.trace.total_messages,
        max_round_messages=max(per_round, default=0),
        messages_per_round=per_round,
    )
