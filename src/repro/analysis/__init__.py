"""Analysis layer: ratio measurement, the §7 cost certificate,
centralised references, experiment running and report formatting."""

from repro.analysis.costs import CostCertificate, compute_cost_certificate
from repro.analysis.messages import MessageProfile, profile_messages
from repro.analysis.ratio import RatioReport, measure_ratio
from repro.analysis.reference import (
    bounded_degree_reference,
    port_one_reference,
    regular_odd_reference,
)
from repro.analysis.report import (
    format_fraction,
    format_ratio_pair,
    format_table,
)
from repro.analysis.runner import (
    AlgorithmSpec,
    ExperimentRow,
    run_on,
    standard_algorithms,
)

__all__ = [
    "RatioReport",
    "measure_ratio",
    "CostCertificate",
    "compute_cost_certificate",
    "MessageProfile",
    "profile_messages",
    "port_one_reference",
    "regular_odd_reference",
    "bounded_degree_reference",
    "AlgorithmSpec",
    "ExperimentRow",
    "run_on",
    "standard_algorithms",
    "format_table",
    "format_fraction",
    "format_ratio_pair",
]
