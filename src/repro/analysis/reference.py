"""Centralised reference implementations of the paper's algorithms.

These recompute, without any message passing, exactly what the
distributed programs compute.  They serve two purposes:

* differential testing — the simulator-run output must equal the
  reference output on every graph (the strongest correctness check after
  the lower-bound tightness tests);
* phase snapshots — the figure reproductions (Figure 8) show the state
  after phase I and phase II separately, which the distributed programs
  do not expose.

Within one pair step the edges of ``M(i, j)`` are node-disjoint
(Lemma 2), so processing them "in parallel" (paper) and sequentially
(here) coincide.
"""

from __future__ import annotations

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.labels import matching_m
from repro.portgraph.ports import Node, PortEdge

__all__ = [
    "regular_odd_reference",
    "port_one_reference",
    "bounded_degree_reference",
]


def port_one_reference(graph: PortNumberedGraph) -> frozenset[PortEdge]:
    """Theorem 3 centrally: all edges incident to a port numbered 1."""
    return frozenset(e for e in graph.edges if 1 in (e.i, e.j))


def regular_odd_reference(
    graph: PortNumberedGraph,
) -> tuple[frozenset[PortEdge], frozenset[PortEdge]]:
    """Theorem 4 centrally: returns (D after phase I, final D).

    The pair schedule is the same lexicographic order the distributed
    program uses.  Works on any simple graph; the edge-cover guarantee
    only holds when every node has odd degree (e.g. odd-regular graphs).
    """
    graph.require_simple()
    d = graph.max_degree

    selected: set[PortEdge] = set()
    covered: set[Node] = set()

    # Phase I: add unless both endpoints are covered.
    for i in range(1, d + 1):
        for j in range(1, d + 1):
            for e in sorted(
                matching_m(graph, i, j), key=lambda e: (repr(e.u), e.i)
            ):
                if e.u in covered and e.v in covered:
                    continue
                selected.add(e)
                covered.add(e.u)
                covered.add(e.v)
    after_phase1 = frozenset(selected)

    # Phase II: remove when both endpoints stay covered without the edge.
    def covered_without(node: Node, e: PortEdge) -> bool:
        return any(
            node in other.endpoints for other in selected if other != e
        )

    for i in range(1, d + 1):
        for j in range(1, d + 1):
            for e in sorted(
                matching_m(graph, i, j), key=lambda e: (repr(e.u), e.i)
            ):
                if e not in selected:
                    continue
                if covered_without(e.u, e) and covered_without(e.v, e):
                    selected.discard(e)

    return after_phase1, frozenset(selected)


def bounded_degree_reference(
    graph: PortNumberedGraph, max_degree: int
) -> tuple[frozenset[PortEdge], frozenset[PortEdge]]:
    """Theorem 5 centrally: returns the pair ``(M, P)``.

    A faithful sequential re-enactment of the distributed A(Δ) protocol,
    including all tie-breaking (lexicographic pair order in phase I,
    ascending-port proposal queues and smallest-arrival-port acceptance
    in phases II-III).  The simulator run must produce exactly the same
    split — asserted by the differential tests.

    Only defined for ``max_degree >= 2`` (A(1) has no M/P structure).
    """
    from repro.exceptions import AlgorithmContractError

    if max_degree < 2:
        raise AlgorithmContractError(
            "bounded_degree_reference requires max_degree >= 2"
        )
    graph.require_simple()
    delta = max_degree + (1 if max_degree % 2 == 0 else 0)

    m_port: dict[Node, int | None] = {v: None for v in graph.nodes}

    def covered(v: Node) -> bool:
        return m_port[v] is not None

    # ---- phase I: matching over the M(i, j) pairs -----------------------
    for i in range(1, delta + 1):
        for j in range(1, delta + 1):
            for e in sorted(
                matching_m(graph, i, j), key=lambda e: (repr(e.u), e.i)
            ):
                if not covered(e.u) and not covered(e.v):
                    m_port[e.u] = e.port_at(e.u)
                    m_port[e.v] = e.port_at(e.v)

    # ---- phase II: degree-stratified proposal matchings ------------------
    for stage in range(2, delta + 1):
        covered_at_start = {v: covered(v) for v in graph.nodes}
        queue: dict[Node, list[int]] = {}
        index: dict[Node, int] = {}
        for v in graph.nodes:
            if graph.degree(v) == stage and not covered_at_start[v]:
                queue[v] = [
                    p
                    for p in graph.ports(v)
                    if graph.degree(graph.neighbour(v, p)) < stage
                    and not covered_at_start[graph.neighbour(v, p)]
                ]
                index[v] = 0
        accepted_this_stage: set[Node] = set()

        for _cycle in range(stage):
            # proposals land at the white's port
            arrivals: dict[Node, list[tuple[int, Node, int]]] = {}
            for black in sorted(queue, key=repr):
                if covered(black) or index[black] >= len(queue[black]):
                    continue
                p = queue[black][index[black]]
                white, arrival_port = graph.connection(black, p)
                arrivals.setdefault(white, []).append(
                    (arrival_port, black, p)
                )
            for white, proposals in arrivals.items():
                proposals.sort()
                eligible = (
                    not covered(white) and white not in accepted_this_stage
                )
                if eligible:
                    arrival_port, black, p = proposals[0]
                    m_port[white] = arrival_port
                    m_port[black] = p
                    accepted_this_stage.add(white)
                    losers = proposals[1:]
                else:
                    losers = proposals
                for _, black, _ in losers:
                    index[black] += 1

    # ---- phase III: dominating 2-matching via the double cover -----------
    covered_final = {v: covered(v) for v in graph.nodes}
    h_queue: dict[Node, list[int]] = {}
    h_index: dict[Node, int] = {}
    out_done: dict[Node, bool] = {}
    accepted_in: set[Node] = set()
    p_ports: dict[Node, set[int]] = {v: set() for v in graph.nodes}
    for v in graph.nodes:
        if covered_final[v]:
            out_done[v] = True
            h_queue[v] = []
            continue
        h_queue[v] = [
            p
            for p in graph.ports(v)
            if not covered_final[graph.neighbour(v, p)]
        ]
        h_index[v] = 0
        out_done[v] = not h_queue[v]

    for _cycle in range(delta):
        arrivals = {}
        for proposer in sorted(h_queue, key=repr):
            if out_done[proposer] or h_index.get(proposer, 0) >= len(
                h_queue[proposer]
            ):
                continue
            p = h_queue[proposer][h_index[proposer]]
            target, arrival_port = graph.connection(proposer, p)
            arrivals.setdefault(target, []).append(
                (arrival_port, proposer, p)
            )
        for target, proposals in arrivals.items():
            proposals.sort()
            if target not in accepted_in:
                arrival_port, proposer, p = proposals[0]
                p_ports[target].add(arrival_port)
                p_ports[proposer].add(p)
                accepted_in.add(target)
                out_done[proposer] = True
                losers = proposals[1:]
            else:
                losers = proposals
            for _, proposer, _ in losers:
                h_index[proposer] += 1
                if h_index[proposer] >= len(h_queue[proposer]):
                    out_done[proposer] = True

    m_edges = frozenset(
        graph.edge_at(v, port)
        for v, port in m_port.items()
        if port is not None
    )
    p_edges = frozenset(
        graph.edge_at(v, port)
        for v, ports in p_ports.items()
        for port in ports
    )
    return m_edges, p_edges
