"""The synchronous scheduler: executes node programs per paper §2.2.

Each round the scheduler

1. asks every running node program for its outgoing messages,
2. routes every message through the involution ``p`` (the message sent by
   ``v`` to its port ``i`` is received by ``u`` from port ``j`` where
   ``p(v, i) = (u, j)``),
3. delivers each node's inbox.

The run ends when every node has halted; a configurable round limit
guards against non-terminating programs.  :class:`RunResult` bundles the
outputs, the round count, and (optionally) a full message trace.

Execution engines
-----------------

The round loop runs over the graph's **compiled flat-array form**
(:meth:`~repro.portgraph.graph.PortNumberedGraph.compiled`): routing is
one read of the flat involution array instead of a tuple-hash dict
lookup, the delivery order is the graph's own construction order (no
per-run re-derivation), per-node inbox mappings are preallocated once
and reused across rounds, and traces are reconstructed from a flat log
after the run instead of allocating per-round objects.  Five engines
share the public entry points:

* ``"compiled"`` (default) — the flat-array loop; algorithms that opt in
  to the batch-stepping protocol (:mod:`repro.runtime.batch`) advance
  all nodes in one call per round instead of ``2·n`` dispatches;
* ``"vector"`` — the numpy struct-of-arrays loop
  (:mod:`repro.runtime.vector`): one round is a handful of whole-graph
  array operations.  Needs the optional ``[vector]`` extra (numpy) —
  selecting it explicitly without numpy raises
  :class:`~repro.exceptions.SimulationError`; algorithms without a
  vector kernel fall back to the compiled engine with a one-time
  logged notice;
* ``"auto"`` — ``"vector"`` when numpy and a vector kernel are
  available, silently ``"compiled"`` otherwise;
* ``"pernode"`` — the flat-array loop with batch stepping disabled
  (every algorithm runs through its per-node programs);
* ``"legacy"`` — the original dict-based reference loop
  (:mod:`repro.runtime.legacy`), kept for differential testing and the
  runtime benchmark.

All engines are observationally identical — same outputs, rounds, and
traces; ``tests/test_runtime_compiled.py`` enforces this across the full
algorithm × graph-family matrix.  Pick one per call (``engine=``) or for
a whole region with :func:`use_engine`.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.exceptions import RoundLimitExceeded, SimulationError
from repro.obs.spans import current_recorder
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge
from repro.runtime.algorithm import (
    AnonymousAlgorithm,
    IdentifiedAlgorithm,
    NodeProgram,
)
from repro.runtime.batch import BatchProgram
from repro.runtime.outputs import decode_edge_set
from repro.runtime.trace import ExecutionTrace, trace_from_log

__all__ = [
    "ENGINES",
    "RunResult",
    "engines_available",
    "run_anonymous",
    "run_identified",
    "use_engine",
    "DEFAULT_MAX_ROUNDS",
]

logger = logging.getLogger(__name__)

DEFAULT_MAX_ROUNDS = 100_000

#: The selectable execution engines (see the module docstring).
ENGINES = ("compiled", "vector", "auto", "pernode", "legacy")

_engine_override: ContextVar[str | None] = ContextVar(
    "repro_runtime_engine", default=None
)


@contextmanager
def use_engine(name: str) -> Iterator[None]:
    """Run a region under a different scheduler engine.

    The differential tests and the runtime benchmark wrap calls in
    ``use_engine("legacy")`` to compare against the reference loop
    without threading a parameter through every caller.  The override is
    a :class:`~contextvars.ContextVar`, so concurrent threads (the
    thread backend) see only their own setting.
    """
    _resolve_engine(name)  # validate eagerly
    token = _engine_override.set(name)
    try:
        yield
    finally:
        _engine_override.reset(token)


def _resolve_engine(engine: str | None) -> str:
    if engine is None:
        engine = _engine_override.get() or "compiled"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; available: {ENGINES}"
        )
    return engine


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated execution."""

    graph: PortNumberedGraph
    outputs: Mapping[Node, frozenset[int]]
    rounds: int
    trace: ExecutionTrace | None = None

    def edge_set(self) -> frozenset[PortEdge]:
        """Decode the outputs into the selected edge set (checked)."""
        return decode_edge_set(self.graph, self.outputs)

    def output_of(self, node: Node) -> frozenset[int]:
        return self.outputs[node]


def _execute(
    graph: PortNumberedGraph,
    programs: dict[Node, NodeProgram],
    max_rounds: int,
    record_trace: bool,
    strict_delivery: bool = False,
) -> RunResult:
    """The compiled per-node round loop.

    Routing runs over the flat arrays of the compiled graph; the only
    per-round allocations are the messages themselves.  Inbox mappings
    are preallocated per node and reused — they are cleared after each
    round's delivery, so programs must copy anything they want to keep
    (see :class:`~repro.runtime.algorithm.NodeProgram`).
    """
    cg = graph.compiled()
    nodes = cg.nodes
    n = cg.num_nodes
    progs = [programs[v] for v in nodes]
    degrees = cg.degrees
    offsets = cg.offsets
    mate = cg.mate
    port_node = cg.port_node

    running = bytearray(0 if prog.halted else 1 for prog in progs)
    num_running = sum(running)
    inboxes: list[dict[int, object]] = [{} for _ in range(n)]
    touched: list[int] = []
    rounds_log: list | None = [] if record_trace else None
    rnd = 0
    # Telemetry is sampled once per run, never per message: delivered
    # messages are summed from the touched inboxes each round (only when
    # a recorder is active), drops are counted in the already-rare
    # halted-target branch.
    rec = current_recorder()
    n_delivered = 0
    n_dropped = 0

    while num_running:
        if rnd >= max_rounds:
            raise RoundLimitExceeded(
                f"{num_running} node(s) still running after "
                f"{max_rounds} rounds"
            )

        log: list | None = [] if record_trace else None

        # 1. collect sends from running nodes (fixed construction order)
        for k in range(n):
            if not running[k]:
                continue
            out = progs[k].send(rnd)
            if not out:
                continue
            base = offsets[k]
            degree = degrees[k]
            for port, payload in out.items():
                if not 1 <= port <= degree:
                    raise SimulationError(
                        f"node {nodes[k]!r} sent on invalid port {port} "
                        f"(degree {degree})"
                    )
                target = mate[base + port - 1]
                tk = port_node[target]
                if running[tk]:
                    box = inboxes[tk]
                    if not box:
                        touched.append(tk)
                    box[target - offsets[tk] + 1] = payload
                    if log is not None:
                        log.append((base + port - 1, target, payload, False))
                else:
                    # Messages to halted nodes are dropped (their
                    # programs no longer receive); the paper's algorithms
                    # halt simultaneously so this never fires for them.
                    if strict_delivery:
                        raise SimulationError(
                            f"node {nodes[k]!r} sent to halted node "
                            f"{nodes[tk]!r} in round {rnd} "
                            "(strict_delivery is enabled)"
                        )
                    n_dropped += 1
                    if log is not None:
                        log.append((base + port - 1, target, payload, True))

        if rec is not None:
            for tk in touched:
                n_delivered += len(inboxes[tk])

        # 2. deliver and let nodes step / halt
        newly_halted: list[int] = []
        for k in range(n):
            if not running[k]:
                continue
            prog = progs[k]
            prog.receive(rnd, inboxes[k])
            if prog.halted:
                newly_halted.append(k)
        for k in newly_halted:
            running[k] = 0
        num_running -= len(newly_halted)
        for tk in touched:
            inboxes[tk].clear()
        touched.clear()

        if rounds_log is not None:
            rounds_log.append((log, newly_halted))
        rnd += 1

    outputs: dict[Node, frozenset[int]] = {}
    for k, v in enumerate(nodes):
        out = progs[k].output
        assert out is not None  # halted implies output set
        outputs[v] = out
    if rec is not None:
        _record_run(rec, rnd, n_delivered, n_dropped)
    trace = trace_from_log(cg, rounds_log) if rounds_log is not None else None
    return RunResult(graph=graph, outputs=outputs, rounds=rnd, trace=trace)


def _record_run(rec, rounds: int, delivered: float, dropped: float) -> None:
    """Report one scheduler run's counters onto the active recorder."""
    rec.count("runtime.runs")
    rec.count("runtime.rounds", rounds)
    rec.count("runtime.messages.delivered", delivered)
    rec.count("runtime.messages.dropped", dropped)
    rec.annotate(rounds=rounds)


def _execute_batch(
    graph: PortNumberedGraph,
    batch: BatchProgram,
    max_rounds: int,
    record_trace: bool,
    strict_delivery: bool = False,
) -> RunResult:
    """The batch round loop: one :meth:`BatchProgram.step_all` per round."""
    batch.record = record_trace
    batch.strict = strict_delivery
    rec = current_recorder()
    batch.collect = rec is not None
    inbox = batch.make_inbox()
    rounds_log: list | None = [] if record_trace else None
    rnd = 0

    while batch.num_running:
        if rnd >= max_rounds:
            raise RoundLimitExceeded(
                f"{batch.num_running} node(s) still running after "
                f"{max_rounds} rounds"
            )
        log = batch.step_all(rnd, inbox)
        if rounds_log is not None:
            rounds_log.append((log, list(batch.newly_halted)))
        rnd += 1

    cg = batch.cg
    outputs: dict[Node, frozenset[int]] = {}
    for k, v in enumerate(cg.nodes):
        out = batch.outputs[k]
        assert out is not None  # loop exits only when all nodes halted
        outputs[v] = out
    if rec is not None:
        _record_run(rec, rnd, batch.delivered, batch.dropped)
        rec.annotate(batch=True)
    trace = trace_from_log(cg, rounds_log) if rounds_log is not None else None
    return RunResult(graph=graph, outputs=outputs, rounds=rnd, trace=trace)


def _execute_vector(
    graph: PortNumberedGraph,
    vec,
    max_rounds: int,
    record_trace: bool,
    strict_delivery: bool = False,
) -> RunResult:
    """The vector round loop: one array-ops ``step_all`` per round."""
    vec.record = record_trace
    vec.strict = strict_delivery
    rec = current_recorder()
    vec.collect = rec is not None
    rnd = 0

    while vec.num_running:
        if rnd >= max_rounds:
            raise RoundLimitExceeded(
                f"{vec.num_running} node(s) still running after "
                f"{max_rounds} rounds"
            )
        vec.step_all(rnd)
        rnd += 1

    cg = vec.cg
    outputs: dict[Node, frozenset[int]] = {}
    for k, v in enumerate(cg.nodes):
        out = vec.outputs[k]
        assert out is not None  # loop exits only when all nodes halted
        outputs[v] = out
    if rec is not None:
        _record_run(rec, rnd, vec.delivered, vec.dropped)
        rec.count("runtime.vector.runs")
        rec.annotate(vector=True)
    trace = None
    if record_trace:
        trace = trace_from_log(cg, vec.materialise_log())
    return RunResult(graph=graph, outputs=outputs, rounds=rnd, trace=trace)


#: Algorithms already reported as lacking a vector kernel (the
#: fall-back notice is logged once per algorithm, not per run).
_vector_fallback_seen: set[str] = set()


def engines_available() -> "dict[str, bool]":
    """Engine name → availability in this environment.

    Everything but ``"vector"`` is always available; ``"vector"`` needs
    the optional numpy dependency (``"auto"`` is listed available
    regardless — it silently falls back).  The CLI surfaces this in
    ``repro-eds demo`` / ``profile``.
    """
    from repro.runtime.vector import vector_available

    return {name: name != "vector" or vector_available() for name in ENGINES}


def _make_vector_program(algorithm, graph, ids, explicit: bool):
    """Resolve an algorithm's vector kernel, or ``None`` to fall back.

    Explicitly requesting ``engine="vector"`` without numpy is an
    actionable error; with numpy but no vector kernel it falls back to
    the compiled engine with a one-time logged notice.  ``auto`` mode
    (``explicit=False``) degrades silently on both counts.
    """
    from repro.runtime.vector import vector_available

    if not vector_available():
        if explicit:
            raise SimulationError(
                "engine='vector' requires numpy, which is not installed; "
                "install the optional extra (pip install repro-eds[vector]) "
                "or use engine='auto' to fall back automatically"
            )
        return None
    hook = getattr(algorithm, "vector_program", None)
    vec = None
    if hook is not None:
        vec = hook(graph) if ids is None else hook(graph, ids)
    if vec is None and explicit:
        name = getattr(algorithm, "__name__", None) or type(algorithm).__name__
        if name not in _vector_fallback_seen:
            _vector_fallback_seen.add(name)
            logger.info(
                "algorithm %s has no vector program; engine='vector' "
                "falls back to the compiled engine",
                name,
            )
    return vec


def _annotate_engine(resolved: str) -> None:
    """Tag the enclosing telemetry span (if any) with the engine name."""
    rec = current_recorder()
    if rec is not None:
        rec.annotate(engine=resolved)


def _run_programs(
    graph: PortNumberedGraph,
    programs: dict[Node, NodeProgram],
    engine: str,
    max_rounds: int,
    record_trace: bool,
    strict_delivery: bool,
) -> RunResult:
    if engine == "legacy":
        from repro.runtime.legacy import execute_legacy

        return execute_legacy(
            graph, programs, max_rounds, record_trace, strict_delivery
        )
    return _execute(graph, programs, max_rounds, record_trace, strict_delivery)


def run_anonymous(
    graph: PortNumberedGraph,
    algorithm: AnonymousAlgorithm,
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    strict_delivery: bool = False,
    engine: str | None = None,
) -> RunResult:
    """Run a deterministic anonymous algorithm on *graph*.

    *algorithm* is a factory mapping a degree to a fresh
    :class:`NodeProgram`; it is invoked once per node with only the node's
    degree, which structurally enforces the anonymity of the model.

    Nodes of degree 0 are halted immediately with empty output (they can
    never receive information).

    With ``strict_delivery`` a message addressed to a node that has
    already halted raises :class:`SimulationError` instead of being
    silently dropped; the paper's algorithms halt all nodes simultaneously
    so they are unaffected, but the option surfaces lifecycle bugs in
    user-supplied algorithms.

    *engine* selects the scheduler implementation (default
    ``"compiled"``; see :data:`ENGINES` and :func:`use_engine`).  Under
    the compiled engine a factory exposing ``batch_program(graph)``
    (see :mod:`repro.runtime.batch`) is stepped all-nodes-at-once.
    """
    resolved = _resolve_engine(engine)
    if resolved in ("vector", "auto"):
        vec = _make_vector_program(
            algorithm, graph, None, explicit=resolved == "vector"
        )
        if vec is not None:
            _annotate_engine("vector")
            return _execute_vector(
                graph, vec, max_rounds, record_trace, strict_delivery
            )
        resolved = "compiled"
    _annotate_engine(resolved)
    if resolved == "compiled":
        make_batch = getattr(algorithm, "batch_program", None)
        if make_batch is not None:
            batch = make_batch(graph)
            if batch is not None:
                return _execute_batch(
                    graph, batch, max_rounds, record_trace, strict_delivery
                )

    programs: dict[Node, NodeProgram] = {}
    for v in graph.nodes:
        prog = algorithm(graph.degree(v))
        if graph.degree(v) == 0 and not prog.halted:
            prog.halt(frozenset())
        programs[v] = prog
    return _run_programs(
        graph, programs, resolved, max_rounds, record_trace, strict_delivery
    )


def run_identified(
    graph: PortNumberedGraph,
    algorithm: IdentifiedAlgorithm,
    *,
    ids: Mapping[Node, int] | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    strict_delivery: bool = False,
    engine: str | None = None,
) -> RunResult:
    """Run an algorithm in the stronger unique-identifier model.

    *ids* assigns each node a distinct integer; by default nodes are
    numbered by their deterministic order in ``graph.nodes``.  This runner
    exists for baseline comparisons (paper §1.3); the paper's own
    algorithms never use it.  Batch-capable identified factories expose
    ``batch_program(graph, ids)``.
    """
    if ids is None:
        ids = {v: k for k, v in enumerate(graph.nodes)}
    if len(set(ids.values())) != graph.num_nodes:
        raise SimulationError("node identifiers must be unique")

    resolved = _resolve_engine(engine)
    if resolved in ("vector", "auto"):
        vec = _make_vector_program(
            algorithm, graph, ids, explicit=resolved == "vector"
        )
        if vec is not None:
            _annotate_engine("vector")
            return _execute_vector(
                graph, vec, max_rounds, record_trace, strict_delivery
            )
        resolved = "compiled"
    _annotate_engine(resolved)
    if resolved == "compiled":
        make_batch = getattr(algorithm, "batch_program", None)
        if make_batch is not None:
            batch = make_batch(graph, ids)
            if batch is not None:
                return _execute_batch(
                    graph, batch, max_rounds, record_trace, strict_delivery
                )

    programs: dict[Node, NodeProgram] = {}
    for v in graph.nodes:
        prog = algorithm(graph.degree(v), ids[v])
        if graph.degree(v) == 0 and not prog.halted:
            prog.halt(frozenset())
        programs[v] = prog
    return _run_programs(
        graph, programs, resolved, max_rounds, record_trace, strict_delivery
    )
