"""The synchronous scheduler: executes node programs per paper §2.2.

Each round the scheduler

1. asks every running node program for its outgoing messages,
2. routes every message through the involution ``p`` (the message sent by
   ``v`` to its port ``i`` is received by ``u`` from port ``j`` where
   ``p(v, i) = (u, j)``),
3. delivers each node's inbox.

The run ends when every node has halted; a configurable round limit
guards against non-terminating programs.  :class:`RunResult` bundles the
outputs, the round count, and (optionally) a full message trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import RoundLimitExceeded, SimulationError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge
from repro.runtime.algorithm import (
    AnonymousAlgorithm,
    IdentifiedAlgorithm,
    NodeProgram,
)
from repro.runtime.outputs import decode_edge_set
from repro.runtime.trace import ExecutionTrace, RoundTrace, SentMessage

__all__ = ["RunResult", "run_anonymous", "run_identified", "DEFAULT_MAX_ROUNDS"]

DEFAULT_MAX_ROUNDS = 100_000


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated execution."""

    graph: PortNumberedGraph
    outputs: Mapping[Node, frozenset[int]]
    rounds: int
    trace: ExecutionTrace | None = None

    def edge_set(self) -> frozenset[PortEdge]:
        """Decode the outputs into the selected edge set (checked)."""
        return decode_edge_set(self.graph, self.outputs)

    def output_of(self, node: Node) -> frozenset[int]:
        return self.outputs[node]


def _execute(
    graph: PortNumberedGraph,
    programs: dict[Node, NodeProgram],
    max_rounds: int,
    record_trace: bool,
    strict_delivery: bool = False,
) -> RunResult:
    trace = ExecutionTrace() if record_trace else None
    running = {v for v, prog in programs.items() if not prog.halted}
    # The deterministic delivery order never changes; fix it once instead
    # of re-sorting the running set every round.
    node_order = sorted(programs, key=repr)
    rnd = 0

    while running:
        if rnd >= max_rounds:
            raise RoundLimitExceeded(
                f"{len(running)} node(s) still running after "
                f"{max_rounds} rounds"
            )

        round_trace = RoundTrace(rnd) if record_trace else None

        # 1. collect sends from running nodes
        inboxes: dict[Node, dict[int, object]] = {v: {} for v in running}
        for v in running:
            out = programs[v].send(rnd)
            degree = graph.degree(v)
            for port, payload in out.items():
                if not 1 <= port <= degree:
                    raise SimulationError(
                        f"node {v!r} sent on invalid port {port} "
                        f"(degree {degree})"
                    )
                u, j = graph.connection(v, port)
                # Messages to halted nodes are dropped (their programs no
                # longer receive); in the paper's algorithms all nodes halt
                # simultaneously so this never matters.  ``strict_delivery``
                # turns the silent drop into an error so other algorithms
                # surface the bug.
                if u in inboxes:
                    inboxes[u][j] = payload
                elif strict_delivery:
                    raise SimulationError(
                        f"node {v!r} sent to halted node {u!r} in round "
                        f"{rnd} (strict_delivery is enabled)"
                    )
                if round_trace is not None:
                    round_trace.messages.append(
                        SentMessage((v, port), (u, j), payload)
                    )

        # 2. deliver and let nodes step / halt
        newly_halted: list[Node] = []
        for v in (u for u in node_order if u in running):
            programs[v].receive(rnd, inboxes[v])
            if programs[v].halted:
                newly_halted.append(v)
        for v in newly_halted:
            running.discard(v)
            if round_trace is not None:
                round_trace.halted_nodes.append(v)

        if trace is not None and round_trace is not None:
            trace.rounds.append(round_trace)
        rnd += 1

    outputs: dict[Node, frozenset[int]] = {}
    for v, prog in programs.items():
        assert prog.output is not None  # halted implies output set
        outputs[v] = prog.output
    return RunResult(graph=graph, outputs=outputs, rounds=rnd, trace=trace)


def run_anonymous(
    graph: PortNumberedGraph,
    algorithm: AnonymousAlgorithm,
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    strict_delivery: bool = False,
) -> RunResult:
    """Run a deterministic anonymous algorithm on *graph*.

    *algorithm* is a factory mapping a degree to a fresh
    :class:`NodeProgram`; it is invoked once per node with only the node's
    degree, which structurally enforces the anonymity of the model.

    Nodes of degree 0 are halted immediately with empty output (they can
    never receive information).

    With ``strict_delivery`` a message addressed to a node that has
    already halted raises :class:`SimulationError` instead of being
    silently dropped; the paper's algorithms halt all nodes simultaneously
    so they are unaffected, but the option surfaces lifecycle bugs in
    user-supplied algorithms.
    """
    programs: dict[Node, NodeProgram] = {}
    for v in graph.nodes:
        prog = algorithm(graph.degree(v))
        if graph.degree(v) == 0 and not prog.halted:
            prog.halt(frozenset())
        programs[v] = prog
    return _execute(graph, programs, max_rounds, record_trace, strict_delivery)


def run_identified(
    graph: PortNumberedGraph,
    algorithm: IdentifiedAlgorithm,
    *,
    ids: Mapping[Node, int] | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    strict_delivery: bool = False,
) -> RunResult:
    """Run an algorithm in the stronger unique-identifier model.

    *ids* assigns each node a distinct integer; by default nodes are
    numbered by their deterministic order in ``graph.nodes``.  This runner
    exists for baseline comparisons (paper §1.3); the paper's own
    algorithms never use it.
    """
    if ids is None:
        ids = {v: k for k, v in enumerate(graph.nodes)}
    if len(set(ids.values())) != graph.num_nodes:
        raise SimulationError("node identifiers must be unique")

    programs: dict[Node, NodeProgram] = {}
    for v in graph.nodes:
        prog = algorithm(graph.degree(v), ids[v])
        if graph.degree(v) == 0 and not prog.halted:
            prog.halt(frozenset())
        programs[v] = prog
    return _execute(graph, programs, max_rounds, record_trace, strict_delivery)
