"""Execution traces for the synchronous simulator.

A trace records, per round, which messages crossed which connections.
Traces are optional (they cost memory proportional to the message volume)
and are primarily used by tests, the figure reproductions, and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.portgraph.ports import Node, Port

__all__ = ["SentMessage", "RoundTrace", "ExecutionTrace"]


@dataclass(frozen=True)
class SentMessage:
    """One message in flight: sent from *source* port, arriving at *target*."""

    source: Port
    target: Port
    payload: object


@dataclass
class RoundTrace:
    """Everything that happened in one synchronous round."""

    round_number: int
    messages: list[SentMessage] = field(default_factory=list)
    halted_nodes: list[Node] = field(default_factory=list)

    @property
    def message_count(self) -> int:
        return len(self.messages)


@dataclass
class ExecutionTrace:
    """The full history of one simulation run."""

    rounds: list[RoundTrace] = field(default_factory=list)

    def __iter__(self) -> Iterator[RoundTrace]:
        return iter(self.rounds)

    def __len__(self) -> int:
        return len(self.rounds)

    @property
    def total_messages(self) -> int:
        return sum(r.message_count for r in self.rounds)

    def messages_in_round(self, rnd: int) -> list[SentMessage]:
        return self.rounds[rnd].messages

    def summary(self) -> str:
        """A compact human-readable digest of the run."""
        lines = [f"rounds: {len(self.rounds)}"]
        lines.append(f"total messages: {self.total_messages}")
        for r in self.rounds:
            if r.halted_nodes:
                lines.append(
                    f"  round {r.round_number}: {r.message_count} msgs, "
                    f"{len(r.halted_nodes)} node(s) halted"
                )
        return "\n".join(lines)
