"""Execution traces for the synchronous simulator.

A trace records, per round, which messages crossed which connections.
Traces are optional (they cost memory proportional to the message volume)
and are primarily used by tests, the figure reproductions, and debugging.

A message addressed to a node that has already halted is *dropped*: it
is still part of the round's traffic (the sender paid for it, so it
counts towards :attr:`ExecutionTrace.total_messages` — the historical
and cache-stable definition), but it was never delivered.  Dropped sends
carry :attr:`SentMessage.dropped` so message accounting and the
scheduler's ``strict_delivery`` diagnostics agree on exactly which
sends those were; :attr:`RoundTrace.delivered_count` /
:attr:`ExecutionTrace.total_delivered` expose the delivered-only view.

The compiled scheduler does not build these objects inside its round
loop: it appends compact tuples of global port indices to a flat log and
reconstructs the trace once, after the run, via :func:`trace_from_log`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.portgraph.ports import Node, Port

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.portgraph.compiled import CompiledGraph

__all__ = ["SentMessage", "RoundTrace", "ExecutionTrace", "trace_from_log"]


@dataclass(frozen=True)
class SentMessage:
    """One message in flight: sent from *source* port, arriving at *target*.

    ``dropped`` marks a send addressed to an already-halted node: routed
    and recorded, but never delivered (see the scheduler's
    ``strict_delivery`` option for turning these into errors).
    """

    source: Port
    target: Port
    payload: object
    dropped: bool = False


@dataclass
class RoundTrace:
    """Everything that happened in one synchronous round."""

    round_number: int
    messages: list[SentMessage] = field(default_factory=list)
    halted_nodes: list[Node] = field(default_factory=list)

    @property
    def message_count(self) -> int:
        return len(self.messages)

    @property
    def dropped_count(self) -> int:
        return sum(1 for m in self.messages if m.dropped)

    @property
    def delivered_count(self) -> int:
        return len(self.messages) - self.dropped_count


@dataclass
class ExecutionTrace:
    """The full history of one simulation run."""

    rounds: list[RoundTrace] = field(default_factory=list)

    def __iter__(self) -> Iterator[RoundTrace]:
        return iter(self.rounds)

    def __len__(self) -> int:
        return len(self.rounds)

    @property
    def total_messages(self) -> int:
        """All sends, dropped included (the cache-stable historical count)."""
        return sum(r.message_count for r in self.rounds)

    @property
    def total_dropped(self) -> int:
        """Sends addressed to halted nodes — never delivered."""
        return sum(r.dropped_count for r in self.rounds)

    @property
    def total_delivered(self) -> int:
        return self.total_messages - self.total_dropped

    def messages_in_round(self, rnd: int) -> list[SentMessage]:
        return self.rounds[rnd].messages

    def summary(self) -> str:
        """A compact human-readable digest of the run."""
        lines = [f"rounds: {len(self.rounds)}"]
        lines.append(f"total messages: {self.total_messages}")
        dropped = self.total_dropped
        if dropped:
            lines.append(f"dropped (sent to halted nodes): {dropped}")
        for r in self.rounds:
            if r.halted_nodes:
                lines.append(
                    f"  round {r.round_number}: {r.message_count} msgs, "
                    f"{len(r.halted_nodes)} node(s) halted"
                )
        return "\n".join(lines)


def trace_from_log(
    cg: "CompiledGraph",
    rounds_log: "list[tuple[list[tuple[int, int, object, bool]], list[int]]]",
) -> ExecutionTrace:
    """Reconstruct an :class:`ExecutionTrace` from the flat round log.

    *rounds_log* holds one ``(messages, halted)`` pair per round, where
    messages are ``(source_gport, target_gport, payload, dropped)``
    tuples and halted is a list of node indices.  The compiled
    schedulers log in this form during the run and materialise the
    object trace here, once, afterwards — per-round allocation stays out
    of the hot loop.
    """
    port = cg.port
    nodes = cg.nodes
    trace = ExecutionTrace()
    for rnd, (messages, halted) in enumerate(rounds_log):
        round_trace = RoundTrace(rnd)
        round_trace.messages = [
            SentMessage(port(src), port(dst), payload, dropped)
            for src, dst, payload, dropped in messages
        ]
        round_trace.halted_nodes = [nodes[k] for k in halted]
        trace.rounds.append(round_trace)
    return trace
