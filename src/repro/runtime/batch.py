"""The opt-in batch-stepping protocol of the compiled scheduler.

A :class:`~repro.runtime.algorithm.NodeProgram` advances one node; the
scheduler pays ``2·n`` method dispatches per round (one ``send`` and one
``receive`` per running node) plus a mapping per inbox.  A
:class:`BatchProgram` advances **all** nodes in one
:meth:`~BatchProgram.step_all` call per round over the compiled graph's
flat buffers — the shape the paper's deterministic algorithms want,
since their per-node state is a handful of scalars and their round
schedule is global.

Opting in: an algorithm factory exposes ``batch_program(graph)``
(anonymous model) or ``batch_program(graph, ids)`` (identified model)
returning a :class:`BatchProgram`; :func:`repro.runtime.run_anonymous` /
:func:`~repro.runtime.run_identified` detect the hook and switch the
round loop.  A batch implementation must be *observationally identical*
to its per-node program: same outputs, same round count, and the same
messages in the same order (per round: node order, then the per-node
send-mapping order) — the differential suite in
``tests/test_runtime_compiled.py`` holds every built-in to exactly that.

Subclasses implement :meth:`send_all` (this round's sends as
``(global port, payload)`` pairs, canonical order) and
:meth:`receive_all` (consume the flat inbox, update state, halt nodes
via :meth:`halt_node`); the base class owns routing through ``mate``,
halted-target dropping, ``strict_delivery``, and the flat trace log.
"""

from __future__ import annotations

import abc

from repro.exceptions import SimulationError
from repro.portgraph.graph import PortNumberedGraph

__all__ = ["ABSENT", "BatchProgram"]


class _Absent:
    """Sentinel for an empty flat inbox slot (``None`` is a valid payload)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<no message>"


#: The single sentinel instance filling unwritten inbox slots.
ABSENT = _Absent()


class BatchProgram(abc.ABC):
    """All nodes of one graph, stepped together by the compiled scheduler.

    State the scheduler reads:

    ``running`` / ``num_running``
        Per-node-index liveness (degree-0 nodes start halted with empty
        output, matching the per-node runners).
    ``outputs``
        Per-node-index output port sets, filled by :meth:`halt_node`.
    ``newly_halted``
        Node indices halted by the latest :meth:`step_all`, in node
        order (feeds the round trace).

    Flags the scheduler sets before the loop: ``record`` (collect the
    flat send log for trace reconstruction) and ``strict`` (raise on
    sends to halted nodes instead of dropping).
    """

    __slots__ = (
        "cg",
        "running",
        "num_running",
        "outputs",
        "newly_halted",
        "record",
        "strict",
        "collect",
        "delivered",
        "dropped",
        "total_send_rounds",
        "_initial_running",
        "_mate",
        "_port_node",
        "_written",
        "_absent_template",
    )

    def __init__(self, graph: PortNumberedGraph) -> None:
        cg = graph.compiled()
        self.cg = cg
        self.running = bytearray(
            1 if degree > 0 else 0 for degree in cg.degrees
        )
        self.num_running = sum(self.running)
        # Degree-0 nodes can never receive information: halted up front
        # with empty output, exactly like the per-node runners.
        self.outputs: list[frozenset[int] | None] = [
            None if degree > 0 else frozenset() for degree in cg.degrees
        ]
        self.newly_halted: list[int] = []
        self.record = False
        self.strict = False
        #: Telemetry switch set by the scheduler when a span recorder is
        #: active; when off, the round loop does no message counting.
        self.collect = False
        self.delivered = 0
        self.dropped = 0
        #: Rounds whose sends are a *total broadcast* — every running
        #: node sends on every port.  While no node has halted yet, such
        #: a round writes every inbox slot and can drop nothing, so
        #: routing skips liveness checks and per-slot clearing entirely.
        self.total_send_rounds: frozenset[int] = frozenset()
        self._initial_running = self.num_running
        self._mate, self._port_node = cg.flat_lists()
        self._written: list[int] = []
        self._absent_template = [ABSENT] * cg.num_ports

    # -- subclass hooks --------------------------------------------------

    @abc.abstractmethod
    def send_all(self, rnd: int) -> "list[tuple[int, object]]":
        """Round *rnd*'s sends as ``(global port, payload)`` pairs.

        Canonical order — ascending node index, and within a node the
        order its per-node program's send mapping would iterate — so
        traces match the per-node execution exactly.
        """

    @abc.abstractmethod
    def receive_all(self, rnd: int, inbox: list) -> None:
        """Consume round *rnd*'s flat *inbox* and update all nodes.

        ``inbox[g]`` is the payload delivered to global port ``g``, or
        :data:`ABSENT`.  Implementations process nodes in ascending
        index order and halt via :meth:`halt_node`.
        """

    # -- shared mechanics -------------------------------------------------

    def halt_node(self, k: int, output: frozenset[int]) -> None:
        """Halt node index *k* with *output* (validated local ports)."""
        self.outputs[k] = output
        self.running[k] = 0
        self.num_running -= 1
        self.newly_halted.append(k)

    def make_inbox(self) -> list:
        """A fresh flat inbox buffer, one slot per global port."""
        return list(self._absent_template)

    def is_total_round(self, rnd: int) -> bool:
        """Whether round *rnd*'s sends are a total broadcast.

        The default consults :attr:`total_send_rounds`; subclasses with
        periodic broadcast schedules override instead.
        """
        return rnd in self.total_send_rounds

    def step_all(
        self, rnd: int, inbox: list
    ) -> "list[tuple[int, int, object, bool]] | None":
        """Execute one full round: send, route, deliver — one call.

        Routes :meth:`send_all`'s messages through the flat involution
        into *inbox* (dropping sends to halted nodes, or raising when
        ``strict``), hands the inbox to :meth:`receive_all`, then clears
        exactly the slots it wrote.  Returns the flat send log
        ``(source, target, payload, dropped)`` when ``record`` is set,
        else ``None`` — the scheduler materialises the object trace from
        these after the run.
        """
        mate = self._mate
        port_node = self._port_node
        running = self.running
        written = self._written
        log: list[tuple[int, int, object, bool]] | None = (
            [] if self.record else None
        )
        self.newly_halted.clear()

        if (
            log is None
            and not self.strict
            and self.num_running == self._initial_running
            and self.is_total_round(rnd)
        ):
            # Total broadcast, nobody halted: every slot gets written,
            # nothing can drop — route without bookkeeping and reset
            # the buffer wholesale afterwards.
            sends = self.send_all(rnd)
            for g, payload in sends:
                inbox[mate[g]] = payload
            if self.collect:
                self.delivered += len(sends)
            self.receive_all(rnd, inbox)
            inbox[:] = self._absent_template
            return None

        for g, payload in self.send_all(rnd):
            target = mate[g]
            if running[port_node[target]]:
                inbox[target] = payload
                written.append(target)
                if log is not None:
                    log.append((g, target, payload, False))
            else:
                if self.strict:
                    nodes = self.cg.nodes
                    raise SimulationError(
                        f"node {nodes[port_node[g]]!r} sent to halted "
                        f"node {nodes[port_node[target]]!r} in round "
                        f"{rnd} (strict_delivery is enabled)"
                    )
                self.dropped += 1
                if log is not None:
                    log.append((g, target, payload, True))

        if self.collect:
            # One inbox slot per delivered message (each port has a
            # single sender through the involution).
            self.delivered += len(written)

        self.receive_all(rnd, inbox)

        for target in written:
            inbox[target] = ABSENT
        written.clear()
        return log
