"""Randomised extension of the port-numbering model.

The paper (§1.3-§1.4) studies *deterministic* algorithms and shows hard
limits: e.g. no deterministic anonymous algorithm finds a maximal
matching in a symmetric cycle.  Randomness removes these limits — each
node gets a private random source that breaks symmetry — at the price of
the clean tight bounds.  This module adds the minimal machinery to
demonstrate that contrast: a runner that equips every node program with
its own seeded :class:`random.Random`.

Determinism of the *simulation* is preserved: the per-node generators
are derived from a master seed and the node's position in the (sorted)
node list, so a run is reproducible even though the algorithm is
randomised.  Note that the node index is used only to seed randomness —
programs still receive nothing but their degree and their RNG, so the
model is "anonymous + private coins".
"""

from __future__ import annotations

import random
from typing import Callable

from repro.portgraph.graph import PortNumberedGraph
from repro.runtime.algorithm import NodeProgram
from repro.runtime.scheduler import (
    DEFAULT_MAX_ROUNDS,
    RunResult,
    _resolve_engine,
    _run_programs,
)

__all__ = ["RandomizedAlgorithm", "run_randomized"]

#: Factory: (degree, private_rng) -> node program.
RandomizedAlgorithm = Callable[[int, random.Random], NodeProgram]


def run_randomized(
    graph: PortNumberedGraph,
    algorithm: RandomizedAlgorithm,
    *,
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
    engine: str | None = None,
) -> RunResult:
    """Run a randomised anonymous algorithm with reproducible coins."""
    master = random.Random(seed)
    programs: dict = {}
    for v in graph.nodes:
        node_rng = random.Random(master.getrandbits(64))
        prog = algorithm(graph.degree(v), node_rng)
        if graph.degree(v) == 0 and not prog.halted:
            prog.halt(frozenset())
        programs[v] = prog
    return _run_programs(
        graph, programs, _resolve_engine(engine), max_rounds, record_trace,
        False,
    )
