"""The vector execution engine: whole-graph rounds as numpy array ops.

A :class:`~repro.runtime.batch.BatchProgram` advances all nodes in one
call per round, but that call still loops over nodes (or schedule
entries) in Python.  A :class:`VectorProgram` removes the inner loop
too: per-node state lives in typed numpy arrays (struct-of-arrays),
messages are gathered through the flat involution with one fancy-index,
and each round is a handful of whole-graph array operations over a
:class:`~repro.portgraph.vector.VectorGraph`.

Observational identity is the contract, exactly as for batch programs:
same outputs, same round counts, and the same messages in the same
canonical order (ascending node index, then the per-node program's send
-mapping order) as the compiled engine — the differential suite holds
every vector kernel to that.

Tracing is *lazy*: the hot loop never allocates message objects.  When
a trace is requested, each round appends compact **slabs** — the send
gports plus a payload code and up to two int columns — and
:meth:`VectorProgram.materialise_log` expands them into the flat
``(source, target, payload, dropped)`` log after the run, feeding the
same :func:`~repro.runtime.trace.trace_from_log` path as the compiled
engine.

numpy is optional (the ``[vector]`` extra): this module imports without
it, and :func:`vector_available` gates every construction site.
"""

from __future__ import annotations

import abc

from repro.exceptions import SimulationError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.vector import np, numpy_available

__all__ = ["VectorProgram", "vector_available", "PAYLOADS"]


def vector_available() -> bool:
    """Whether the vector engine can run (numpy importable)."""
    return numpy_available()


# -- payload codec ---------------------------------------------------------
#
# Message payloads of the built-in algorithms are small tagged tuples (or
# plain ints); inside the round loop they are stored as an integer code
# plus up to two int64 columns and only decoded when a trace is
# materialised.

PAYLOAD_INT = 0  # column a          -> a              (port_one)
PAYLOAD_HELLO = 1  # columns a, b    -> ("hello", a, b)
PAYLOAD_DN = 2  # column a (0/1)     -> ("dn", bool)
PAYLOAD_COV = 3  # column a (0/1)    -> ("cov", bool)
PAYLOAD_MCOV = 4  # column a (0/1)   -> ("mcov", bool)
PAYLOAD_SCOV = 5  # column a (0/1)   -> ("scov", bool)
PAYLOAD_HCOV = 6  # column a (0/1)   -> ("hcov", bool)
PAYLOAD_PROP = 7  # no columns       -> ("prop",)
PAYLOAD_ACC = 8  # no columns        -> ("acc",)
PAYLOAD_REJ = 9  # no columns        -> ("rej",)
PAYLOAD_ID = 10  # column a          -> ("id", a)
PAYLOAD_ALIVE = 11  # no columns     -> ("alive",)
PAYLOAD_PROP_ID = 12  # column a     -> ("prop", a)

#: code → constant payload, for the column-free codes.
_CONSTANT_PAYLOADS = {
    PAYLOAD_PROP: ("prop",),
    PAYLOAD_ACC: ("acc",),
    PAYLOAD_REJ: ("rej",),
    PAYLOAD_ALIVE: ("alive",),
}

#: code → tag, for the single-bool codes.
_BOOL_TAGS = {
    PAYLOAD_DN: "dn",
    PAYLOAD_COV: "cov",
    PAYLOAD_MCOV: "mcov",
    PAYLOAD_SCOV: "scov",
    PAYLOAD_HCOV: "hcov",
}

PAYLOADS = tuple(range(13))


def _decode(code: int, a, b) -> object:
    """One slab entry's payload back to the object the batch engine sends."""
    if code == PAYLOAD_INT:
        return int(a)
    tag = _BOOL_TAGS.get(code)
    if tag is not None:
        return (tag, bool(a))
    constant = _CONSTANT_PAYLOADS.get(code)
    if constant is not None:
        return constant
    if code == PAYLOAD_HELLO:
        return ("hello", int(a), int(b))
    if code == PAYLOAD_ID:
        return ("id", int(a))
    if code == PAYLOAD_PROP_ID:
        return ("prop", int(a))
    raise ValueError(f"unknown payload code {code}")  # pragma: no cover


class VectorProgram(abc.ABC):
    """All nodes of one graph, stepped together as numpy arrays.

    Mirrors the :class:`~repro.runtime.batch.BatchProgram` surface the
    scheduler reads — ``running``/``num_running``, ``outputs``,
    ``newly_halted``, the ``record``/``strict``/``collect`` flags and
    the ``delivered``/``dropped`` counters — but ``running`` is a numpy
    bool array and one :meth:`step_all` is array ops end to end.

    Subclasses implement :meth:`_step`; the base class owns the round
    scaffolding, drop/strict accounting (:meth:`deliver`) and the lazy
    trace slabs (:meth:`log_sends` / :meth:`materialise_log`).
    """

    __slots__ = (
        "cg",
        "vg",
        "running",
        "num_running",
        "outputs",
        "newly_halted",
        "record",
        "strict",
        "collect",
        "delivered",
        "dropped",
        "_initial_running",
        "_slabs",
        "_halted_log",
    )

    def __init__(self, graph: PortNumberedGraph) -> None:
        cg = graph.compiled()
        self.cg = cg
        vg = cg.vector()
        self.vg = vg
        # Degree-0 nodes can never receive information: halted up front
        # with empty output, exactly like the other engines.
        self.running = vg.degrees > 0
        self.num_running = int(self.running.sum())
        self.outputs: list[frozenset[int] | None] = [
            None if degree > 0 else frozenset() for degree in cg.degrees
        ]
        self.newly_halted: list[int] = []
        self.record = False
        self.strict = False
        self.collect = False
        self.delivered = 0
        self.dropped = 0
        self._initial_running = self.num_running
        #: Per-round lists of (gports, code, a, b, dropped_mask) slabs.
        self._slabs: list[list[tuple]] = []
        self._halted_log: list[list[int]] = []

    # -- subclass hook -----------------------------------------------------

    @abc.abstractmethod
    def _step(self, rnd: int) -> None:
        """Execute round *rnd*: send (via :meth:`deliver` +
        :meth:`log_sends`), update array state, halt nodes via
        :meth:`halt_nodes`."""

    # -- round scaffolding -------------------------------------------------

    def step_all(self, rnd: int) -> None:
        """One full round; trace bookkeeping wraps the kernel step."""
        self.newly_halted.clear()
        if self.record:
            self._slabs.append([])
        self._step(rnd)
        if self.record:
            self._halted_log.append(list(self.newly_halted))

    def deliver(self, rnd: int, gports):
        """Account for this round's sends on *gports* (canonical order).

        Returns ``None`` when every send is delivered, else the boolean
        delivered-mask.  Handles message counting, drop counting, and
        ``strict_delivery`` (raising on the first dropped send, exactly
        like the compiled router).  While no node has halted, nothing
        can drop and the check short-circuits.
        """
        n_sent = len(gports)
        if self.num_running == self._initial_running:
            if self.collect:
                self.delivered += n_sent
            return None
        vg = self.vg
        ok = self.running[vg.peer_node[gports]]
        n_ok = int(ok.sum())
        if n_ok != n_sent:
            if self.strict:
                g = int(gports[~ok][0])
                target = int(vg.mate[g])
                nodes = self.cg.nodes
                raise SimulationError(
                    f"node {nodes[int(vg.port_node[g])]!r} sent to halted "
                    f"node {nodes[int(vg.port_node[target])]!r} in round "
                    f"{rnd} (strict_delivery is enabled)"
                )
            self.dropped += n_sent - n_ok
        if self.collect:
            self.delivered += n_ok
        return None if n_ok == n_sent else ok

    def log_sends(self, gports, code, a=None, b=None, delivered=None) -> None:
        """Append one send slab to the current round (``record`` only).

        *code* is a payload code (scalar or per-send array); *a*/*b* are
        optional int columns; *delivered* is :meth:`deliver`'s mask (or
        ``None`` when nothing dropped).
        """
        dropped = None if delivered is None else ~delivered
        self._slabs[-1].append((gports, code, a, b, dropped))

    def halt_nodes(self, ks, outputs) -> None:
        """Halt the nodes with indices *ks* (ascending) with *outputs*."""
        out = self.outputs
        for k, result in zip(ks, outputs):
            out[k] = result
        self.running[ks] = False
        self.num_running -= len(ks)
        self.newly_halted.extend(int(k) for k in ks)

    # -- lazy trace --------------------------------------------------------

    def materialise_log(self):
        """Expand the per-round slabs into the flat compiled-engine log.

        Returns ``rounds_log`` in the exact shape
        :func:`~repro.runtime.trace.trace_from_log` consumes:
        one ``(messages, halted)`` pair per round with messages as
        ``(source_gport, target_gport, payload, dropped)`` tuples.
        """
        mate = self.vg.mate
        rounds_log = []
        for slabs, halted in zip(self._slabs, self._halted_log):
            messages: list[tuple[int, int, object, bool]] = []
            for gports, code, a, b, dropped in slabs:
                targets = mate[gports]
                scalar_code = not isinstance(code, np.ndarray)
                for idx in range(len(gports)):
                    c = code if scalar_code else int(code[idx])
                    payload = _decode(
                        c,
                        None if a is None else a[idx],
                        None if b is None else b[idx],
                    )
                    messages.append(
                        (
                            int(gports[idx]),
                            int(targets[idx]),
                            payload,
                            False if dropped is None else bool(dropped[idx]),
                        )
                    )
            rounds_log.append((messages, halted))
        return rounds_log
