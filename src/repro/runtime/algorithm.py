"""Node-program interface for synchronous distributed algorithms (§2.2).

The paper's model: all nodes run the same deterministic algorithm; a node
initially knows *only its own degree*; computation proceeds in synchronous
rounds of (local computation, send one message per port, receive one
message per port); a node may halt and announce its output — for edge
dominating set problems the output is a subset ``X(v)`` of its ports.

The anonymity of the model is enforced structurally: an
:class:`AnonymousAlgorithm` builds one :class:`NodeProgram` per node from
the node's degree alone.  Identified baselines (outside the paper's model)
use :class:`IdentifiedAlgorithm`, whose factory additionally receives a
unique integer identifier.
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping

from repro.exceptions import SimulationError

__all__ = [
    "NodeProgram",
    "AnonymousAlgorithm",
    "IdentifiedAlgorithm",
    "Message",
]

#: Messages are arbitrary (ideally small and immutable) Python values.
Message = object


class NodeProgram(abc.ABC):
    """The state machine executed by a single node.

    Subclasses implement :meth:`send` and :meth:`receive`.  A program halts
    by calling :meth:`halt` with its output port set; a halted program is
    no longer scheduled.

    Round structure (round numbers start at 0): the scheduler calls
    ``send(rnd)`` on every running node, routes the messages through the
    involution, then calls ``receive(rnd, inbox)`` on every running node.
    ``inbox`` maps port number to the message that arrived there; ports
    whose peer sent nothing are absent from the mapping.

    The inbox mapping is owned by the scheduler and only valid for the
    duration of the ``receive`` call (the compiled round loop reuses one
    preallocated mapping per node across rounds); copy it — e.g.
    ``dict(inbox)`` — before storing it on the program.
    """

    __slots__ = ("degree", "_halted", "_output")

    def __init__(self, degree: int) -> None:
        self.degree = degree
        self._halted = False
        self._output: frozenset[int] | None = None

    # -- protocol hooks -------------------------------------------------

    @abc.abstractmethod
    def send(self, rnd: int) -> Mapping[int, Message]:
        """Messages to emit this round, keyed by port number."""

    @abc.abstractmethod
    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        """Process this round's inbox; may call :meth:`halt`."""

    # -- halting ---------------------------------------------------------

    def halt(self, output: frozenset[int] | set[int] | None = None) -> None:
        """Stop and announce *output* (a set of port numbers, default ∅)."""
        ports = frozenset(output or ())
        bad = [i for i in ports if not 1 <= i <= self.degree]
        if bad:
            raise SimulationError(
                f"output ports {bad!r} outside 1..{self.degree}"
            )
        self._halted = True
        self._output = ports

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def output(self) -> frozenset[int] | None:
        """The announced port set, or None while still running."""
        return self._output


#: Factory building a node program from the node's degree only.  This
#: signature *is* the anonymity guarantee: the program cannot depend on
#: anything but the degree.
AnonymousAlgorithm = Callable[[int], NodeProgram]

#: Factory for the identified variant: (degree, unique_id) -> program.
IdentifiedAlgorithm = Callable[[int, int], NodeProgram]
