"""Decoding node outputs into edge sets (paper Section 2.2).

A node ``v`` announces a subset ``X(v)`` of its ports; the selected edge
set is ``D = {edge at (v, i) : i in X(v)}``.  The paper requires internal
consistency: if ``i ∈ X(v)`` and ``p(v, i) = (u, j)`` then ``j ∈ X(u)``.
:func:`decode_edge_set` enforces this and returns the edges.
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import InconsistentOutputError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["check_consistency", "decode_edge_set", "edge_set_to_outputs"]


def check_consistency(
    graph: PortNumberedGraph,
    outputs: Mapping[Node, frozenset[int]],
) -> None:
    """Raise :class:`InconsistentOutputError` on any §2.2 violation."""
    missing = [v for v in graph.nodes if v not in outputs]
    if missing:
        raise InconsistentOutputError(
            f"nodes without output: {missing[:5]!r}"
        )
    for v in graph.nodes:
        for i in outputs[v]:
            if not 1 <= i <= graph.degree(v):
                raise InconsistentOutputError(
                    f"node {v!r} output invalid port {i}"
                )
            u, j = graph.connection(v, i)
            if j not in outputs[u]:
                raise InconsistentOutputError(
                    f"inconsistent output: {i} ∈ X({v!r}) and "
                    f"p({v!r}, {i}) = ({u!r}, {j}) but {j} ∉ X({u!r})"
                )


def decode_edge_set(
    graph: PortNumberedGraph,
    outputs: Mapping[Node, frozenset[int]],
) -> frozenset[PortEdge]:
    """Convert per-node port sets into the selected edge set.

    Consistency is checked first; the result contains each selected edge
    exactly once.
    """
    check_consistency(graph, outputs)
    edges: set[PortEdge] = set()
    for v in graph.nodes:
        for i in outputs[v]:
            edges.add(graph.edge_at(v, i))
    return frozenset(edges)


def edge_set_to_outputs(
    graph: PortNumberedGraph,
    edges: frozenset[PortEdge] | set[PortEdge],
) -> dict[Node, frozenset[int]]:
    """Inverse of :func:`decode_edge_set`: the port sets selecting *edges*."""
    ports = graph.induced_subgraph_ports(edges)
    return {v: frozenset(ports[v]) for v in graph.nodes}
