"""Synchronous message-passing runtime for the port-numbering model (§2.2)."""

from repro.runtime.algorithm import (
    AnonymousAlgorithm,
    IdentifiedAlgorithm,
    Message,
    NodeProgram,
)
from repro.runtime.batch import ABSENT, BatchProgram
from repro.runtime.outputs import (
    check_consistency,
    decode_edge_set,
    edge_set_to_outputs,
)
from repro.runtime.scheduler import (
    DEFAULT_MAX_ROUNDS,
    ENGINES,
    RunResult,
    engines_available,
    run_anonymous,
    run_identified,
    use_engine,
)
from repro.runtime.trace import ExecutionTrace, RoundTrace, SentMessage
from repro.runtime.vector import VectorProgram, vector_available

__all__ = [
    "NodeProgram",
    "AnonymousAlgorithm",
    "IdentifiedAlgorithm",
    "Message",
    "ABSENT",
    "BatchProgram",
    "VectorProgram",
    "vector_available",
    "engines_available",
    "RunResult",
    "run_anonymous",
    "run_identified",
    "use_engine",
    "ENGINES",
    "DEFAULT_MAX_ROUNDS",
    "check_consistency",
    "decode_edge_set",
    "edge_set_to_outputs",
    "ExecutionTrace",
    "RoundTrace",
    "SentMessage",
]
