"""The legacy dict-based scheduler, kept as an executable reference.

This is the original pure-Python round loop: per-round inbox dicts for
every running node, involution lookups through the graph's ``dict[Port,
Port]``, and per-node ``send``/``receive`` dispatch.  The compiled
scheduler (:mod:`repro.runtime.scheduler`) replaces it as the default
execution path; this module survives for two reasons:

* the **differential test suite** (``tests/test_runtime_compiled.py``)
  asserts the compiled paths are output-, round-, and trace-identical
  to this reference across the full algorithm × graph-family matrix;
* the **runtime benchmark** (``benchmarks/bench_runtime_core.py``)
  reports the legacy-vs-compiled speedup, the repo's core perf
  trajectory number.

Two deliberate deviations from the historical code, both invisible to
outputs, round counts, and message totals: sends are collected in the
fixed deterministic node order (the old code iterated a ``set``, so the
within-round trace order depended on hash layout), and sends to halted
nodes are recorded with ``SentMessage.dropped`` set (they were always
recorded; now they are labelled).
"""

from __future__ import annotations

from repro.exceptions import RoundLimitExceeded, SimulationError
from repro.obs.spans import current_recorder
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node
from repro.runtime.algorithm import NodeProgram
from repro.runtime.trace import ExecutionTrace, RoundTrace, SentMessage

__all__ = ["execute_legacy"]


def execute_legacy(
    graph: PortNumberedGraph,
    programs: dict[Node, NodeProgram],
    max_rounds: int,
    record_trace: bool,
    strict_delivery: bool = False,
):
    """The reference implementation of one synchronous execution."""
    from repro.runtime.scheduler import RunResult

    trace = ExecutionTrace() if record_trace else None
    running = {v for v, prog in programs.items() if not prog.halted}
    # The deterministic delivery order never changes; fix it once instead
    # of re-sorting the running set every round.
    node_order = sorted(programs, key=repr)
    rnd = 0
    rec = current_recorder()
    n_delivered = 0
    n_dropped = 0

    while running:
        if rnd >= max_rounds:
            raise RoundLimitExceeded(
                f"{len(running)} node(s) still running after "
                f"{max_rounds} rounds"
            )

        round_trace = RoundTrace(rnd) if record_trace else None

        # 1. collect sends from running nodes
        inboxes: dict[Node, dict[int, object]] = {v: {} for v in running}
        for v in (u for u in node_order if u in running):
            out = programs[v].send(rnd)
            degree = graph.degree(v)
            for port, payload in out.items():
                if not 1 <= port <= degree:
                    raise SimulationError(
                        f"node {v!r} sent on invalid port {port} "
                        f"(degree {degree})"
                    )
                u, j = graph.connection(v, port)
                # Messages to halted nodes are dropped (their programs no
                # longer receive); in the paper's algorithms all nodes halt
                # simultaneously so this never matters.  ``strict_delivery``
                # turns the silent drop into an error so other algorithms
                # surface the bug.
                dropped = u not in inboxes
                if not dropped:
                    inboxes[u][j] = payload
                elif strict_delivery:
                    raise SimulationError(
                        f"node {v!r} sent to halted node {u!r} in round "
                        f"{rnd} (strict_delivery is enabled)"
                    )
                else:
                    n_dropped += 1
                if round_trace is not None:
                    round_trace.messages.append(
                        SentMessage((v, port), (u, j), payload, dropped)
                    )

        if rec is not None:
            n_delivered += sum(len(box) for box in inboxes.values())

        # 2. deliver and let nodes step / halt
        newly_halted: list[Node] = []
        for v in (u for u in node_order if u in running):
            programs[v].receive(rnd, inboxes[v])
            if programs[v].halted:
                newly_halted.append(v)
        for v in newly_halted:
            running.discard(v)
            if round_trace is not None:
                round_trace.halted_nodes.append(v)

        if trace is not None and round_trace is not None:
            trace.rounds.append(round_trace)
        rnd += 1

    outputs: dict[Node, frozenset[int]] = {}
    for v, prog in programs.items():
        assert prog.output is not None  # halted implies output set
        outputs[v] = prog.output
    if rec is not None:
        from repro.runtime.scheduler import _record_run

        _record_run(rec, rnd, n_delivered, n_dropped)
    return RunResult(graph=graph, outputs=outputs, rounds=rnd, trace=trace)
