"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphValidationError",
    "InvolutionError",
    "PortNumberingError",
    "NotSimpleGraphError",
    "NotRegularGraphError",
    "CoveringMapError",
    "QuotientError",
    "FactorizationError",
    "SimulationError",
    "RoundLimitExceeded",
    "InconsistentOutputError",
    "AlgorithmContractError",
    "CertificateError",
    "ConstructionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphValidationError(ReproError):
    """A port-numbered graph definition violates the model of Section 2.1."""


class InvolutionError(GraphValidationError):
    """The connection map ``p`` is not an involution on the port set."""


class PortNumberingError(GraphValidationError):
    """A node's ports are not exactly ``1, 2, ..., deg(v)``."""


class NotSimpleGraphError(ReproError):
    """An operation that requires a simple graph received a multigraph."""


class NotRegularGraphError(ReproError):
    """An operation that requires a d-regular graph received something else."""


class CoveringMapError(ReproError):
    """A claimed covering map violates the conditions of Section 2.3."""


class QuotientError(ReproError):
    """A node partition does not induce a well-defined quotient graph."""


class FactorizationError(ReproError):
    """A graph cannot be factorised as requested (e.g. odd degrees)."""


class SimulationError(ReproError):
    """The synchronous simulator detected a protocol violation."""


class RoundLimitExceeded(SimulationError):
    """The simulated algorithm did not halt within the allowed rounds."""


class InconsistentOutputError(SimulationError):
    """Node outputs are not internally consistent per Section 2.2.

    If ``i`` is in ``X(v)`` and ``p(v, i) = (u, j)`` then ``j`` must be in
    ``X(u)``; this error signals that the condition failed.
    """


class AlgorithmContractError(ReproError):
    """An algorithm was run outside its documented preconditions."""


class CertificateError(ReproError):
    """A bound certificate failed its exact-arithmetic verification."""


class ConstructionError(ReproError):
    """A lower-bound construction received unsupported parameters."""
