"""Experiment E17: message complexity of the paper's algorithms.

The paper's cost model counts rounds; practitioners also ask how many
messages cross the network.  This experiment measures total traffic as
a function of the degree parameter and the graph size, with structural
expectations pinned by the tests:

* PortOne sends exactly one message per port: total = sum of degrees
  = 2|E|.
* The Theorem 4/5 setup rounds broadcast on every port; subsequent pair
  steps touch only the matched ports, so the per-round traffic drops
  sharply after round 1 — locality in the traffic dimension.
* Total traffic grows linearly in n for fixed degree (each node's
  traffic depends only on its radius-O(Δ²) neighbourhood).

Each (algorithm, d, n) cell is one engine work unit with the
``messages`` measure, so the sweep shards across workers and is served
incrementally from the content-addressed result cache — and any
registered algorithm (randomised ones included) can be profiled by
name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api import run_sweep
from repro.analysis.report import format_table
from repro.engine.cache import ResultCache
from repro.engine.spec import GraphSpec, JobSpec

__all__ = ["MessageRow", "message_complexity_sweep", "format_messages"]

#: The default comparison set: the paper's three algorithms.
DEFAULT_ALGORITHMS = ("port_one", "regular_odd", "bounded_degree")


@dataclass(frozen=True)
class MessageRow:
    algorithm: str
    d: int
    n: int
    rounds: int
    total_messages: int
    max_round_messages: int

    @property
    def messages_per_node(self) -> float:
        return self.total_messages / self.n


def message_complexity_sweep(
    odd_degrees: Sequence[int] = (3, 5),
    sizes: Sequence[int] = (16, 32, 64),
    seed: int = 0,
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    workers: int = 1,
    cache: ResultCache | None = None,
    backend: str | None = None,
) -> list[MessageRow]:
    """Measure traffic for *algorithms* across d and n (engine-routed).

    ``bounded_degree`` runs with the tight promise Δ = d, matching the
    historical harness; every other algorithm takes no parameters.
    """
    units: list[JobSpec] = []
    meta: list[tuple[str, int, int]] = []
    for d in odd_degrees:
        for n in sizes:
            if n <= d or (n * d) % 2:
                continue
            graph = GraphSpec.make("regular", seed=seed, d=d, n=n)
            for name in algorithms:
                params = (("delta", d),) if name == "bounded_degree" else ()
                units.append(
                    JobSpec(
                        algorithm=name,
                        graph=graph,
                        algorithm_params=params,
                        measure="messages",
                        label=f"regular d={d} n={n}",
                    )
                )
                meta.append((name, d, n))

    report = run_sweep(units, workers=workers, cache=cache, backend=backend)
    return [
        MessageRow(
            algorithm=name,
            d=d,
            n=n,
            rounds=record.rounds,
            total_messages=record.messages or 0,
            max_round_messages=int(record.extra["max_round_messages"]),
        )
        for record, (name, d, n) in zip(report.records, meta)
    ]


def format_messages(rows: Sequence[MessageRow]) -> str:
    return format_table(
        ["algorithm", "d", "n", "rounds", "total msgs", "peak/round",
         "msgs/node"],
        [
            (
                r.algorithm,
                r.d,
                r.n,
                r.rounds,
                r.total_messages,
                r.max_round_messages,
                f"{r.messages_per_node:.1f}",
            )
            for r in rows
        ],
        title="E17 — message complexity",
    )
