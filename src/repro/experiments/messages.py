"""Experiment E17: message complexity of the three algorithms.

The paper's cost model counts rounds; practitioners also ask how many
messages cross the network.  This experiment measures total traffic as
a function of the degree parameter and the graph size, with the
structural expectations pinned as checks:

* PortOne sends exactly one message per port: total = sum of degrees
  = 2|E|.
* The Theorem 4/5 setup rounds broadcast on every port (2 · 2|E|
  messages); subsequent pair steps touch only the matched ports, so the
  per-round traffic drops sharply after round 1 — locality in the
  traffic dimension.
* Total traffic grows linearly in n for fixed degree (each node's
  traffic depends only on its radius-O(Δ²) neighbourhood).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algorithms.bounded_degree import BoundedDegreeEDS
from repro.algorithms.port_one import PortOneEDS
from repro.algorithms.regular_odd import RegularOddEDS
from repro.analysis.messages import profile_messages
from repro.analysis.report import format_table
from repro.generators.regular import random_regular

__all__ = ["MessageRow", "message_complexity_sweep", "format_messages"]


@dataclass(frozen=True)
class MessageRow:
    algorithm: str
    d: int
    n: int
    rounds: int
    total_messages: int
    max_round_messages: int

    @property
    def messages_per_node(self) -> float:
        return self.total_messages / self.n


def message_complexity_sweep(
    odd_degrees: Sequence[int] = (3, 5),
    sizes: Sequence[int] = (16, 32, 64),
    seed: int = 0,
) -> list[MessageRow]:
    """Measure traffic for all three algorithms across d and n."""
    rows: list[MessageRow] = []
    for d in odd_degrees:
        for n in sizes:
            if n <= d or (n * d) % 2:
                continue
            graph = random_regular(d, n, seed=seed)
            sum_degrees = 2 * graph.num_edges

            profile = profile_messages(graph, PortOneEDS)
            assert profile.total_messages == sum_degrees
            rows.append(
                MessageRow("port_one", d, n, profile.rounds,
                           profile.total_messages,
                           profile.max_round_messages)
            )

            profile = profile_messages(graph, RegularOddEDS)
            assert profile.messages_per_round[0] == sum_degrees
            assert profile.messages_per_round[1] == sum_degrees
            rows.append(
                MessageRow("regular_odd", d, n, profile.rounds,
                           profile.total_messages,
                           profile.max_round_messages)
            )

            profile = profile_messages(graph, BoundedDegreeEDS(d))
            rows.append(
                MessageRow("bounded_degree", d, n, profile.rounds,
                           profile.total_messages,
                           profile.max_round_messages)
            )
    return rows


def format_messages(rows: Sequence[MessageRow]) -> str:
    return format_table(
        ["algorithm", "d", "n", "rounds", "total msgs", "peak/round",
         "msgs/node"],
        [
            (
                r.algorithm,
                r.d,
                r.n,
                r.rounds,
                r.total_messages,
                r.max_round_messages,
                f"{r.messages_per_node:.1f}",
            )
            for r in rows
        ],
        title="E17 — message complexity",
    )
