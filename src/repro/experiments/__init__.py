"""Experiment drivers reproducing the paper's Table 1 and Figures 1-9,
plus round-complexity, average-case, ablation, and related-work
comparison studies."""

from repro.experiments.ablation import (
    AblationRow,
    format_ablations,
    run_ablations,
)
from repro.experiments.compare import (
    CompareRow,
    ComparisonOutcome,
    comparison_units,
    format_comparison,
    run_comparison,
)
from repro.experiments.figures import FigureArtifact, all_figures
from repro.experiments.messages import (
    MessageRow,
    format_messages,
    message_complexity_sweep,
)
from repro.experiments.sweeps import (
    RoundComplexityRow,
    average_case_sweep,
    format_average_case,
    format_round_complexity,
    round_complexity_sweep,
)
from repro.experiments.optimality import (
    OptimalityRow,
    format_optimality,
    recompute_lower_bounds,
)
from repro.experiments.table1 import Table1Row, format_table1, reproduce_table1

__all__ = [
    "CompareRow",
    "ComparisonOutcome",
    "comparison_units",
    "format_comparison",
    "run_comparison",
    "OptimalityRow",
    "recompute_lower_bounds",
    "format_optimality",
    "MessageRow",
    "message_complexity_sweep",
    "format_messages",
    "Table1Row",
    "reproduce_table1",
    "format_table1",
    "FigureArtifact",
    "all_figures",
    "RoundComplexityRow",
    "round_complexity_sweep",
    "format_round_complexity",
    "average_case_sweep",
    "format_average_case",
    "AblationRow",
    "run_ablations",
    "format_ablations",
]
