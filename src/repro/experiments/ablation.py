"""Experiment E13: ablations of the design choices the paper motivates.

Three ablations quantify why the algorithms are shaped the way they are:

* **Theorem 4 without phase II** — phase I alone already yields a feasible
  edge dominating set (an edge cover), but keeping redundant edges
  inflates the solution; phase II's pruning is what brings the ratio down
  to 4 - 6/(d+1).
* **PortOne on odd-regular inputs** — the O(1) algorithm is feasible on
  odd degrees too, but only Theorem 4's machinery reaches the tight odd
  bound; measured on the Theorem 2 construction.
* **Inflated Δ for A(Δ)** — running A(Δ + 2) on a max-degree-Δ graph is
  correct but pays more rounds and a weaker guarantee; measures the cost
  of a loose degree promise.

Every measured configuration is one engine work unit; the ablation rows
are assembled from the executed (and cacheable) records.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.analysis.report import format_table
from repro.engine.cache import ResultCache
from repro.api import run_sweep
from repro.engine.records import ResultRecord
from repro.engine.spec import GraphSpec, JobSpec

__all__ = ["AblationRow", "run_ablations", "format_ablations"]


@dataclass(frozen=True)
class AblationRow:
    ablation: str
    configuration: str
    solution_size: int
    baseline_size: int
    note: str

    @property
    def overhead(self) -> Fraction:
        if self.baseline_size == 0:
            return Fraction(1)
        return Fraction(self.solution_size, self.baseline_size)


def _regular_instance_size(d: int) -> int:
    n = 4 * d + 2
    return n if n * d % 2 == 0 else n + 1


def _forced_ratio(record: ResultRecord) -> Fraction:
    return Fraction(
        record.extra["forced_ratio_num"], record.extra["forced_ratio_den"]
    )


def run_ablations(
    odd_degrees: Sequence[int] = (3, 5),
    deltas: Sequence[int] = (3, 4),
    seed: int = 7,
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    backend: str | None = None,
) -> list[AblationRow]:
    """Run all three ablations and return their rows.

    Each ablation row is planned as (work units, row builder) so the
    pairing survives edits to any one ablation — the same pattern as
    the Table 1 driver.
    """
    units: list[JobSpec] = []
    plans: list[tuple[int, Callable[..., AblationRow]]] = []

    def add(builder: Callable[..., AblationRow], *row_units: JobSpec) -> None:
        units.extend(row_units)
        plans.append((len(row_units), builder))

    # Theorem 4 without phase II: one phase-split unit per degree.
    for d in odd_degrees:
        def phase2_row(record: ResultRecord, d: int = d) -> AblationRow:
            return AblationRow(
                ablation="theorem4-without-phase2",
                configuration=f"d={d}, n={record.num_nodes}",
                solution_size=record.solution_size,
                baseline_size=record.extra["final_size"],
                note="phase I edge cover vs. full algorithm",
            )

        add(
            phase2_row,
            JobSpec(
                algorithm="regular_odd",
                graph=GraphSpec.make(
                    "regular", seed=seed, d=d, n=_regular_instance_size(d)
                ),
                measure="phase_split",
            ),
        )
    # PortOne on odd-regular: both algorithms vs. the Theorem 2 instance.
    for d in odd_degrees:
        def port_one_row(
            port_one: ResultRecord, theorem4: ResultRecord, d: int = d
        ) -> AblationRow:
            return AblationRow(
                ablation="port-one-on-odd-regular",
                configuration=f"d={d} (Theorem 2 instance)",
                solution_size=port_one.solution_size,
                baseline_size=theorem4.solution_size,
                note=(
                    f"ratios {port_one.ratio} vs {theorem4.ratio} "
                    f"(bound {_forced_ratio(port_one)})"
                ),
            )

        instance = GraphSpec.make("lower_bound_odd", d=d)
        add(
            port_one_row,
            JobSpec(algorithm="port_one", graph=instance, measure="adversary"),
            JobSpec(
                algorithm="regular_odd", graph=instance, measure="adversary"
            ),
        )
    # Inflated Δ promise: tight vs. loose promise on the same graph.
    for delta in deltas:
        def inflated_row(
            tight: ResultRecord, loose: ResultRecord, delta: int = delta
        ) -> AblationRow:
            return AblationRow(
                ablation="inflated-delta-promise",
                configuration=f"graph Δ={delta}, promise Δ+2",
                solution_size=loose.solution_size,
                baseline_size=tight.solution_size,
                note=(
                    f"rounds {loose.rounds} vs {tight.rounds} "
                    "(quadratic round cost of a loose promise)"
                ),
            )

        graph = GraphSpec.make(
            "regular", seed=seed, d=delta, n=_regular_instance_size(delta)
        )
        add(
            inflated_row,
            *(
                JobSpec(
                    algorithm="bounded_degree",
                    algorithm_params=(("delta", promise),),
                    graph=graph,
                    measure="quality",
                    optimum="none",
                )
                for promise in (delta, delta + 2)
            ),
        )

    records = run_sweep(
        units, workers=workers, cache=cache, backend=backend
    ).records
    rows: list[AblationRow] = []
    cursor = 0
    for arity, builder in plans:
        rows.append(builder(*records[cursor:cursor + arity]))
        cursor += arity
    return rows


def format_ablations(rows: Sequence[AblationRow]) -> str:
    return format_table(
        ["ablation", "configuration", "|D|", "baseline", "x", "note"],
        [
            (
                r.ablation,
                r.configuration,
                r.solution_size,
                r.baseline_size,
                f"{float(r.overhead):.3f}",
                r.note,
            )
            for r in rows
        ],
        title="E13 — ablations",
    )
