"""Experiment E13: ablations of the design choices the paper motivates.

Three ablations quantify why the algorithms are shaped the way they are:

* **Theorem 4 without phase II** — phase I alone already yields a feasible
  edge dominating set (an edge cover), but keeping redundant edges
  inflates the solution; phase II's pruning is what brings the ratio down
  to 4 - 6/(d+1).
* **PortOne on odd-regular inputs** — the O(1) algorithm is feasible on
  odd degrees too, but only Theorem 4's machinery reaches the tight odd
  bound; measured on the Theorem 2 construction.
* **Inflated Δ for A(Δ)** — running A(Δ + 2) on a max-degree-Δ graph is
  correct but pays more rounds and a weaker guarantee; measures the cost
  of a loose degree promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.algorithms.bounded_degree import BoundedDegreeEDS
from repro.algorithms.port_one import PortOneEDS
from repro.algorithms.regular_odd import RegularOddEDS
from repro.analysis.reference import regular_odd_reference
from repro.analysis.report import format_table
from repro.eds.properties import is_edge_dominating_set
from repro.generators.regular import random_regular
from repro.lowerbounds.adversary import run_adversary
from repro.lowerbounds.odd import build_odd_lower_bound
from repro.runtime.scheduler import run_anonymous

__all__ = ["AblationRow", "run_ablations", "format_ablations"]


@dataclass(frozen=True)
class AblationRow:
    ablation: str
    configuration: str
    solution_size: int
    baseline_size: int
    note: str

    @property
    def overhead(self) -> Fraction:
        if self.baseline_size == 0:
            return Fraction(1)
        return Fraction(self.solution_size, self.baseline_size)


def _phase2_ablation(
    odd_degrees: Sequence[int], seed: int
) -> list[AblationRow]:
    rows = []
    for d in odd_degrees:
        n = 4 * d + 2 if (4 * d + 2) * d % 2 == 0 else 4 * d + 3
        graph = random_regular(d, n, seed=seed)
        after_phase1, final = regular_odd_reference(graph)
        assert is_edge_dominating_set(graph, after_phase1)
        rows.append(
            AblationRow(
                ablation="theorem4-without-phase2",
                configuration=f"d={d}, n={n}",
                solution_size=len(after_phase1),
                baseline_size=len(final),
                note="phase I edge cover vs. full algorithm",
            )
        )
    return rows


def _port_one_on_odd(odd_degrees: Sequence[int]) -> list[AblationRow]:
    rows = []
    for d in odd_degrees:
        inst = build_odd_lower_bound(d)
        port_one = run_adversary(inst, PortOneEDS)
        theorem4 = run_adversary(inst, RegularOddEDS)
        rows.append(
            AblationRow(
                ablation="port-one-on-odd-regular",
                configuration=f"d={d} (Theorem 2 instance)",
                solution_size=port_one.solution_size,
                baseline_size=theorem4.solution_size,
                note=(
                    f"ratios {port_one.ratio} vs {theorem4.ratio} "
                    f"(bound {inst.forced_ratio})"
                ),
            )
        )
    return rows


def _inflated_delta(
    deltas: Sequence[int], seed: int
) -> list[AblationRow]:
    rows = []
    for delta in deltas:
        n = 4 * delta + 2 if (4 * delta + 2) * delta % 2 == 0 else 4 * delta + 3
        graph = random_regular(delta, n, seed=seed)
        tight = run_anonymous(graph, BoundedDegreeEDS(delta))
        loose = run_anonymous(graph, BoundedDegreeEDS(delta + 2))
        rows.append(
            AblationRow(
                ablation="inflated-delta-promise",
                configuration=f"graph Δ={delta}, promise Δ+2",
                solution_size=len(loose.edge_set()),
                baseline_size=len(tight.edge_set()),
                note=(
                    f"rounds {loose.rounds} vs {tight.rounds} "
                    "(quadratic round cost of a loose promise)"
                ),
            )
        )
    return rows


def run_ablations(
    odd_degrees: Sequence[int] = (3, 5),
    deltas: Sequence[int] = (3, 4),
    seed: int = 7,
) -> list[AblationRow]:
    """Run all three ablations and return their rows."""
    rows: list[AblationRow] = []
    rows.extend(_phase2_ablation(odd_degrees, seed))
    rows.extend(_port_one_on_odd(odd_degrees))
    rows.extend(_inflated_delta(deltas, seed))
    return rows


def format_ablations(rows: Sequence[AblationRow]) -> str:
    return format_table(
        ["ablation", "configuration", "|D|", "baseline", "x", "note"],
        [
            (
                r.ablation,
                r.configuration,
                r.solution_size,
                r.baseline_size,
                f"{float(r.overhead):.3f}",
                r.note,
            )
            for r in rows
        ],
        title="E13 — ablations",
    )
