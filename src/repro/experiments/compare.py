"""Experiment E18: paper algorithms vs related-work baselines.

``repro-eds compare`` answers the question the paper's tables leave
open: how do Suomela's anonymous constant-time algorithms stack up
against the other distributed approaches on the *same* instances?  The
contenders come from :mod:`repro.baselines` — span-greedy MDS on the
line graph, LP rounding, the forest-decomposition adaptation, and the
sequential exact optimum — but nothing here is hard-wired to that list:
any registered algorithm name can join the grid, including ones a
third-party package registered through ``repro.plugins`` entry points.

Every (family, degree, size, seed, algorithm) cell is one engine work
unit with the ``comparison`` measure, which reports the exact-fraction
ratio, the round count, and the traced message count in a single
record.  The grid runs over at least two graph families (random
regular and bounded-degree by default) and keeps sizes under the exact
solver's edge limit, so ratios compare against the true optimum.  The
output table is a pure function of the result records — byte-identical
across execution backends, worker counts, and cached re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import format_table
from repro.api import CacheLike, run_sweep
from repro.engine.executor import ExecutionReport
from repro.engine.records import ResultRecord
from repro.engine.scenarios import get_scenario
from repro.engine.spec import JobSpec
from repro.registry import MODELS, get_algorithm

__all__ = [
    "COMPARE_ALGORITHMS",
    "COMPARE_FAMILIES",
    "CompareRow",
    "ComparisonOutcome",
    "comparison_units",
    "format_comparison",
    "run_comparison",
]

#: The default head-to-head field: the paper's three algorithms against
#: the four related-work baselines — the single source of truth is the
#: ``comparison`` scenario, so ``repro-eds sweep --scenario comparison``
#: can never drift from ``repro-eds compare``.
COMPARE_ALGORITHMS = get_scenario("comparison").algorithms

#: The grid families the comparison runs over (both SweepGrid-capable).
COMPARE_FAMILIES = ("regular", "bounded")


def comparison_units(
    families: Sequence[str] = COMPARE_FAMILIES,
    degrees: Sequence[int] = (3, 4, 5),
    sizes: Sequence[int] = (12, 16),
    seeds: int = 2,
    *,
    algorithms: Sequence[str] | None = None,
    base_seed: int = 0,
) -> list[JobSpec]:
    """Expand the head-to-head grid: one ``comparison`` unit per cell.

    Each family expands by overriding the ``comparison`` scenario grid
    — same grid name, so per-cell graph seeds (which derive from the
    grid name, family, and coordinates) are identical to a
    ``repro-eds sweep --scenario comparison`` run: the same cell
    anywhere in the harness shares the same cache entry.
    """
    base = get_scenario("comparison")
    units: list[JobSpec] = []
    for family in families:
        grid = base.override(
            family=family,
            degrees=tuple(degrees),
            sizes=tuple(sizes),
            seeds=seeds,
            base_seed=base_seed,
            # None means the scenario's contenders; an explicitly empty
            # sequence stays empty (and expands to zero units).
            **({} if algorithms is None
               else {"algorithms": tuple(algorithms)}),
        )
        units.extend(grid.expand())
    return units


@dataclass(frozen=True)
class CompareRow:
    """One (family, algorithm) aggregate of the comparison table.

    ``mean_ratio_lo``/``mean_ratio_hi`` bracket the mean ratio when any
    of the row's records measured a two-sided optimum (``dual_bound``
    units); they collapse onto ``mean_ratio`` for exact-optimum grids
    and the interval column is omitted from the rendered table.
    """

    family: str
    algorithm: str
    model: str
    units: int
    mean_ratio: float
    max_ratio: float
    mean_rounds: float
    mean_messages: float
    mean_ratio_lo: float = 0.0
    mean_ratio_hi: float = 0.0

    @property
    def has_interval(self) -> bool:
        return self.mean_ratio_lo != self.mean_ratio_hi


def comparison_rows(records: Sequence[ResultRecord]) -> list[CompareRow]:
    """Aggregate result records into per-(family, algorithm) rows.

    Row order is presentation order: family, then model in the
    catalogue's order (anonymous → identified → randomized → central —
    the paper's algorithms lead, the sequential reference anchors), then
    name — all deterministic.
    """
    grouped: dict[tuple[str, str], list[ResultRecord]] = {}
    for record in records:
        grouped.setdefault(
            (record.graph_family, record.algorithm), []
        ).append(record)
    rows = []
    for (family, algorithm), cells in grouped.items():
        bracketed = [r for r in cells if r.has_optimum or r.has_interval]
        ratios = [r.ratio for r in cells if r.has_optimum]
        count = len(bracketed)
        rows.append(CompareRow(
            family=family,
            algorithm=algorithm,
            model=get_algorithm(algorithm).model,
            units=len(cells),
            mean_ratio=float(sum(ratios) / len(ratios)) if ratios else 0.0,
            max_ratio=float(max(ratios)) if ratios else 0.0,
            mean_rounds=sum(r.rounds for r in cells) / len(cells),
            mean_messages=sum(r.messages or 0 for r in cells) / len(cells),
            mean_ratio_lo=(
                float(sum(r.ratio_lo for r in bracketed) / count)
                if count else 0.0
            ),
            mean_ratio_hi=(
                float(sum(r.ratio_hi for r in bracketed) / count)
                if count else 0.0
            ),
        ))
    rows.sort(key=lambda row: (
        row.family, MODELS.index(row.model), row.algorithm
    ))
    return rows


def format_comparison(rows: Sequence[CompareRow]) -> str:
    """Render the side-by-side comparison table.

    Exact-optimum grids render exactly as before; as soon as any row
    aggregates interval records (``dual_bound`` units), a
    ``mean ratio ∈`` column appears for every row.
    """
    intervals = any(row.has_interval for row in rows)
    headers = ["family", "algorithm", "model", "units",
               "mean ratio", "max ratio", "mean rounds", "mean msgs"]
    if intervals:
        headers.insert(6, "mean ratio ∈")
    body = []
    for row in rows:
        cells = [
            row.family,
            row.algorithm,
            row.model,
            row.units,
            f"{row.mean_ratio:.4f}",
            f"{row.max_ratio:.4f}",
            f"{row.mean_rounds:.1f}",
            f"{row.mean_messages:.1f}",
        ]
        if intervals:
            cells.insert(
                6, f"[{row.mean_ratio_lo:.4f}, {row.mean_ratio_hi:.4f}]"
            )
        body.append(tuple(cells))
    return format_table(
        headers, body,
        title="paper algorithms vs related-work baselines (E18)",
    )


@dataclass
class ComparisonOutcome:
    """Everything one comparison run produced."""

    units: list[JobSpec]
    execution: ExecutionReport
    rows: list[CompareRow]

    def format(self) -> str:
        return format_comparison(self.rows)


def run_comparison(
    families: Sequence[str] = COMPARE_FAMILIES,
    degrees: Sequence[int] = (3, 4, 5),
    sizes: Sequence[int] = (12, 16),
    seeds: int = 2,
    *,
    algorithms: Sequence[str] | None = None,
    base_seed: int = 0,
    units: "list[JobSpec] | None" = None,
    workers: int = 1,
    cache: CacheLike = None,
    backend: str | None = None,
    cache_max_size: int | str | None = None,
    progress=None,
    jsonl=None,
) -> ComparisonOutcome:
    """Run the head-to-head comparison through the engine.

    Pass pre-expanded *units* (from :func:`comparison_units`) to skip
    re-expansion — the CLI does this to size its progress meter without
    expanding the grid twice.
    """
    if units is None:
        units = comparison_units(
            families, degrees, sizes, seeds,
            algorithms=algorithms, base_seed=base_seed,
        )
    report = run_sweep(
        units, workers=workers, cache=cache, backend=backend,
        cache_max_size=cache_max_size, progress=progress, jsonl=jsonl,
    )
    return ComparisonOutcome(
        units=units,
        execution=report,
        rows=comparison_rows(report.records),
    )
