"""Experiment E1-E3: reproduce paper Table 1.

Table 1 states the *tight* approximation ratios of the port-numbering
model.  For each row we run the matching upper-bound algorithm on the
matching lower-bound construction; the measured ratio must equal the
table entry exactly — larger would contradict the upper-bound theorem,
smaller would contradict the lower-bound theorem.  The "Time" column is
reproduced by reporting the measured round counts (O(1) for Theorem 3,
O(d²)/O(Δ²) for Theorems 4-5, all independent of n).

Each confrontation is one independent work unit, so the whole table
executes through :mod:`repro.engine` — shardable across workers and
incremental under the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Sequence

from repro.analysis.report import format_fraction, format_table
from repro.eds.bounds import bounded_degree_ratio, regular_ratio
from repro.engine.cache import ResultCache
from repro.api import run_sweep
from repro.engine.records import ResultRecord
from repro.engine.spec import GraphSpec, JobSpec

__all__ = ["Table1Row", "reproduce_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One empirical row of Table 1."""

    family: str
    parameter: int
    paper_ratio: Fraction
    measured_ratio: Fraction
    tight: bool
    rounds: int
    time_bound: str
    nodes: int
    edges: int

    @property
    def ok(self) -> bool:
        return self.tight


_RowBuilder = Callable[[ResultRecord], Table1Row]


def _adversary_row(
    family: str, parameter: int, paper_ratio: Fraction, time_bound: str
) -> _RowBuilder:
    def build(record: ResultRecord) -> Table1Row:
        return Table1Row(
            family=family,
            parameter=parameter,
            paper_ratio=paper_ratio,
            measured_ratio=record.ratio,
            tight=bool(record.extra["tight"]),
            rounds=record.rounds,
            time_bound=time_bound,
            nodes=record.num_nodes,
            edges=record.num_edges,
        )

    return build


def _delta_one_row(record: ResultRecord) -> Table1Row:
    """Δ = 1: A(1) outputs every edge of a perfect matching — optimal."""
    return Table1Row(
        family="max degree Δ",
        parameter=1,
        paper_ratio=Fraction(1),
        measured_ratio=record.ratio,
        tight=record.ratio == 1,
        rounds=record.rounds,
        time_bound="O(1)",
        nodes=record.num_nodes,
        edges=record.num_edges,
    )


def _plan(
    even_degrees: Sequence[int],
    odd_degrees: Sequence[int],
    ks: Sequence[int],
) -> tuple[list[JobSpec], list[_RowBuilder]]:
    units: list[JobSpec] = []
    builders: list[_RowBuilder] = []

    def add(unit: JobSpec, builder: _RowBuilder) -> None:
        units.append(unit)
        builders.append(builder)

    for d in even_degrees:
        add(
            JobSpec(
                algorithm="port_one",
                graph=GraphSpec.make("lower_bound_even", d=d),
                measure="adversary",
            ),
            _adversary_row("d-regular (even)", d, regular_ratio(d), "O(1)"),
        )
    for d in odd_degrees:
        add(
            JobSpec(
                algorithm="regular_odd",
                graph=GraphSpec.make("lower_bound_odd", d=d),
                measure="adversary",
            ),
            _adversary_row("d-regular (odd)", d, regular_ratio(d), "O(d^2)"),
        )
    add(
        JobSpec(
            algorithm="bounded_degree",
            algorithm_params=(("delta", 1),),
            graph=GraphSpec.make("matching_union", pairs=6),
            measure="quality",
            optimum="exact",
        ),
        _delta_one_row,
    )
    # Δ ∈ {2k, 2k+1}: A(Δ) on the even construction with d = 2k.
    # Corollary 1 lower-bounds both Δ values by the Theorem 1 construction
    # for d = 2k; Theorem 5 matches it, so the measured ratio is exactly
    # 4 - 1/k for both parities.
    for k in ks:
        for delta in (2 * k, 2 * k + 1):
            add(
                JobSpec(
                    algorithm="bounded_degree",
                    algorithm_params=(("delta", delta),),
                    graph=GraphSpec.make("lower_bound_even", d=2 * k),
                    measure="adversary",
                ),
                _adversary_row(
                    "max degree Δ", delta, bounded_degree_ratio(delta),
                    "O(Δ^2)",
                ),
            )
    return units, builders


def reproduce_table1(
    even_degrees: Sequence[int] = (2, 4, 6, 8, 10, 12),
    odd_degrees: Sequence[int] = (1, 3, 5, 7, 9),
    ks: Sequence[int] = (1, 2, 3, 4, 5),
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    backend: str | None = None,
) -> list[Table1Row]:
    """Run the full Table 1 reproduction and return all rows."""
    units, builders = _plan(even_degrees, odd_degrees, ks)
    report = run_sweep(units, workers=workers, cache=cache, backend=backend)
    return [
        builder(record)
        for builder, record in zip(builders, report.records)
    ]


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render the reproduction in the layout of the paper's Table 1."""
    return format_table(
        [
            "graph family",
            "param",
            "paper ratio",
            "measured",
            "verdict",
            "rounds",
            "time",
            "n",
            "m",
        ],
        [
            (
                row.family,
                row.parameter,
                format_fraction(row.paper_ratio),
                format_fraction(row.measured_ratio),
                "TIGHT" if row.tight else "MISMATCH",
                row.rounds,
                row.time_bound,
                row.nodes,
                row.edges,
            )
            for row in rows
        ],
        title="Table 1 — approximability of edge dominating sets "
        "(paper vs. this reproduction)",
    )
