"""Experiment E1-E3: reproduce paper Table 1.

Table 1 states the *tight* approximation ratios of the port-numbering
model.  For each row we run the matching upper-bound algorithm on the
matching lower-bound construction; the measured ratio must equal the
table entry exactly — larger would contradict the upper-bound theorem,
smaller would contradict the lower-bound theorem.  The "Time" column is
reproduced by reporting the measured round counts (O(1) for Theorem 3,
O(d²)/O(Δ²) for Theorems 4-5, all independent of n).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.algorithms.bounded_degree import BoundedDegreeEDS
from repro.algorithms.port_one import PortOneEDS
from repro.algorithms.regular_odd import RegularOddEDS
from repro.analysis.report import format_fraction, format_table
from repro.eds.bounds import bounded_degree_ratio, regular_ratio
from repro.eds.exact import minimum_eds_size
from repro.generators.special import matching_union
from repro.lowerbounds.adversary import run_adversary
from repro.lowerbounds.even import build_even_lower_bound
from repro.lowerbounds.odd import build_odd_lower_bound
from repro.runtime.scheduler import run_anonymous

__all__ = ["Table1Row", "reproduce_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One empirical row of Table 1."""

    family: str
    parameter: int
    paper_ratio: Fraction
    measured_ratio: Fraction
    tight: bool
    rounds: int
    time_bound: str
    nodes: int
    edges: int

    @property
    def ok(self) -> bool:
        return self.tight


def _even_rows(even_degrees: Sequence[int]) -> list[Table1Row]:
    rows = []
    for d in even_degrees:
        inst = build_even_lower_bound(d)
        report = run_adversary(inst, PortOneEDS)
        rows.append(
            Table1Row(
                family="d-regular (even)",
                parameter=d,
                paper_ratio=regular_ratio(d),
                measured_ratio=report.ratio,
                tight=report.is_tight,
                rounds=report.rounds,
                time_bound="O(1)",
                nodes=inst.graph.num_nodes,
                edges=inst.graph.num_edges,
            )
        )
    return rows


def _odd_rows(odd_degrees: Sequence[int]) -> list[Table1Row]:
    rows = []
    for d in odd_degrees:
        inst = build_odd_lower_bound(d)
        report = run_adversary(inst, RegularOddEDS)
        rows.append(
            Table1Row(
                family="d-regular (odd)",
                parameter=d,
                paper_ratio=regular_ratio(d),
                measured_ratio=report.ratio,
                tight=report.is_tight,
                rounds=report.rounds,
                time_bound="O(d^2)",
                nodes=inst.graph.num_nodes,
                edges=inst.graph.num_edges,
            )
        )
    return rows


def _delta_one_row() -> Table1Row:
    """Δ = 1: A(1) outputs every edge of a perfect matching — optimal."""
    graph = matching_union(6)
    result = run_anonymous(graph, BoundedDegreeEDS(1))
    measured = Fraction(len(result.edge_set()), minimum_eds_size(graph))
    return Table1Row(
        family="max degree Δ",
        parameter=1,
        paper_ratio=Fraction(1),
        measured_ratio=measured,
        tight=measured == 1,
        rounds=result.rounds,
        time_bound="O(1)",
        nodes=graph.num_nodes,
        edges=graph.num_edges,
    )


def _bounded_rows(ks: Sequence[int]) -> list[Table1Row]:
    """Δ ∈ {2k, 2k+1}: A(Δ) on the even construction with d = 2k.

    Corollary 1 lower-bounds both Δ values by the Theorem 1 construction
    for d = 2k; Theorem 5 matches it, so the measured ratio is exactly
    4 - 1/k for both parities.
    """
    rows = []
    for k in ks:
        inst = build_even_lower_bound(2 * k)
        for delta in (2 * k, 2 * k + 1):
            report = run_adversary(inst, BoundedDegreeEDS(delta))
            rows.append(
                Table1Row(
                    family="max degree Δ",
                    parameter=delta,
                    paper_ratio=bounded_degree_ratio(delta),
                    measured_ratio=report.ratio,
                    tight=report.is_tight,
                    rounds=report.rounds,
                    time_bound="O(Δ^2)",
                    nodes=inst.graph.num_nodes,
                    edges=inst.graph.num_edges,
                )
            )
    return rows


def reproduce_table1(
    even_degrees: Sequence[int] = (2, 4, 6, 8, 10, 12),
    odd_degrees: Sequence[int] = (1, 3, 5, 7, 9),
    ks: Sequence[int] = (1, 2, 3, 4, 5),
) -> list[Table1Row]:
    """Run the full Table 1 reproduction and return all rows."""
    rows: list[Table1Row] = []
    rows.extend(_even_rows(even_degrees))
    rows.extend(_odd_rows(odd_degrees))
    rows.append(_delta_one_row())
    rows.extend(_bounded_rows(ks))
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render the reproduction in the layout of the paper's Table 1."""
    return format_table(
        [
            "graph family",
            "param",
            "paper ratio",
            "measured",
            "verdict",
            "rounds",
            "time",
            "n",
            "m",
        ],
        [
            (
                row.family,
                row.parameter,
                format_fraction(row.paper_ratio),
                format_fraction(row.measured_ratio),
                "TIGHT" if row.tight else "MISMATCH",
                row.rounds,
                row.time_bound,
                row.nodes,
                row.edges,
            )
            for row in rows
        ],
        title="Table 1 — approximability of edge dominating sets "
        "(paper vs. this reproduction)",
    )
