"""Experiments E4 and E12: round-complexity and average-case sweeps.

E4 reproduces the Table 1 "Time" column: measured round counts are O(1)
for Theorem 3 and exactly quadratic functions of d/Δ for Theorems 4-5,
and independent of the number of nodes (the algorithms are *local*).

E12 measures average-case approximation quality on random regular and
random bounded-degree graphs: the worst-case-tight algorithms do far
better than their guarantees on typical inputs, and the identified-model
baseline shows what unique IDs buy.

Both sweeps expand into declarative work units and execute through
:mod:`repro.engine`, so they can be sharded across workers and served
incrementally from the content-addressed result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.algorithms.bounded_degree import BoundedDegreeEDS
from repro.algorithms.regular_odd import RegularOddEDS
from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentRow
from repro.engine.cache import ResultCache
from repro.api import run_sweep
from repro.engine.spec import GraphSpec, JobSpec

__all__ = [
    "RoundComplexityRow",
    "round_complexity_sweep",
    "format_round_complexity",
    "average_case_sweep",
    "format_average_case",
]


@dataclass(frozen=True)
class RoundComplexityRow:
    algorithm: str
    parameter: int
    nodes: int
    rounds: int
    predicted: int

    @property
    def matches_prediction(self) -> bool:
        return self.rounds == self.predicted


def round_complexity_sweep(
    odd_degrees: Sequence[int] = (1, 3, 5, 7),
    sizes: Sequence[int] = (16, 32, 64),
    seed: int = 0,
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    backend: str | None = None,
) -> list[RoundComplexityRow]:
    """Measure rounds vs. degree and vs. n for all three algorithms.

    Round-count predictions: Theorem 3 always takes 1 round; Theorem 4
    takes ``2 + 2d²``; Theorem 5 takes ``2Δ'² + 4Δ'`` (Δ' = Δ rounded up
    to odd).  Any deviation is a bug, so the rows carry the prediction.
    """
    units: list[JobSpec] = []
    meta: list[tuple[str, int, int, int]] = []
    for d in odd_degrees:
        for n in sizes:
            if n <= d or (n * d) % 2:
                continue
            graph = GraphSpec.make("regular", seed=seed, d=d, n=n)
            plan = (
                ("port_one", (), 1),
                ("regular_odd", (), RegularOddEDS.total_rounds(d)),
                (
                    "bounded_degree",
                    (("delta", d),),
                    BoundedDegreeEDS(d).total_rounds(),
                ),
            )
            for name, params, predicted in plan:
                units.append(
                    JobSpec(
                        algorithm=name,
                        graph=graph,
                        algorithm_params=params,
                        measure="quality",
                        optimum="none",
                    )
                )
                meta.append((name, d, n, predicted))

    report = run_sweep(units, workers=workers, cache=cache, backend=backend)
    return [
        RoundComplexityRow(name, d, n, record.rounds, predicted)
        for record, (name, d, n, predicted) in zip(report.records, meta)
    ]


def format_round_complexity(rows: Sequence[RoundComplexityRow]) -> str:
    return format_table(
        ["algorithm", "d/Δ", "n", "rounds", "predicted", "ok"],
        [
            (
                r.algorithm,
                r.parameter,
                r.nodes,
                r.rounds,
                r.predicted,
                "yes" if r.matches_prediction else "NO",
            )
            for r in rows
        ],
        title="E4 — measured round complexity (Table 1 'Time' column)",
    )


def average_case_sweep(
    *,
    regular_degrees: Sequence[int] = (3, 4, 5),
    regular_size: int = 12,
    bounded_deltas: Sequence[int] = (3, 4),
    bounded_size: int = 12,
    instances: int = 5,
    seed: int = 0,
    workers: int = 1,
    cache: ResultCache | None = None,
    backend: str | None = None,
) -> list[ExperimentRow]:
    """Average-case ratios on random graphs, all algorithms.

    Sizes are kept small enough for the exact optimum so the reported
    ratios are true ratios, not estimates.
    """
    units: list[JobSpec] = []

    for d in regular_degrees:
        for t in range(instances):
            n = regular_size if (regular_size * d) % 2 == 0 else regular_size + 1
            graph = GraphSpec.make("regular", seed=seed + t, d=d, n=n)
            label = f"regular d={d} #{t}"
            names = ["port_one"]
            if d % 2 == 1:
                names.append("regular_odd")
            names += ["bounded_degree", "ids_greedy", "central_greedy"]
            units.extend(
                JobSpec(algorithm=name, graph=graph, label=label)
                for name in names
            )

    for delta in bounded_deltas:
        for t in range(instances):
            graph = GraphSpec.make(
                "bounded", seed=seed + 100 + t, n=bounded_size,
                max_degree=delta,
            )
            label = f"bounded Δ={delta} #{t}"
            units.extend(
                JobSpec(algorithm=name, graph=graph, label=label)
                for name in ("bounded_degree", "ids_greedy", "central_greedy")
            )

    report = run_sweep(units, workers=workers, cache=cache, backend=backend)
    # Degenerate empty bounded draws carry no information; drop their
    # rows the way the sequential harness always has.
    return [
        record.to_experiment_row()
        for record in report.records
        if record.num_edges > 0
    ]


def format_average_case(rows: Sequence[ExperimentRow]) -> str:
    aggregated: dict[str, list[Fraction]] = {}
    for row in rows:
        aggregated.setdefault(row.algorithm, []).append(row.ratio)
    summary = [
        (
            name,
            len(ratios),
            f"{float(sum(ratios) / len(ratios)):.4f}",
            f"{float(max(ratios)):.4f}",
        )
        for name, ratios in sorted(aggregated.items())
    ]
    detail = format_table(
        ["algorithm", "graph", "n", "m", "|D|", "opt", "ratio", "rounds"],
        [
            (
                r.algorithm,
                r.graph_label,
                r.num_nodes,
                r.num_edges,
                r.solution_size,
                r.optimum,
                f"{r.ratio_float:.4f}",
                r.rounds,
            )
            for r in rows
        ],
        title="E12 — average-case ratios (exact optima)",
    )
    agg = format_table(
        ["algorithm", "runs", "mean ratio", "max ratio"],
        summary,
        title="E12 — summary",
    )
    return detail + "\n\n" + agg
