"""Experiments E4 and E12: round-complexity and average-case sweeps.

E4 reproduces the Table 1 "Time" column: measured round counts are O(1)
for Theorem 3 and exactly quadratic functions of d/Δ for Theorems 4-5,
and independent of the number of nodes (the algorithms are *local*).

E12 measures average-case approximation quality on random regular and
random bounded-degree graphs: the worst-case-tight algorithms do far
better than their guarantees on typical inputs, and the identified-model
baseline shows what unique IDs buy.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.algorithms.bounded_degree import BoundedDegreeEDS
from repro.algorithms.port_one import PortOneEDS
from repro.algorithms.regular_odd import RegularOddEDS
from repro.analysis.report import format_table
from repro.analysis.runner import ExperimentRow, run_on, standard_algorithms
from repro.generators.bounded import random_bounded_degree
from repro.generators.regular import random_regular
from repro.runtime.scheduler import run_anonymous

__all__ = [
    "RoundComplexityRow",
    "round_complexity_sweep",
    "format_round_complexity",
    "average_case_sweep",
    "format_average_case",
]


@dataclass(frozen=True)
class RoundComplexityRow:
    algorithm: str
    parameter: int
    nodes: int
    rounds: int
    predicted: int

    @property
    def matches_prediction(self) -> bool:
        return self.rounds == self.predicted


def round_complexity_sweep(
    odd_degrees: Sequence[int] = (1, 3, 5, 7),
    sizes: Sequence[int] = (16, 32, 64),
    seed: int = 0,
) -> list[RoundComplexityRow]:
    """Measure rounds vs. degree and vs. n for all three algorithms.

    Round-count predictions: Theorem 3 always takes 1 round; Theorem 4
    takes ``2 + 2d²``; Theorem 5 takes ``2Δ'² + 4Δ'`` (Δ' = Δ rounded up
    to odd).  Any deviation is a bug, so the rows carry the prediction.
    """
    rows: list[RoundComplexityRow] = []
    for d in odd_degrees:
        for n in sizes:
            if n <= d or (n * d) % 2:
                continue
            graph = random_regular(d, n, seed=seed)
            result = run_anonymous(graph, PortOneEDS)
            rows.append(
                RoundComplexityRow("port_one", d, n, result.rounds, 1)
            )
            result = run_anonymous(graph, RegularOddEDS)
            rows.append(
                RoundComplexityRow(
                    "regular_odd", d, n, result.rounds,
                    RegularOddEDS.total_rounds(d),
                )
            )
            factory = BoundedDegreeEDS(d)
            result = run_anonymous(graph, factory)
            rows.append(
                RoundComplexityRow(
                    "bounded_degree", d, n, result.rounds,
                    factory.total_rounds(),
                )
            )
    return rows


def format_round_complexity(rows: Sequence[RoundComplexityRow]) -> str:
    return format_table(
        ["algorithm", "d/Δ", "n", "rounds", "predicted", "ok"],
        [
            (
                r.algorithm,
                r.parameter,
                r.nodes,
                r.rounds,
                r.predicted,
                "yes" if r.matches_prediction else "NO",
            )
            for r in rows
        ],
        title="E4 — measured round complexity (Table 1 'Time' column)",
    )


def average_case_sweep(
    *,
    regular_degrees: Sequence[int] = (3, 4, 5),
    regular_size: int = 12,
    bounded_deltas: Sequence[int] = (3, 4),
    bounded_size: int = 12,
    instances: int = 5,
    seed: int = 0,
) -> list[ExperimentRow]:
    """Average-case ratios on random graphs, all algorithms.

    Sizes are kept small enough for the exact optimum so the reported
    ratios are true ratios, not estimates.
    """
    algorithms = standard_algorithms()
    rows: list[ExperimentRow] = []

    for d in regular_degrees:
        for t in range(instances):
            n = regular_size if (regular_size * d) % 2 == 0 else regular_size + 1
            graph = random_regular(d, n, seed=seed + t)
            label = f"regular d={d} #{t}"
            rows.append(run_on(algorithms["port_one"], graph, graph_label=label))
            if d % 2 == 1:
                rows.append(
                    run_on(algorithms["regular_odd"], graph, graph_label=label)
                )
            rows.append(
                run_on(algorithms["bounded_degree"], graph, graph_label=label)
            )
            rows.append(
                run_on(algorithms["ids_greedy"], graph, graph_label=label)
            )
            rows.append(
                run_on(algorithms["central_greedy"], graph, graph_label=label)
            )

    for delta in bounded_deltas:
        for t in range(instances):
            graph = random_bounded_degree(
                bounded_size, delta, seed=seed + 100 + t
            )
            if graph.num_edges == 0:
                continue
            label = f"bounded Δ={delta} #{t}"
            rows.append(
                run_on(algorithms["bounded_degree"], graph, graph_label=label)
            )
            rows.append(
                run_on(algorithms["ids_greedy"], graph, graph_label=label)
            )
            rows.append(
                run_on(algorithms["central_greedy"], graph, graph_label=label)
            )
    return rows


def format_average_case(rows: Sequence[ExperimentRow]) -> str:
    aggregated: dict[str, list[Fraction]] = {}
    for row in rows:
        aggregated.setdefault(row.algorithm, []).append(row.ratio)
    summary = [
        (
            name,
            len(ratios),
            f"{float(sum(ratios) / len(ratios)):.4f}",
            f"{float(max(ratios)):.4f}",
        )
        for name, ratios in sorted(aggregated.items())
    ]
    detail = format_table(
        ["algorithm", "graph", "n", "m", "|D|", "opt", "ratio", "rounds"],
        [
            (
                r.algorithm,
                r.graph_label,
                r.num_nodes,
                r.num_edges,
                r.solution_size,
                r.optimum,
                f"{r.ratio_float:.4f}",
                r.rounds,
            )
            for r in rows
        ],
        title="E12 — average-case ratios (exact optima)",
    )
    agg = format_table(
        ["algorithm", "runs", "mean ratio", "max ratio"],
        summary,
        title="E12 — summary",
    )
    return detail + "\n\n" + agg
