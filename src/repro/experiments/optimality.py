"""Experiment E16: recompute the Table 1 lower bounds from first
principles, independently of any specific algorithm.

Degree refinement (:mod:`repro.portgraph.refinement`) collapses each
adversarial instance to its minimal quotient and partitions its edges
into orbits; *any* deterministic anonymous algorithm outputs a union of
orbits.  Minimising an edge dominating set over orbit unions therefore
gives the best solution any such algorithm — of any round complexity —
can produce.  Dividing by the true optimum must reproduce the Table 1
entry exactly, which this experiment verifies for both constructions.

This complements E1-E3: there the *specific* Theorem 3-5 algorithms land
on the bound; here the bound itself is recomputed without reference to
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.analysis.report import format_fraction, format_table
from repro.lowerbounds.even import build_even_lower_bound
from repro.lowerbounds.odd import build_odd_lower_bound
from repro.portgraph.refinement import (
    best_anonymous_eds_size,
    edge_orbits,
    minimal_quotient,
)

__all__ = ["OptimalityRow", "recompute_lower_bounds", "format_optimality"]


@dataclass(frozen=True)
class OptimalityRow:
    family: str
    d: int
    quotient_nodes: int
    orbits: int
    best_anonymous: int
    optimum: int
    recomputed_ratio: Fraction
    paper_ratio: Fraction

    @property
    def matches(self) -> bool:
        return self.recomputed_ratio == self.paper_ratio


def recompute_lower_bounds(
    even_degrees: Sequence[int] = (2, 4, 6, 8),
    odd_degrees: Sequence[int] = (1, 3, 5),
) -> list[OptimalityRow]:
    """Recompute every lower bound by exhaustive orbit search."""
    rows: list[OptimalityRow] = []
    for d in even_degrees:
        instance = build_even_lower_bound(d)
        quotient, _ = minimal_quotient(instance.graph)
        best = best_anonymous_eds_size(instance.graph)
        rows.append(
            OptimalityRow(
                family="regular-even",
                d=d,
                quotient_nodes=quotient.num_nodes,
                orbits=len(edge_orbits(instance.graph)),
                best_anonymous=best,
                optimum=instance.optimum_size,
                recomputed_ratio=Fraction(best, instance.optimum_size),
                paper_ratio=instance.forced_ratio,
            )
        )
    for d in odd_degrees:
        instance = build_odd_lower_bound(d)
        quotient, _ = minimal_quotient(instance.graph)
        best = best_anonymous_eds_size(instance.graph)
        rows.append(
            OptimalityRow(
                family="regular-odd",
                d=d,
                quotient_nodes=quotient.num_nodes,
                orbits=len(edge_orbits(instance.graph)),
                best_anonymous=best,
                optimum=instance.optimum_size,
                recomputed_ratio=Fraction(best, instance.optimum_size),
                paper_ratio=instance.forced_ratio,
            )
        )
    return rows


def format_optimality(rows: Sequence[OptimalityRow]) -> str:
    return format_table(
        [
            "family",
            "d",
            "quotient |V|",
            "edge orbits",
            "best anonymous |D|",
            "opt",
            "recomputed",
            "paper",
            "verdict",
        ],
        [
            (
                r.family,
                r.d,
                r.quotient_nodes,
                r.orbits,
                r.best_anonymous,
                r.optimum,
                format_fraction(r.recomputed_ratio),
                format_fraction(r.paper_ratio),
                "MATCH" if r.matches else "MISMATCH",
            )
            for r in rows
        ],
        title="E16 — Table 1 lower bounds recomputed by orbit search "
        "(algorithm-independent)",
    )
