"""Experiments E5-E11: the pure figure builders (Figures 1-9 as data).

The paper's figures are drawings; reproducing them means regenerating the
*objects they depict* and verifying every property the paper states about
them.  Each ``figureN()`` function returns a :class:`FigureArtifact` with
the constructed objects, a battery of checks (run eagerly), and a text
rendering for human inspection.

This module holds only the builders.  Execution lives in the engine:
:mod:`repro.engine.figures` registers the ``figure`` graph family and
one ``figure:N`` measure per figure, so ``repro-eds figure all`` runs
these builders as ordinary work units — parallel across figures and
served from the content-addressed result cache.

Fidelity notes
--------------
* Figures 1, 3 and 8 are drawings whose exact graphs/port numberings are
  not recoverable from the text; we build *representative* instances with
  exactly the documented properties (see each function's docstring and
  DESIGN.md §1.3).
* Figures 2, 4, 5, 6, 7 are fully specified by the text (the multigraph M
  of Fig. 2, and the Theorem 1/2 constructions); they are regenerated
  exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable

import networkx as nx

from repro.algorithms.bounded_degree import run_bounded_with_split
from repro.algorithms.port_one import PortOneEDS
from repro.analysis.costs import compute_cost_certificate
from repro.analysis.reference import regular_odd_reference
from repro.analysis.report import format_table
from repro.eds.exact import minimum_edge_dominating_set
from repro.eds.properties import is_edge_dominating_set
from repro.exceptions import ReproError
from repro.factorization.two_factor import two_factorise_nx
from repro.generators.special import component_h_nx
from repro.lowerbounds.even import build_even_lower_bound
from repro.lowerbounds.odd import build_odd_lower_bound, hub_quotient
from repro.matching.exact import minimum_maximal_matching
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.properties import (
    is_matching,
    is_maximal_matching,
    is_star_forest,
)
from repro.portgraph.builder import PortGraphBuilder
from repro.portgraph.convert import from_networkx
from repro.portgraph.covering import verify_covering_map
from repro.portgraph.labels import (
    all_matchings,
    distinguishable_neighbour,
    uniquely_labelled_edges,
)
from repro.portgraph.numbering import random_numbering
from repro.runtime.scheduler import run_anonymous

__all__ = [
    "FigureArtifact",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "all_figures",
]


@dataclass
class FigureArtifact:
    """A regenerated figure: objects, verified claims, text rendering."""

    figure_id: str
    description: str
    objects: dict = field(default_factory=dict)
    checks: list[str] = field(default_factory=list)
    rendering: str = ""

    def check(self, claim: str, holds: bool) -> None:
        if not holds:
            raise ReproError(f"{self.figure_id}: claim failed — {claim}")
        self.checks.append(claim)


def _edge_pairs(edges) -> str:
    pairs = sorted(
        "{" + ",".join(sorted(map(str, e.endpoints))) + "}" for e in edges
    )
    return " ".join(pairs)


def figure1() -> FigureArtifact:
    """Figure 1: EDS vs maximal matching vs the minima, on one graph.

    The figure's exact 10-node example is a drawing; we use the 2×4 grid
    (8 nodes, 10 edges) and regenerate the four depicted objects:
    (a) an EDS that is not a matching, (b) a maximal matching,
    (c) a minimum EDS, (d) a minimum maximal matching — verifying the
    paper's §1.1 claims: (b) is an EDS, |c| = |d|, and (d) is both.
    """
    art = FigureArtifact("figure-1", "edge dominating sets and matchings")
    graph = from_networkx(
        nx.convert_node_labels_to_integers(nx.grid_2d_graph(2, 4))
    )

    minimum = minimum_edge_dominating_set(graph)
    min_mm = minimum_maximal_matching(graph)
    maximal = greedy_maximal_matching(graph)
    # (a): an EDS that is not a matching — a minimum EDS plus an edge
    # adjacent to it.
    extra = next(
        e
        for e in graph.edges
        if e not in minimum and any(e.endpoints & m.endpoints for m in minimum)
    )
    non_matching_eds = frozenset(minimum | {extra})

    art.check("(a) is an EDS", is_edge_dominating_set(graph, non_matching_eds))
    art.check("(a) is not a matching", not is_matching(non_matching_eds))
    art.check("(b) maximal matching is an EDS",
              is_edge_dominating_set(graph, maximal))
    art.check("(c) minimum EDS is a maximal matching",
              is_maximal_matching(graph, minimum))
    art.check("(d) = (c): minimum maximal matching is a minimum EDS",
              len(min_mm) == len(minimum))

    art.objects = {
        "graph": graph,
        "eds": non_matching_eds,
        "maximal_matching": maximal,
        "minimum_eds": minimum,
        "minimum_maximal_matching": min_mm,
    }
    art.rendering = format_table(
        ["object", "size", "edges"],
        [
            ("(a) an EDS", len(non_matching_eds), _edge_pairs(non_matching_eds)),
            ("(b) a maximal matching", len(maximal), _edge_pairs(maximal)),
            ("(c) a minimum EDS", len(minimum), _edge_pairs(minimum)),
            ("(d) a minimum maximal matching", len(min_mm), _edge_pairs(min_mm)),
        ],
        title="Figure 1 — on the 2x4 grid",
    )
    return art


def figure2() -> FigureArtifact:
    """Figure 2: port-numbered graphs — a simple graph H, a multigraph M.

    M is fully specified in §2.1 and rebuilt exactly: nodes s (degree 3)
    and t (degree 4), p maps (s,1)↔(t,2), (s,2)↔(t,1), (s,3)↦(s,3)
    (a directed loop), (t,3)↔(t,4) (an undirected loop).  H is rebuilt as
    a simple graph realising the properties §5 states about the figure:
    a is the distinguishable neighbour of b, d of c, and a has no
    uniquely labelled edges.
    """
    art = FigureArtifact("figure-2", "port-numbered graph examples")

    m_builder = PortGraphBuilder()
    m_builder.add_node("s", 3)
    m_builder.add_node("t", 4)
    m_builder.connect("s", 1, "t", 2)
    m_builder.connect("s", 2, "t", 1)
    m_builder.connect_fixed_point("s", 3)
    m_builder.connect("t", 3, "t", 4)
    multigraph = m_builder.build()

    art.check("d_M(s) = 3", multigraph.degree("s") == 3)
    art.check("d_M(t) = 4", multigraph.degree("t") == 4)
    art.check("p_M(s,1) = (t,2)", multigraph.connection("s", 1) == ("t", 2))
    art.check("p_M(s,3) is a fixed point",
              multigraph.connection("s", 3) == ("s", 3))
    art.check("M is not simple", not multigraph.is_simple())

    h_builder = PortGraphBuilder()
    h_builder.add_nodes({"a": 2, "b": 3, "c": 3, "d": 2, "e": 2})
    h_builder.connect("a", 1, "b", 2)
    h_builder.connect("a", 2, "d", 1)
    h_builder.connect("b", 1, "c", 3)
    h_builder.connect("b", 3, "e", 1)
    h_builder.connect("c", 1, "d", 2)
    h_builder.connect("c", 2, "e", 2)
    simple_h = h_builder.build()

    art.check("H is simple", simple_h.is_simple())
    art.check("a is the distinguishable neighbour of b",
              distinguishable_neighbour(simple_h, "b") == "a")
    art.check("d is the distinguishable neighbour of c",
              distinguishable_neighbour(simple_h, "c") == "d")
    art.check("a has no uniquely labelled edges",
              uniquely_labelled_edges(simple_h, "a") == ())

    art.objects = {"H": simple_h, "M": multigraph}
    art.rendering = format_table(
        ["graph", "node", "degree", "connections p(v, i)"],
        [
            (
                name,
                v,
                g.degree(v),
                "  ".join(
                    f"{i}->{g.connection(v, i)}" for i in g.ports(v)
                ),
            )
            for name, g in (("H", simple_h), ("M", multigraph))
            for v in g.nodes
        ],
        title="Figure 2 — port-numbered graphs",
    )
    return art


def figure3() -> FigureArtifact:
    """Figure 3: a covering graph and the invariance of executions.

    The figure shows a simple graph C covering a two-node multigraph M.
    We rebuild a two-node multigraph with loops and parallel edges, take
    a 4-fold lift as C, verify the covering map, and demonstrate §2.3's
    consequence: running an algorithm on both graphs, every node of C
    outputs exactly what its image in M outputs.
    """
    art = FigureArtifact("figure-3", "covering graphs")

    builder = PortGraphBuilder()
    builder.add_node("grey", 4)
    builder.add_node("white", 4)
    builder.connect("grey", 1, "white", 2)
    builder.connect("grey", 2, "white", 1)
    builder.connect("grey", 3, "grey", 4)   # undirected loop
    builder.connect("white", 3, "white", 4)  # undirected loop
    base = builder.build()

    # A deterministic 4-fold lift using cyclic sheet shifts: loops lift
    # along s -> s+1 (no fixed points, hence no loops in C) and the two
    # parallel edges use shifts 0 and 1 (no parallel pairs in C).
    fold = 4
    lift_builder = PortGraphBuilder()
    for v in ("grey", "white"):
        for s in range(fold):
            lift_builder.add_node((v, s), 4)
    for s in range(fold):
        lift_builder.connect(("grey", s), 1, ("white", s), 2)
        lift_builder.connect(("grey", s), 2, ("white", (s + 1) % fold), 1)
        lift_builder.connect(("grey", s), 3, ("grey", (s + 1) % fold), 4)
        lift_builder.connect(("white", s), 3, ("white", (s + 1) % fold), 4)
    cover = lift_builder.build()
    f = {(v, s): v for v in ("grey", "white") for s in range(fold)}

    verify_covering_map(cover, base, f)
    art.check("C is a covering graph of M (verified map)", True)
    art.check("C is simple", cover.is_simple())

    base_run = run_anonymous(base, PortOneEDS)
    cover_run = run_anonymous(cover, PortOneEDS)
    art.check(
        "outputs lift: X_C(v) = X_M(f(v)) for every node",
        all(
            cover_run.outputs[v] == base_run.outputs[f[v]]
            for v in cover.nodes
        ),
    )

    art.objects = {"C": cover, "M": base, "covering_map": f}
    art.rendering = format_table(
        ["node of C", "f(node)", "output X(v)"],
        [
            (str(v), str(f[v]), sorted(cover_run.outputs[v]))
            for v in cover.nodes
        ],
        title="Figure 3 — covering graph C of M, with lifted outputs",
    )
    return art


def figure4() -> FigureArtifact:
    """Figure 4: the Theorem 1 graph for d = 6, its factors and quotient."""
    art = FigureArtifact("figure-4", "Theorem 1 construction, d = 6")
    inst = build_even_lower_bound(6)

    art.check("graph is 6-regular", inst.graph.regularity() == 6)
    art.check("|V| = 2d - 1 = 11", inst.graph.num_nodes == 11)
    art.check("optimal EDS S has d/2 = 3 edges", inst.optimum_size == 3)
    art.check("quotient M has a single node", inst.quotient.num_nodes == 1)
    art.check(
        "every label pair is {2i-1, 2i}",
        all(
            sorted((e.i, e.j))[1] == sorted((e.i, e.j))[0] + 1
            and sorted((e.i, e.j))[0] % 2 == 1
            for e in inst.graph.edges
        ),
    )

    factor_edges: dict[int, int] = {}
    for e in inst.graph.edges:
        factor = (min(e.i, e.j) + 1) // 2
        factor_edges[factor] = factor_edges.get(factor, 0) + 1
    art.check(
        "each 2-factor G(i) has |V| = 11 edges",
        all(count == 11 for count in factor_edges.values()),
    )

    art.objects = {"instance": inst, "factor_sizes": factor_edges}
    art.rendering = format_table(
        ["property", "value"],
        [
            ("nodes", inst.graph.num_nodes),
            ("edges", inst.graph.num_edges),
            ("optimal EDS S", _edge_pairs(inst.optimum)),
            ("2-factors", len(factor_edges)),
            ("forced ratio", str(inst.forced_ratio)),
        ],
        title="Figure 4 — Theorem 1 graph, d = 6",
    )
    return art


def figure5() -> FigureArtifact:
    """Figure 5: the component H(ℓ) for d = 5 (k = 2) and its port
    numbering via 2-factorisation."""
    art = FigureArtifact("figure-5", "component H(ℓ), d = 5")
    component = component_h_nx(2, label=1)

    degrees = {d for _, d in component.degree()}
    art.check("H(ℓ) is 2k-regular (k = 2)", degrees == {4})
    art.check("H(ℓ) has 4k + 1 = 9 nodes", component.number_of_nodes() == 9)
    factors = two_factorise_nx(component)
    art.check("H(ℓ) splits into k = 2 two-factors", len(factors) == 2)

    art.objects = {"component": component, "factors": factors}
    art.rendering = format_table(
        ["factor", "cycles (as node lists)"],
        [
            (idx, "; ".join("-".join(c) for c in factor.cycles()))
            for idx, factor in enumerate(factors, start=1)
        ],
        title="Figure 5 — H(ℓ) for d = 5 and its 2-factorisation",
    )
    return art


def figure6() -> FigureArtifact:
    """Figure 6: the full Theorem 2 graph for d = 5."""
    art = FigureArtifact("figure-6", "Theorem 2 construction, d = 5")
    inst = build_odd_lower_bound(5)

    art.check("graph is 5-regular", inst.graph.regularity() == 5)
    art.check(
        "node count d(4k+1) + d + 2k = 54",
        inst.graph.num_nodes == 5 * 9 + 5 + 4,
    )
    art.check("|D*| = (k+1)d = 15", inst.optimum_size == 15)
    art.check(
        "D* dominates every edge",
        is_edge_dominating_set(inst.graph, inst.optimum),
    )
    art.check("forced ratio is 4 - 6/(d+1) = 3",
              inst.forced_ratio == Fraction(3))

    art.objects = {"instance": inst}
    art.rendering = format_table(
        ["property", "value"],
        [
            ("nodes", inst.graph.num_nodes),
            ("edges", inst.graph.num_edges),
            ("|D*|", inst.optimum_size),
            ("components H(ℓ)", 5),
            ("hub nodes P ∪ Q", 5 + 4),
            ("forced ratio", str(inst.forced_ratio)),
        ],
        title="Figure 6 — Theorem 2 graph, d = 5",
    )
    return art


def figure7() -> FigureArtifact:
    """Figure 7: the quotient multigraph M for d = 5 and the covering."""
    art = FigureArtifact("figure-7", "Theorem 2 quotient, d = 5")
    inst = build_odd_lower_bound(5)
    quotient = hub_quotient(5)

    art.check("quotient has d + 1 = 6 nodes", quotient.num_nodes == 6)
    art.check("instance quotient equals the §4.3 multigraph",
              inst.quotient == quotient)
    verify_covering_map(inst.graph, quotient, inst.covering_map)
    art.check("G covers M (verified map)", True)
    fibre_sizes = {}
    for v, x in inst.covering_map.items():
        fibre_sizes[x] = fibre_sizes.get(x, 0) + 1
    art.check(
        "fibres: each x_ℓ has 2d-1 = 9 preimages, y has d + 2k = 9",
        all(size == 9 for size in fibre_sizes.values()),
    )

    art.objects = {"quotient": quotient, "fibre_sizes": fibre_sizes}
    art.rendering = format_table(
        ["node", "degree", "connections"],
        [
            (
                v,
                quotient.degree(v),
                "  ".join(
                    f"{i}->{quotient.connection(v, i)}"
                    for i in quotient.ports(v)
                ),
            )
            for v in quotient.nodes
        ],
        title="Figure 7 — the multigraph M covered by the Theorem 2 graph",
    )
    return art


def figure8() -> FigureArtifact:
    """Figure 8: a 3-regular example — distinguishable neighbours, the
    matchings M(i, j), and the two phases of the Theorem 4 algorithm.

    The figure's exact port numbering is not recoverable; we use the
    Petersen graph with a fixed random numbering (the figure's graph is
    likewise an arbitrary 3-regular example) and regenerate all four
    panels: (a) distinguishable neighbours, (b) the nine matchings
    M(i, j), (c) phase I output, (d) phase II output.
    """
    art = FigureArtifact("figure-8", "M(i, j) and Theorem 4 phases")
    graph = from_networkx(nx.petersen_graph(), random_numbering(8))

    # (a) every node of a 3-regular graph has a distinguishable neighbour
    dn = {v: distinguishable_neighbour(graph, v) for v in graph.nodes}
    art.check("(a) every node has a distinguishable neighbour (Lemma 1)",
              all(u is not None for u in dn.values()))

    # (b) the matchings M(i, j)
    matchings = all_matchings(graph)
    art.check("(b) 9 matchings M(i, j) for i, j in 1..3", len(matchings) == 9)
    covered = set()
    for m in matchings.values():
        for e in m:
            covered |= e.endpoints
    art.check("(b) the union of the M(i, j) covers every node",
              covered == set(graph.nodes))

    # (c)+(d) phases of Theorem 4 (centralised reference = distributed run)
    after_phase1, final = regular_odd_reference(graph)
    from repro.algorithms.regular_odd import RegularOddEDS

    distributed = run_anonymous(graph, RegularOddEDS).edge_set()
    art.check("(d) distributed run equals the centralised reference",
              distributed == final)
    art.check("(c) phase I yields an edge cover that is a forest",
              is_edge_dominating_set(graph, after_phase1))
    art.check("(d) phase II yields a star forest", is_star_forest(final))
    art.check("(d) phase II only removes edges", final <= after_phase1)

    art.objects = {
        "graph": graph,
        "distinguishable": dn,
        "matchings": matchings,
        "phase1": after_phase1,
        "phase2": final,
    }
    art.rendering = format_table(
        ["pair (i,j)", "M(i,j)"],
        [
            (f"({i},{j})", _edge_pairs(matchings[(i, j)]) or "-")
            for (i, j) in sorted(matchings)
        ],
        title=(
            "Figure 8 — matchings M(i,j) on a 3-regular example; "
            f"phase I: {len(after_phase1)} edges, "
            f"phase II: {len(final)} edges"
        ),
    )
    return art


def figure9() -> FigureArtifact:
    """Figure 9: the anatomy of one A(Δ) run — M, P, D*, internal nodes
    and their costs (the §7.4-§7.7 machinery, executed)."""
    art = FigureArtifact("figure-9", "Section 7 algorithm anatomy")
    graph = from_networkx(
        nx.random_regular_graph(4, 14, seed=9), random_numbering(9)
    )

    result, m_edges, p_edges = run_bounded_with_split(graph, 4)
    solution = result.edge_set()
    art.check("D = M ∪ P", solution == m_edges | p_edges)
    art.check("M is a matching", is_matching(m_edges))
    art.check("D dominates every edge",
              is_edge_dominating_set(graph, solution))

    reference = minimum_maximal_matching(graph)
    certificate = compute_cost_certificate(graph, solution, reference)
    art.check("total cost equals |D| (§7.5)",
              certificate.total_cost == len(solution))
    art.check("2|D*| internal nodes (§7.5)",
              sum(certificate.histogram) == 2 * len(reference))
    art.check("histogram inequality (§7.7) holds",
              certificate.histogram_inequality_holds)
    ratio = Fraction(len(solution), len(reference))
    art.check("ratio from histogram equals |D|/|D*| (§7.8)",
              certificate.implied_ratio_bound == ratio)
    art.check("ratio within 4 - 1/k = 7/2", ratio <= Fraction(7, 2))

    art.objects = {
        "graph": graph,
        "M": m_edges,
        "P": p_edges,
        "reference": reference,
        "certificate": certificate,
    }
    i0, i1, i2, i3, i4 = certificate.histogram
    art.rendering = format_table(
        ["quantity", "value"],
        [
            ("|M|", len(m_edges)),
            ("|P|", len(p_edges)),
            ("|D| = |M| + |P|", len(solution)),
            ("|D*| (minimum maximal matching)", len(reference)),
            ("internal nodes (I0..I4)", f"{i0} {i1} {i2} {i3} {i4}"),
            ("measured ratio |D|/|D*|", str(ratio)),
            ("guarantee 4 - 1/k", "7/2"),
        ],
        title="Figure 9 — one run of A(Δ) dissected (Δ = 4 ⇒ Δ' = 5)",
    )
    return art


def all_figures() -> dict[str, Callable[[], FigureArtifact]]:
    """All figure builders, keyed by figure id."""
    return {
        "1": figure1,
        "2": figure2,
        "3": figure3,
        "4": figure4,
        "5": figure5,
        "6": figure6,
        "7": figure7,
        "8": figure8,
        "9": figure9,
    }
