"""Dominating 2-matchings via the bipartite double cover (reference [21]).

Theorem 5's phase III is an application of Polishchuk and Suomela's
"simple local 3-approximation algorithm for vertex cover": a proposal
protocol equivalent to computing a maximal matching in the bipartite
double cover of the graph.  This module exposes that subroutine as a
standalone anonymous algorithm — run on the *whole* graph rather than
the phase III subgraph `H`:

* every node proposes along its ports in increasing order until a
  proposal is accepted or its ports are exhausted (the "black copy");
* every node accepts the first proposal it ever receives, breaking ties
  towards the smaller port (the "white copy").

The accepted edges form a 2-matching ``P`` (at most one outgoing and one
incoming acceptance per node) that *dominates every edge*: for any edge
``{u, v}``, if ``u`` never proposed to ``v`` then ``u`` was accepted
earlier (so ``u`` is covered), otherwise ``v`` received a proposal and
accepted one (so ``v`` is covered).  Consequently the covered nodes form
a vertex cover of size at most ``2|P| <= 3·OPT_VC`` — the node-based
covering result the paper contrasts its edge-based bounds against
(§1.4).

The protocol needs the degree bound Δ to size its round window (the
model gives nodes no other way to agree on when everybody is done).
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import AlgorithmContractError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node
from repro.runtime.algorithm import Message, NodeProgram
from repro.runtime.scheduler import run_anonymous

__all__ = ["DominatingTwoMatching", "three_approx_vertex_cover"]


class DominatingTwoMatching:
    """Factory for the [21] double-cover proposal algorithm.

    Usable as an anonymous algorithm::

        run_anonymous(graph, DominatingTwoMatching(max_degree=4))

    The output edge set is a 2-matching dominating every edge of the
    graph (so it is, in particular, an edge dominating set — with a
    worse ratio than Theorem 5's A(Δ), which is exactly why the paper
    builds more machinery around it).
    """

    def __init__(self, max_degree: int) -> None:
        if max_degree < 1:
            raise AlgorithmContractError(
                f"max_degree must be >= 1, got {max_degree}"
            )
        self.max_degree = max_degree

    def __call__(self, degree: int) -> NodeProgram:
        if degree > self.max_degree:
            raise AlgorithmContractError(
                f"node degree {degree} exceeds promised bound "
                f"Δ = {self.max_degree}"
            )
        return _DoubleCoverProgram(degree, self.max_degree)

    def total_rounds(self) -> int:
        """Every program halts after exactly 2Δ rounds."""
        return 2 * self.max_degree

    def batch_program(self, graph):
        """Opt in to the compiled scheduler's batch stepping."""
        from repro.algorithms.batch import BatchDoubleCover

        return BatchDoubleCover(graph, self.max_degree)

    def vector_program(self, graph):
        """Opt in to the numpy vector engine (``None`` without numpy)."""
        from repro.runtime.vector import vector_available

        if not vector_available():
            return None
        from repro.algorithms.vector import VectorDoubleCover

        return VectorDoubleCover(graph, self.max_degree)


class _DoubleCoverProgram(NodeProgram):
    """Propose/respond cycles; cycle c occupies rounds 2c and 2c + 1."""

    __slots__ = ("delta", "index", "out_done", "accepted_in", "p_ports",
                 "pending")

    def __init__(self, degree: int, delta: int) -> None:
        super().__init__(degree)
        self.delta = delta
        self.index = 0  # next port to propose on (0-based)
        self.out_done = degree == 0
        self.accepted_in = False
        self.p_ports: set[int] = set()
        self.pending: list[int] = []

    def send(self, rnd: int) -> Mapping[int, Message]:
        if rnd % 2 == 0:
            # propose sub-round
            if not self.out_done and self.index < self.degree:
                return {self.index + 1: ("prop",)}
            return {}
        # respond sub-round
        if not self.pending:
            return {}
        replies: dict[int, Message] = {}
        proposals = sorted(self.pending)
        self.pending = []
        if not self.accepted_in:
            winner = proposals[0]
            replies[winner] = ("acc",)
            self.p_ports.add(winner)
            self.accepted_in = True
            losers = proposals[1:]
        else:
            losers = proposals
        for port in losers:
            replies[port] = ("rej",)
        return replies

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        if rnd % 2 == 0:
            self.pending = [
                i for i, msg in inbox.items() if msg == ("prop",)
            ]
        else:
            if not self.out_done and self.index < self.degree:
                port = self.index + 1
                reply = inbox.get(port)
                if reply == ("acc",):
                    self.p_ports.add(port)
                    self.out_done = True
                elif reply == ("rej",):
                    self.index += 1
                    if self.index >= self.degree:
                        self.out_done = True
        if rnd + 1 >= 2 * self.delta:
            self.halt(self.p_ports)


def three_approx_vertex_cover(
    graph: PortNumberedGraph, max_degree: int | None = None
) -> frozenset[Node]:
    """A 3-approximate vertex cover via the double-cover 2-matching.

    The cover is the set of nodes incident to the 2-matching ``P`` —
    each node knows its own membership locally (its output is
    non-empty), so this is a genuinely local computation; the helper
    merely collects the answer.  Isolated nodes are never needed in a
    cover.
    """
    delta = graph.max_degree if max_degree is None else max_degree
    if graph.num_edges == 0:
        return frozenset()
    result = run_anonymous(graph, DominatingTwoMatching(delta))
    return frozenset(
        v for v in graph.nodes if result.outputs[v]
    )
