"""Theorem 5: the family A(Δ) for graphs of maximum degree Δ.

The paper's Section 7 algorithm achieves the tight ratio ``4 - 1/k``
(``k = floor(Δ/2)``) on every graph of maximum degree Δ, in O(Δ²) rounds.
For even Δ it simply runs A(Δ + 1); for Δ = 1 the optimum is the full
edge set.  For odd Δ = 2k + 1 ≥ 3 it builds two node-disjoint edge sets —
a matching ``M`` and a 2-matching ``P`` — and outputs ``D = M ∪ P``:

* **Phase I** (steps 0 .. Δ²-1) — for each pair ``(i, j)`` sequentially,
  process the edges of ``M(i, j)`` in parallel: add an edge to ``M`` iff
  *neither* endpoint is covered by ``M`` (unlike Theorem 4's phase I,
  which builds an edge cover, this builds a matching).  Afterwards, every
  odd-degree node is covered by ``M`` or adjacent to an ``M``-node
  (property (b) of §7.3).

* **Phase II** — for each degree class ``i = 2 .. Δ`` sequentially, let
  ``B_i`` be the edges ``{u, v}`` with ``deg(u) < deg(v) = i`` and both
  endpoints ``M``-uncovered.  The subgraph is bipartite (black = degree
  exactly ``i``, white = smaller degree); a maximal matching ``M_i`` is
  found by the proposal protocol of Hańćkowiak et al. [13]: black nodes
  propose along their white ports in increasing port order, whites accept
  the first proposal (ties by smaller port).  ``M <- M ∪ M_i``.  This
  guarantees property (c): surviving uncovered edges join equal-degree
  nodes.

* **Phase III** — on the subgraph ``H`` of edges with both endpoints
  ``M``-uncovered, find a 2-matching ``P`` dominating every edge of ``H``
  using the bipartite-double-cover proposal protocol of Polishchuk and
  Suomela [21]: every node simultaneously plays a proposer copy (proposes
  along its ``H``-ports in increasing order until accepted or exhausted)
  and an acceptor copy (accepts the first proposal ever received, ties by
  smaller port).  Each node ends with at most one accepted outgoing and
  one accepted incoming edge, so ``P`` is a 2-matching, and every ``H``
  edge is dominated (§7.2).

The global round schedule is a function of Δ alone, so all nodes halt
simultaneously after ``2Δ'² + 4Δ'`` rounds with ``Δ' = Δ`` rounded up to
odd — the paper's O(Δ²), independent of the graph size.
"""

from __future__ import annotations

from typing import Mapping

from repro.algorithms.base import LabelAwareProgram, pair_at
from repro.exceptions import AlgorithmContractError
from repro.runtime.algorithm import Message, NodeProgram

__all__ = ["BoundedDegreeEDS", "run_bounded_with_split"]


def run_bounded_with_split(graph, max_degree: int):
    """Run A(Δ) and return ``(run_result, M, P)``.

    The public output of the algorithm is the undifferentiated union
    ``D = M ∪ P``; the Section 7 analysis (and the Figure 9 reproduction)
    needs the split, which this helper extracts from the node programs'
    final states.
    """
    from repro.runtime.scheduler import _execute

    factory = BoundedDegreeEDS(max_degree)
    programs = {}
    for v in graph.nodes:
        prog = factory(graph.degree(v))
        if graph.degree(v) == 0 and not prog.halted:
            prog.halt(frozenset())
        programs[v] = prog
    result = _execute(graph, programs, 1_000_000, False)

    m_edges = set()
    p_edges = set()
    for v in graph.nodes:
        prog = programs[v]
        m_port = getattr(prog, "m_port", None)
        if m_port is not None:
            m_edges.add(graph.edge_at(v, m_port))
        for port in getattr(prog, "p_ports", ()):
            p_edges.add(graph.edge_at(v, port))
    return result, frozenset(m_edges), frozenset(p_edges)


class BoundedDegreeEDS:
    """Factory for the Theorem 5 family A(Δ).

    Instances are anonymous algorithm factories::

        run_anonymous(graph, BoundedDegreeEDS(max_degree=5))

    Parameters
    ----------
    max_degree:
        The promised bound Δ >= 1 on every node degree.  The guarantee is
        the Table 1 ratio ``bounded_degree_ratio(Δ)``; feeding a graph
        with a larger degree raises :class:`AlgorithmContractError` at
        program construction time.
    """

    def __init__(self, max_degree: int) -> None:
        if max_degree < 1:
            raise AlgorithmContractError(
                f"max_degree must be >= 1, got {max_degree}"
            )
        self.max_degree = max_degree
        #: the odd parameter Δ' actually used (A(2k) = A(2k + 1))
        self.odd_delta = max_degree + (1 if max_degree % 2 == 0 else 0)

    def __call__(self, degree: int) -> NodeProgram:
        if degree > self.max_degree:
            raise AlgorithmContractError(
                f"node degree {degree} exceeds promised bound "
                f"Δ = {self.max_degree}"
            )
        if self.max_degree == 1:
            return _AllEdgesProgram(degree)
        return _BoundedDegreeProgram(degree, self.odd_delta)

    def total_rounds(self) -> int:
        """The exact round count of every node program (A(1): 1 round)."""
        if self.max_degree == 1:
            return 1
        d = self.odd_delta
        return 2 * d * d + 4 * d

    def batch_program(self, graph):
        """Opt in to the compiled scheduler's batch stepping."""
        from repro.algorithms.batch import BatchAllEdges, BatchBoundedDegree

        if self.max_degree == 1:
            for v in graph.nodes:
                if graph.degree(v) > 1:
                    raise AlgorithmContractError(
                        f"node degree {graph.degree(v)} exceeds promised "
                        f"bound Δ = {self.max_degree}"
                    )
            return BatchAllEdges(graph)
        return BatchBoundedDegree(graph, self.max_degree, self.odd_delta)

    def vector_program(self, graph):
        """Opt in to the numpy vector engine (``None`` without numpy)."""
        from repro.runtime.vector import vector_available

        if not vector_available():
            return None
        from repro.algorithms.vector import (
            VectorAllEdges,
            VectorBoundedDegree,
        )

        if self.max_degree == 1:
            for v in graph.nodes:
                if graph.degree(v) > 1:
                    raise AlgorithmContractError(
                        f"node degree {graph.degree(v)} exceeds promised "
                        f"bound Δ = {self.max_degree}"
                    )
            return VectorAllEdges(graph)
        return VectorBoundedDegree(graph, self.max_degree, self.odd_delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedDegreeEDS(max_degree={self.max_degree})"


class _AllEdgesProgram(NodeProgram):
    """A(1): in a graph of maximum degree 1 the full edge set is optimal."""

    def send(self, rnd: int) -> Mapping[int, Message]:
        return {}

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        self.halt(set(range(1, self.degree + 1)))


class _BoundedDegreeProgram(LabelAwareProgram):
    """One node's state machine for A(Δ') with Δ' odd and >= 3."""

    __slots__ = (
        "delta",
        "m_port",
        "p_ports",
        "stage_queue",
        "stage_index",
        "stage_white_eligible",
        "stage_accepted",
        "pending_proposals",
        "h_queue",
        "h_index",
        "h_out_done",
        "h_accepted_in",
    )

    def __init__(self, degree: int, odd_delta: int) -> None:
        super().__init__(degree)
        self.delta = odd_delta
        #: the port of my matching edge, or None (M is a matching)
        self.m_port: int | None = None
        #: ports of my 2-matching edges (at most two)
        self.p_ports: set[int] = set()
        # phase II per-stage state
        self.stage_queue: list[int] = []
        self.stage_index = 0
        self.stage_white_eligible = False
        self.stage_accepted = False
        self.pending_proposals: list[int] = []
        # phase III state
        self.h_queue: list[int] = []
        self.h_index = 0
        self.h_out_done = False
        self.h_accepted_in = False

    # -- properties --------------------------------------------------------

    @property
    def m_covered(self) -> bool:
        return self.m_port is not None

    # -- the global schedule ------------------------------------------------
    #
    # (all step counts are after the 2 setup rounds of LabelAwareProgram)
    # phase I        : steps [0, D²) with D = Δ'           -- pair steps
    # phase II stage i (i = 2..D): window of 1 + 2i steps  -- proposals
    # phase III      : window of 1 + 2D steps              -- double cover
    # halt after the last phase III step.

    def _phase1_length(self) -> int:
        return self.delta * self.delta

    def _stage_offset(self, i: int) -> int:
        """First step of phase II stage *i* (valid for 2 <= i <= D + 1)."""
        off = self._phase1_length()
        for stage in range(2, i):
            off += 1 + 2 * stage
        return off

    def _phase3_offset(self) -> int:
        return self._stage_offset(self.delta + 1)

    def _total_steps(self) -> int:
        return self._phase3_offset() + 1 + 2 * self.delta

    def _locate(self, step: int):
        """Map a step to ('I', pair) | ('II', stage, local) | ('III', local)."""
        if step < self._phase1_length():
            return ("I", pair_at(step, self.delta))
        p3 = self._phase3_offset()
        if step < p3:
            offset = self._phase1_length()
            for stage in range(2, self.delta + 1):
                window = 1 + 2 * stage
                if step < offset + window:
                    return ("II", stage, step - offset)
                offset += window
            raise AssertionError("unreachable: schedule arithmetic")
        return ("III", step - p3)

    # -- sending -------------------------------------------------------------

    def algo_send(self, step: int) -> Mapping[int, Message]:
        located = self._locate(step)
        if located[0] == "I":
            return self._send_phase1(located[1])
        if located[0] == "II":
            return self._send_phase2(located[1], located[2])
        return self._send_phase3(located[1])

    def _send_phase1(self, pair: tuple[int, int]) -> Mapping[int, Message]:
        port = self.port_for_pair.get(pair)
        if port is None:
            return {}
        return {port: ("mcov", self.m_covered)}

    def _send_phase2(self, stage: int, local: int) -> Mapping[int, Message]:
        if local == 0:
            # stage setup: broadcast M-coverage
            return {
                i: ("scov", self.m_covered)
                for i in range(1, self.degree + 1)
            }
        r = local - 1
        if r % 2 == 0:
            # propose sub-round (black role)
            if (
                self.stage_queue
                and not self.stage_accepted
                and self.stage_index < len(self.stage_queue)
            ):
                return {self.stage_queue[self.stage_index]: ("prop",)}
            return {}
        # respond sub-round (white role)
        return self._respond_to_proposals(
            eligible=self.stage_white_eligible and not self.m_covered,
            phase3=False,
        )

    def _send_phase3(self, local: int) -> Mapping[int, Message]:
        if local == 0:
            return {
                i: ("hcov", self.m_covered)
                for i in range(1, self.degree + 1)
            }
        r = local - 1
        if r % 2 == 0:
            if not self.h_out_done and self.h_index < len(self.h_queue):
                return {self.h_queue[self.h_index]: ("prop",)}
            return {}
        return self._respond_to_proposals(
            eligible=not self.h_accepted_in, phase3=True
        )

    def _respond_to_proposals(
        self, eligible: bool, phase3: bool
    ) -> dict[int, Message]:
        """Accept the smallest-port pending proposal when *eligible*."""
        if not self.pending_proposals:
            return {}
        replies: dict[int, Message] = {}
        proposals = sorted(self.pending_proposals)
        self.pending_proposals = []
        if eligible:
            winner = proposals[0]
            replies[winner] = ("acc",)
            for port in proposals[1:]:
                replies[port] = ("rej",)
            self._record_acceptance(winner, phase3)
        else:
            for port in proposals:
                replies[port] = ("rej",)
        return replies

    def _record_acceptance(self, port: int, phase3: bool) -> None:
        """Book-keeping when this node accepts an incoming proposal."""
        if phase3:
            self.p_ports.add(port)
            self.h_accepted_in = True
        else:
            self.m_port = port
            self.stage_accepted = True

    # -- receiving -------------------------------------------------------------

    def algo_receive(self, step: int, inbox: Mapping[int, Message]) -> None:
        located = self._locate(step)
        if located[0] == "I":
            self._receive_phase1(located[1], inbox)
        elif located[0] == "II":
            self._receive_phase2(located[1], located[2], inbox)
        else:
            self._receive_phase3(located[1], inbox)
        if step + 1 >= self._total_steps():
            output = set(self.p_ports)
            if self.m_port is not None:
                output.add(self.m_port)
            self.halt(output)

    def _receive_phase1(
        self, pair: tuple[int, int], inbox: Mapping[int, Message]
    ) -> None:
        port = self.port_for_pair.get(pair)
        if port is None or port not in inbox:
            return
        _, peer_covered = inbox[port]
        # add to M iff *neither* endpoint is covered (Section 7 phase I)
        if not self.m_covered and not peer_covered:
            self.m_port = port

    def _receive_phase2(
        self, stage: int, local: int, inbox: Mapping[int, Message]
    ) -> None:
        if local == 0:
            self._start_stage(stage, inbox)
            return
        r = local - 1
        if r % 2 == 0:
            # proposals land on whites
            self.pending_proposals = [
                i for i, msg in inbox.items() if msg == ("prop",)
            ]
        else:
            # responses land on blacks
            self._read_response(inbox, phase3=False)

    def _start_stage(self, stage: int, inbox: Mapping[int, Message]) -> None:
        peer_covered = {
            i: msg[1] for i, msg in inbox.items() if msg[0] == "scov"
        }
        self.pending_proposals = []
        self.stage_accepted = False
        self.stage_index = 0
        self.stage_queue = []
        # white role: eligible to accept iff uncovered and degree < stage
        self.stage_white_eligible = (
            not self.m_covered and self.degree < stage
        )
        # black role: uncovered nodes of degree exactly `stage` propose to
        # uncovered smaller-degree neighbours, in increasing port order
        if not self.m_covered and self.degree == stage:
            self.stage_queue = [
                i
                for i in range(1, self.degree + 1)
                if self.peer_degree[i] < stage and not peer_covered.get(i, True)
            ]

    def _receive_phase3(self, local: int, inbox: Mapping[int, Message]) -> None:
        if local == 0:
            peer_covered = {
                i: msg[1] for i, msg in inbox.items() if msg[0] == "hcov"
            }
            self.pending_proposals = []
            self.h_accepted_in = False
            self.h_index = 0
            self.h_out_done = self.m_covered
            self.h_queue = []
            if not self.m_covered:
                self.h_queue = [
                    i
                    for i in range(1, self.degree + 1)
                    if not peer_covered.get(i, True)
                ]
                if not self.h_queue:
                    self.h_out_done = True
            return
        r = local - 1
        if r % 2 == 0:
            self.pending_proposals = [
                i for i, msg in inbox.items() if msg == ("prop",)
            ]
        else:
            self._read_response(inbox, phase3=True)

    def _read_response(
        self, inbox: Mapping[int, Message], phase3: bool
    ) -> None:
        """Proposer side: learn whether the pending proposal was accepted."""
        if phase3:
            if self.h_out_done or self.h_index >= len(self.h_queue):
                return
            port = self.h_queue[self.h_index]
            reply = inbox.get(port)
            if reply == ("acc",):
                self.p_ports.add(port)
                self.h_out_done = True
            elif reply == ("rej",):
                self.h_index += 1
                if self.h_index >= len(self.h_queue):
                    self.h_out_done = True
            return
        if self.stage_accepted or self.stage_index >= len(self.stage_queue):
            return
        port = self.stage_queue[self.stage_index]
        reply = inbox.get(port)
        if reply == ("acc",):
            self.m_port = port
            self.stage_accepted = True
        elif reply == ("rej",):
            self.stage_index += 1


# Registered where it is defined: work units reach this program by name.
# ``delta`` is the optional explicit degree promise (the inflated-Δ
# ablation uses it); without it the promise defaults to the graph's own
# maximum degree, matching the historical harness behaviour.
from repro.registry.algorithms import register_anonymous  # noqa: E402


def _bounded_degree_factory(graph, delta=None):
    promise = delta if delta is not None else max(graph.max_degree, 1)
    return BoundedDegreeEDS(promise)


register_anonymous(
    "bounded_degree",
    _bounded_degree_factory,
    params=("delta",),
    description=(
        "Theorem 5 family A(Δ): O(Δ^2) rounds, ratio 4 - 1/⌊Δ/2⌋ under "
        "a max-degree promise"
    ),
)
