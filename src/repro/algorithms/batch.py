"""Batch-stepping implementations of the paper's deterministic algorithms.

Each class here is the all-nodes-at-once counterpart of one per-node
program from this package, plugged into the compiled scheduler through
the :class:`~repro.runtime.batch.BatchProgram` protocol.  They advance
every node in one ``step_all`` call per round over flat arrays — no
per-node method dispatch, no per-node inbox mappings — and they are
**observationally identical** to the per-node programs: same outputs,
same round counts, and the same messages in the same order, which the
differential suite (``tests/test_runtime_compiled.py``) asserts across
the full graph-family matrix.

Fidelity rules the implementations follow:

* sends are emitted in ascending node order, and within a node in the
  iteration order of the per-node program's send mapping (which for
  every algorithm here is ascending port order — including proposal
  responses, whose accepted port is always the smallest pending);
* a batch program may *know* the graph (it is an execution strategy,
  not a model extension), so setup quantities the per-node programs
  learn by messaging — peer port numbers, peer degrees, distinguishable
  edges — are precomputed from the compiled involution, but the setup
  **messages themselves are still sent** so traces and message counts
  are unchanged;
* per-node schedule arithmetic (which depends only on degrees and the
  promised Δ) is mirrored exactly, so nodes halt in the same rounds
  even on graphs outside an algorithm's contract.
"""

from __future__ import annotations

from collections import Counter

from repro.algorithms.base import pair_at
from repro.exceptions import AlgorithmContractError, SimulationError
from repro.portgraph.graph import PortNumberedGraph
from repro.runtime.batch import ABSENT, BatchProgram

__all__ = [
    "BatchAllEdges",
    "BatchBoundedDegree",
    "BatchDoubleCover",
    "BatchGreedyMatchingIds",
    "BatchLabelAware",
    "BatchPortOne",
    "BatchRegularOdd",
]


class BatchPortOne(BatchProgram):
    """Theorem 3, batched: one send round, then every node halts.

    Round 0 is total — every degree-positive node is running and sends
    on every port — so both the send list and the resulting outputs are
    pure functions of the involution and are precomputed (memoised on
    the compiled graph; repeated runs reuse them); the messages are
    still routed, so traces and counts are unchanged.
    """

    __slots__ = ("_sends", "_outputs")

    def __init__(self, graph: PortNumberedGraph) -> None:
        super().__init__(graph)
        cg = self.cg
        self.total_send_rounds = frozenset((0,))
        try:
            self._sends, self._outputs = cg.memo["port_one"]
            return
        except KeyError:
            pass
        offsets = cg.offsets
        mate = cg.mate
        port_node = cg.port_node
        sends: list[tuple[int, object]] = []
        outputs: list[frozenset[int]] = []
        for k in range(cg.num_nodes):
            base = offsets[k]
            degree = cg.degrees[k]
            selected = set()
            for i in range(1, degree + 1):
                g = base + i - 1
                sends.append((g, i))
                peer = mate[g]
                if i == 1 or peer - offsets[port_node[peer]] == 0:
                    selected.add(i)
            outputs.append(frozenset(selected))
        self._sends = sends
        self._outputs = outputs
        cg.memo["port_one"] = (sends, outputs)

    def send_all(self, rnd):
        return self._sends

    def receive_all(self, rnd, inbox):
        running = self.running
        outputs = self._outputs
        for k in range(self.cg.num_nodes):
            if running[k]:
                self.halt_node(k, outputs[k])


class BatchLabelAware(BatchProgram):
    """Shared Section 5 setup for the Theorem 4/5 batch programs.

    Precomputes, per node, the distinguishable port and the
    ``pair → port`` table from the compiled involution, and emits the
    two setup rounds' messages (``hello``, then ``dn``) exactly as
    :class:`~repro.algorithms.base.LabelAwareProgram` would.
    """

    __slots__ = ("dn_port", "port_for_pair", "_hello_sends", "_dn_sends")

    def __init__(self, graph: PortNumberedGraph) -> None:
        super().__init__(graph)
        cg = self.cg
        self.total_send_rounds = frozenset((0, 1))
        try:
            (self.dn_port, self.port_for_pair,
             self._hello_sends, self._dn_sends) = cg.memo["label_aware"]
            return
        except KeyError:
            pass
        offsets = cg.offsets
        mate = cg.mate
        port_node = cg.port_node
        degrees = cg.degrees
        n = cg.num_nodes
        peer_local = cg.peer_local_list()

        # Distinguishable port: the min-port uniquely labelled edge.
        dn_port: list[int | None] = [None] * n
        for k in range(n):
            base = offsets[k]
            pair_of = {
                i: frozenset({i, peer_local[base + i - 1]})
                for i in range(1, degrees[k] + 1)
            }
            multiplicity = Counter(pair_of.values())
            for i in range(1, degrees[k] + 1):
                if multiplicity[pair_of[i]] == 1:
                    dn_port[k] = i
                    break
        self.dn_port = dn_port

        # pair (i, j) → my port whose edge is in M(i, j); Lemma 2 says
        # at most one per node, kept as an executable invariant.
        port_for_pair: list[dict[tuple[int, int], int]] = []
        for k in range(n):
            base = offsets[k]
            table: dict[tuple[int, int], int] = {}
            for i in range(1, degrees[k] + 1):
                g = base + i - 1
                tags = []
                if dn_port[k] == i:
                    tags.append((i, peer_local[g]))
                peer_k = port_node[mate[g]]
                peer_i = peer_local[g]
                if dn_port[peer_k] == peer_i:
                    tags.append((peer_i, i))
                for pair in tags:
                    if pair in table and table[pair] != i:
                        raise SimulationError(
                            f"Lemma 2 violated: pair {pair} tags two "
                            f"incident edges (ports {table[pair]} and {i})"
                        )
                    table[pair] = i
            port_for_pair.append(table)
        self.port_for_pair = port_for_pair

        # Setup broadcasts are total (no label-aware program halts before
        # its algorithm steps begin), so both rounds' send lists are
        # precomputed and reused verbatim.
        hello: list[tuple[int, object]] = []
        dn_sends: list[tuple[int, object]] = []
        for k in range(n):
            base = offsets[k]
            degree = degrees[k]
            dn = dn_port[k]
            for i in range(1, degree + 1):
                hello.append((base + i - 1, ("hello", i, degree)))
                dn_sends.append((base + i - 1, ("dn", i == dn)))
        self._hello_sends = hello
        self._dn_sends = dn_sends
        cg.memo["label_aware"] = (
            self.dn_port, self.port_for_pair, hello, dn_sends
        )

    def setup_sends(self, rnd) -> "list[tuple[int, object]]":
        """The two setup rounds' messages (call for ``rnd`` 0 and 1)."""
        return self._hello_sends if rnd == 0 else self._dn_sends


class BatchRegularOdd(BatchLabelAware):
    """Theorem 4, batched: the two-phase pair schedule over flat state.

    A node is active in a pair step only when its ``pair → port`` table
    selects a port — at most ``2·d`` of its ``2·d²`` steps.  The whole
    step → participants schedule is therefore inverted once at
    construction: each step carries only its active ``(node, port,
    phase)`` triples (in node order, preserving canonical send order),
    and the round loop never scans idle nodes.  Per-node degrees drive
    per-node schedules, so the inversion is exact even on non-regular
    graphs (outside the algorithm's contract, but the simulation — and
    its halting pattern — must still match the per-node programs).
    """

    __slots__ = ("selected", "covered", "sched", "halt_at")

    def __init__(self, graph: PortNumberedGraph) -> None:
        super().__init__(graph)
        cg = self.cg
        n = cg.num_nodes
        self.selected: list[set[int]] = [set() for _ in range(n)]
        self.covered: list[bool] = [False] * n

        try:
            self.sched, self.halt_at = cg.memo["regular_odd"]
            return
        except KeyError:
            pass
        # step → [(node, port, phase)], node-ascending by construction
        sched: dict[int, list[tuple[int, int, int]]] = {}
        halt_at: dict[int, list[int]] = {}
        for k in range(n):
            d = cg.degrees[k]
            if d == 0:
                continue  # halted up front
            for (i, j), port in self.port_for_pair[k].items():
                if i > d or j > d:
                    # A pair can name a *peer* port number beyond this
                    # node's own degree; the node's d-bounded schedule
                    # never reaches it (pair_at only emits [1, d]²).
                    continue
                step = (i - 1) * d + (j - 1)
                sched.setdefault(step, []).append((k, port, 1))
                sched.setdefault(step + d * d, []).append((k, port, 2))
            halt_at.setdefault(2 * d * d - 1, []).append(k)
        self.sched = sched
        self.halt_at = halt_at
        cg.memo["regular_odd"] = (sched, halt_at)

    def send_all(self, rnd):
        if rnd < 2:
            return self.setup_sends(rnd)
        sends: list[tuple[int, object]] = []
        offsets = self.cg.offsets
        running = self.running
        selected = self.selected
        covered = self.covered
        for k, port, phase in self.sched.get(rnd - 2, ()):
            if not running[k]:
                continue
            if phase == 1:
                bit = covered[k]
            else:
                # phase II only processes edges of D ∩ M(i, j); the bit
                # says whether this endpoint stays covered without it
                if port not in selected[k]:
                    continue
                bit = len(selected[k]) > 1
            sends.append((offsets[k] + port - 1, ("cov", bit)))
        return sends

    def receive_all(self, rnd, inbox):
        if rnd < 2:
            return
        step = rnd - 2
        offsets = self.cg.offsets
        running = self.running
        selected = self.selected
        covered = self.covered
        for k, port, phase in self.sched.get(step, ()):
            if not running[k]:
                continue
            if phase == 2 and port not in selected[k]:
                continue
            payload = inbox[offsets[k] + port - 1]
            if payload is ABSENT:
                continue
            peer_bit = payload[1]
            if phase == 1:
                # add the edge unless both endpoints are already covered
                if not (covered[k] and peer_bit):
                    selected[k].add(port)
                    covered[k] = True
            else:
                # remove if both endpoints stay covered without the edge
                if len(selected[k]) > 1 and peer_bit:
                    selected[k].discard(port)
        for k in self.halt_at.get(step, ()):
            if running[k]:
                self.halt_node(k, frozenset(selected[k]))


class BatchAllEdges(BatchProgram):
    """A(1), batched: silence, then every node outputs all its ports."""

    __slots__ = ()

    def send_all(self, rnd):
        return []

    def receive_all(self, rnd, inbox):
        cg = self.cg
        running = self.running
        for k in range(cg.num_nodes):
            if running[k]:
                self.halt_node(k, frozenset(range(1, cg.degrees[k] + 1)))


class BatchBoundedDegree(BatchLabelAware):
    """Theorem 5's A(Δ'), batched (Δ' odd and ≥ 3).

    The global schedule is a function of Δ' alone, so it is precomputed
    once as a step → phase lookup table shared by every node.  The round
    loop never scans idle nodes: phase I is inverted into a step →
    participants schedule like :class:`BatchRegularOdd`; the phase
    II/III proposal machinery keeps *active lists* — the proposers of
    the current stage, and the nodes holding pending proposals (known
    exactly, since the proposers' targets are one ``mate`` read away).
    Full-graph passes happen only at stage boundaries and the final
    halting step.
    """

    __slots__ = (
        "delta",
        "schedule",
        "total_steps",
        "m_port",
        "p_ports",
        "stage_queue",
        "stage_index",
        "stage_accepted",
        "out_done",
        "accepted_in",
        "white_eligible",
        "pending",
        "pair_sched",
        "_proposers",
        "_pended",
        "_phase3",
    )

    def __init__(
        self, graph: PortNumberedGraph, max_degree: int, odd_delta: int
    ) -> None:
        for v in graph.nodes:
            if graph.degree(v) > max_degree:
                raise AlgorithmContractError(
                    f"node degree {graph.degree(v)} exceeds promised bound "
                    f"Δ = {max_degree}"
                )
        super().__init__(graph)
        delta = odd_delta
        self.delta = delta
        n = self.cg.num_nodes

        try:
            self.schedule, self.pair_sched, broadcasts = (
                self.cg.memo["bounded", delta]
            )
        except KeyError:
            # step → ("I", pair) | ("II", stage, local) | ("III", local)
            schedule: list[tuple] = []
            for step in range(delta * delta):
                schedule.append(("I", pair_at(step, delta)))
            for stage in range(2, delta + 1):
                for local in range(1 + 2 * stage):
                    schedule.append(("II", stage, local))
            for local in range(1 + 2 * delta):
                schedule.append(("III", local))
            self.schedule = schedule

            # phase I inverted: step → [(node, port)], node-ascending
            pair_sched: dict[int, list[tuple[int, int]]] = {}
            for k in range(n):
                for (i, j), port in self.port_for_pair[k].items():
                    step = (i - 1) * delta + (j - 1)
                    pair_sched.setdefault(step, []).append((k, port))
            self.pair_sched = pair_sched

            # stage/phase III kickoff broadcasts are total rounds
            broadcasts = frozenset(
                step + 2
                for step, located in enumerate(schedule)
                if located[0] != "I" and located[-1] == 0
            )
            self.cg.memo["bounded", delta] = (
                schedule, pair_sched, broadcasts
            )
        self.total_steps = len(self.schedule)
        self.total_send_rounds = self.total_send_rounds | broadcasts

        self.m_port: list[int | None] = [None] * n
        self.p_ports: list[set[int]] = [set() for _ in range(n)]
        # Phase II/III proposal state.  ``stage_queue``/``stage_index``
        # double as the phase III h-queue (the windows never overlap;
        # ``_phase3`` says which interpretation is live).  Phase III
        # needs two independent flags — a node there is proposer *and*
        # acceptor at once: ``out_done`` ends its outgoing proposals,
        # ``accepted_in`` its incoming acceptances.  Phase II nodes are
        # black xor white, so ``stage_accepted`` serves both roles.
        self.stage_queue: list[list[int]] = [[] for _ in range(n)]
        self.stage_index = [0] * n
        self.stage_accepted = [False] * n
        self.out_done = [False] * n
        self.accepted_in = [False] * n
        self.white_eligible = [False] * n
        self.pending: list[list[int]] = [[] for _ in range(n)]
        self._proposers: list[int] = []
        self._pended: list[int] = []
        self._phase3 = False

    def _peer_degree(self, k: int, port: int) -> int:
        cg = self.cg
        return cg.degrees[cg.port_node[cg.mate[cg.offsets[k] + port - 1]]]

    # -- sending ----------------------------------------------------------

    def _broadcast(self, tag: str) -> "list[tuple[int, object]]":
        sends: list[tuple[int, object]] = []
        cg = self.cg
        offsets = cg.offsets
        degrees = cg.degrees
        m_port = self.m_port
        for k in range(cg.num_nodes):
            if not self.running[k]:
                continue
            base = offsets[k]
            payload = (tag, m_port[k] is not None)
            for i in range(1, degrees[k] + 1):
                sends.append((base + i - 1, payload))
        return sends

    def _proposing(self, k: int) -> bool:
        """Whether proposer *k* sends this propose round (mirrors the
        per-node send conditions of phases II and III)."""
        if self._phase3:
            if self.out_done[k]:
                return False
        elif self.stage_accepted[k]:
            return False
        return self.stage_index[k] < len(self.stage_queue[k])

    def _propose_sends(self) -> "list[tuple[int, object]]":
        sends: list[tuple[int, object]] = []
        offsets = self.cg.offsets
        for k in self._proposers:
            if self._proposing(k):
                sends.append(
                    (offsets[k] + self.stage_queue[k][self.stage_index[k]] - 1,
                     ("prop",))
                )
        return sends

    def _respond_sends(self) -> "list[tuple[int, object]]":
        """Every node holding proposals replies; the smallest pending
        port wins when the node is eligible to accept."""
        sends: list[tuple[int, object]] = []
        offsets = self.cg.offsets
        phase3 = self._phase3
        for k in self._pended:
            if not self.pending[k]:
                continue
            base = offsets[k]
            proposals = sorted(self.pending[k])
            self.pending[k] = []
            if phase3:
                eligible = not self.accepted_in[k]
            else:
                eligible = self.white_eligible[k] and self.m_port[k] is None
            if eligible:
                winner = proposals[0]
                sends.append((base + winner - 1, ("acc",)))
                if phase3:
                    self.p_ports[k].add(winner)
                    self.accepted_in[k] = True
                else:
                    self.m_port[k] = winner
                    self.stage_accepted[k] = True
                losers = proposals[1:]
            else:
                losers = proposals
            for port in losers:
                sends.append((base + port - 1, ("rej",)))
        self._pended = []
        return sends

    def send_all(self, rnd):
        if rnd < 2:
            return self.setup_sends(rnd)
        located = self.schedule[rnd - 2]
        kind = located[0]
        if kind == "I":
            sends: list[tuple[int, object]] = []
            offsets = self.cg.offsets
            m_port = self.m_port
            for k, port in self.pair_sched.get(rnd - 2, ()):
                sends.append(
                    (offsets[k] + port - 1, ("mcov", m_port[k] is not None))
                )
            return sends
        local = located[2] if kind == "II" else located[1]
        if local == 0:
            return self._broadcast("scov" if kind == "II" else "hcov")
        if (local - 1) % 2 == 0:
            return self._propose_sends()
        return self._respond_sends()

    # -- receiving --------------------------------------------------------

    def _collect_pending(self) -> None:
        """Pending proposals, read off the proposers' targets.

        Equivalent to every node scanning its inbox for ``("prop",)``:
        the only senders of that payload this round are the current
        proposers, and each proposal's landing port is one ``mate``
        lookup.  ``_pended`` is rebuilt node-ascending so the next
        respond round replies in canonical order.
        """
        cg = self.cg
        offsets = cg.offsets
        mate = cg.mate
        port_node = cg.port_node
        pended = set()
        for k in self._proposers:
            if not self._proposing(k):
                continue
            queue = self.stage_queue[k]
            target = mate[offsets[k] + queue[self.stage_index[k]] - 1]
            tk = port_node[target]
            if not self.running[tk]:
                continue
            self.pending[tk].append(target - offsets[tk] + 1)
            pended.add(tk)
        self._pended = sorted(pended)

    def _read_responses(self, inbox) -> None:
        offsets = self.cg.offsets
        phase3 = self._phase3
        for k in self._proposers:
            if not self._proposing(k):
                continue
            queue = self.stage_queue[k]
            port = queue[self.stage_index[k]]
            reply = inbox[offsets[k] + port - 1]
            if reply == ("acc",):
                if phase3:
                    self.p_ports[k].add(port)
                    self.out_done[k] = True
                else:
                    self.m_port[k] = port
                    self.stage_accepted[k] = True
            elif reply == ("rej",):
                self.stage_index[k] += 1
                if phase3 and self.stage_index[k] >= len(queue):
                    self.out_done[k] = True

    def receive_all(self, rnd, inbox):
        if rnd < 2:
            return
        step = rnd - 2
        located = self.schedule[step]
        kind = located[0]
        if kind == "I":
            m_port = self.m_port
            offsets = self.cg.offsets
            for k, port in self.pair_sched.get(step, ()):
                payload = inbox[offsets[k] + port - 1]
                # add to M iff *neither* endpoint is covered (§7 phase I)
                if (
                    payload is not ABSENT
                    and m_port[k] is None
                    and not payload[1]
                ):
                    m_port[k] = port
        elif kind == "II":
            stage, local = located[1], located[2]
            if local == 0:
                self._start_stage(stage, inbox)
            elif (local - 1) % 2 == 0:
                self._collect_pending()
            else:
                self._read_responses(inbox)
        else:
            local = located[1]
            if local == 0:
                self._start_h(inbox)
            elif (local - 1) % 2 == 0:
                self._collect_pending()
            else:
                self._read_responses(inbox)
        if step + 1 >= self.total_steps:
            for k in range(self.cg.num_nodes):
                if not self.running[k]:
                    continue
                output = set(self.p_ports[k])
                if self.m_port[k] is not None:
                    output.add(self.m_port[k])
                self.halt_node(k, frozenset(output))

    def _start_stage(self, stage: int, inbox) -> None:
        """Stage setup: reset the proposal state, cast roles.

        White role: eligible to accept iff uncovered and degree < stage.
        Black role: uncovered nodes of degree exactly *stage* propose to
        uncovered smaller-degree neighbours, in increasing port order.
        Only prospective blacks need their inbox scanned; every other
        node's stage state is a pure reset (pendings are provably empty
        between stages — every propose round is followed by a respond
        round that consumes them).
        """
        cg = self.cg
        offsets = cg.offsets
        degrees = cg.degrees
        self._phase3 = False
        proposers = []
        for k in range(cg.num_nodes):
            degree = degrees[k]
            uncovered = self.m_port[k] is None
            self.white_eligible[k] = uncovered and degree < stage
            self.stage_accepted[k] = False
            self.stage_index[k] = 0
            self.stage_queue[k] = []
            if uncovered and degree == stage:
                base = offsets[k]
                queue = []
                for i in range(1, degree + 1):
                    if self._peer_degree(k, i) >= stage:
                        continue
                    payload = inbox[base + i - 1]
                    if (
                        payload is not ABSENT
                        and payload[0] == "scov"
                        and not payload[1]
                    ):
                        queue.append(i)
                if queue:
                    self.stage_queue[k] = queue
                    proposers.append(k)
        self._proposers = proposers

    def _start_h(self, inbox) -> None:
        """Phase III setup: every uncovered node proposes along its
        uncovered neighbours; acceptance state starts clean."""
        cg = self.cg
        offsets = cg.offsets
        degrees = cg.degrees
        self._phase3 = True
        proposers = []
        for k in range(cg.num_nodes):
            self.accepted_in[k] = False
            self.stage_index[k] = 0
            self.stage_queue[k] = []
            self.out_done[k] = True
            if self.m_port[k] is not None:
                continue
            base = offsets[k]
            queue = []
            for i in range(1, degrees[k] + 1):
                payload = inbox[base + i - 1]
                if (
                    payload is not ABSENT
                    and payload[0] == "hcov"
                    and not payload[1]
                ):
                    queue.append(i)
            if queue:
                self.stage_queue[k] = queue
                self.out_done[k] = False
                proposers.append(k)
        self._proposers = proposers


class BatchDoubleCover(BatchProgram):
    """The [21] double-cover proposal protocol, batched."""

    __slots__ = ("delta", "index", "out_done", "accepted_in", "p_ports",
                 "pending")

    def __init__(self, graph: PortNumberedGraph, max_degree: int) -> None:
        for v in graph.nodes:
            if graph.degree(v) > max_degree:
                raise AlgorithmContractError(
                    f"node degree {graph.degree(v)} exceeds promised bound "
                    f"Δ = {max_degree}"
                )
        super().__init__(graph)
        self.delta = max_degree
        n = self.cg.num_nodes
        self.index = [0] * n  # next port to propose on (0-based)
        self.out_done = [degree == 0 for degree in self.cg.degrees]
        self.accepted_in = [False] * n
        self.p_ports: list[set[int]] = [set() for _ in range(n)]
        self.pending: list[list[int]] = [[] for _ in range(n)]

    def send_all(self, rnd):
        sends: list[tuple[int, object]] = []
        cg = self.cg
        offsets = cg.offsets
        running = self.running
        if rnd % 2 == 0:
            # propose sub-round
            for k in range(cg.num_nodes):
                if not running[k]:
                    continue
                if not self.out_done[k] and self.index[k] < cg.degrees[k]:
                    sends.append((offsets[k] + self.index[k], ("prop",)))
            return sends
        # respond sub-round
        for k in range(cg.num_nodes):
            if not running[k] or not self.pending[k]:
                continue
            base = offsets[k]
            proposals = sorted(self.pending[k])
            self.pending[k] = []
            if not self.accepted_in[k]:
                winner = proposals[0]
                sends.append((base + winner - 1, ("acc",)))
                self.p_ports[k].add(winner)
                self.accepted_in[k] = True
                losers = proposals[1:]
            else:
                losers = proposals
            for port in losers:
                sends.append((base + port - 1, ("rej",)))
        return sends

    def receive_all(self, rnd, inbox):
        cg = self.cg
        offsets = cg.offsets
        degrees = cg.degrees
        running = self.running
        halting = rnd + 1 >= 2 * self.delta
        even = rnd % 2 == 0
        for k in range(cg.num_nodes):
            if not running[k]:
                continue
            base = offsets[k]
            if even:
                self.pending[k] = [
                    i
                    for i in range(1, degrees[k] + 1)
                    if inbox[base + i - 1] == ("prop",)
                ]
            elif not self.out_done[k] and self.index[k] < degrees[k]:
                reply = inbox[base + self.index[k]]
                if reply == ("acc",):
                    self.p_ports[k].add(self.index[k] + 1)
                    self.out_done[k] = True
                elif reply == ("rej",):
                    self.index[k] += 1
                    if self.index[k] >= degrees[k]:
                        self.out_done[k] = True
            if halting:
                self.halt_node(k, frozenset(self.p_ports[k]))


class BatchGreedyMatchingIds(BatchProgram):
    """The identified-model greedy maximal matching, batched.

    Nodes halt as soon as they are matched or exhausted, so this is the
    built-in that genuinely exercises dropped-send routing: running
    neighbours keep addressing messages to halted nodes.
    """

    __slots__ = ("uid", "neighbour_id", "proposed", "pending", "accepted")

    def __init__(self, graph: PortNumberedGraph, ids) -> None:
        super().__init__(graph)
        cg = self.cg
        self.uid = [ids[v] for v in cg.nodes]
        # What the per-node programs learn in round 0, read off the
        # compiled involution (every port receives in round 0).
        self.neighbour_id = [
            self.uid[cg.port_node[cg.mate[g]]] for g in range(cg.num_ports)
        ]
        n = cg.num_nodes
        self.proposed: list[int | None] = [None] * n
        self.pending: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        self.accepted: list[int | None] = [None] * n

    def is_total_round(self, rnd):
        # The id exchange and every status round broadcast on all ports.
        return rnd == 0 or (rnd - 1) % 3 == 0

    def send_all(self, rnd):
        sends: list[tuple[int, object]] = []
        cg = self.cg
        offsets = cg.offsets
        degrees = cg.degrees
        running = self.running
        if rnd == 0:
            for k in range(cg.num_nodes):
                if not running[k]:
                    continue
                base = offsets[k]
                payload = ("id", self.uid[k])
                for i in range(1, degrees[k] + 1):
                    sends.append((base + i - 1, payload))
            return sends
        phase_round = (rnd - 1) % 3
        for k in range(cg.num_nodes):
            if not running[k]:
                continue
            base = offsets[k]
            if phase_round == 0:
                for i in range(1, degrees[k] + 1):
                    sends.append((base + i - 1, ("alive",)))
            elif phase_round == 1:
                if self.proposed[k] is not None:
                    sends.append(
                        (base + self.proposed[k] - 1, ("prop", self.uid[k]))
                    )
            else:
                if self.pending[k]:
                    self.pending[k].sort()
                    if self.proposed[k] is None:
                        # acceptor: take the smallest-id proposer
                        self.accepted[k] = self.pending[k][0][1]
                        sends.append((base + self.accepted[k] - 1, ("acc",)))
                        losers = self.pending[k][1:]
                    else:
                        losers = self.pending[k]
                    for _, port in losers:
                        sends.append((base + port - 1, ("rej",)))
        return sends

    def receive_all(self, rnd, inbox):
        if rnd == 0:
            return  # neighbour ids precomputed from the involution
        phase_round = (rnd - 1) % 3
        cg = self.cg
        offsets = cg.offsets
        degrees = cg.degrees
        running = self.running
        neighbour_id = self.neighbour_id
        for k in range(cg.num_nodes):
            if not running[k]:
                continue
            base = offsets[k]
            if phase_round == 0:
                alive = [
                    i
                    for i in range(1, degrees[k] + 1)
                    if inbox[base + i - 1] == ("alive",)
                ]
                if not alive:
                    self.halt_node(k, frozenset())  # no partner can appear
                    continue
                best = min(
                    alive, key=lambda i: (neighbour_id[base + i - 1], i)
                )
                if neighbour_id[base + best - 1] < self.uid[k]:
                    self.proposed[k] = best  # proposer this phase
                else:
                    self.proposed[k] = None  # local minimum: acceptor
                self.pending[k] = []
                self.accepted[k] = None
            elif phase_round == 1:
                pending = []
                for i in range(1, degrees[k] + 1):
                    payload = inbox[base + i - 1]
                    if (
                        isinstance(payload, tuple)
                        and payload
                        and payload[0] == "prop"
                    ):
                        pending.append((payload[1], i))
                self.pending[k] = pending
            else:
                if self.accepted[k] is not None:
                    self.halt_node(k, frozenset({self.accepted[k]}))
                    continue
                proposed = self.proposed[k]
                if (
                    proposed is not None
                    and inbox[base + proposed - 1] == ("acc",)
                ):
                    self.halt_node(k, frozenset({proposed}))
                    continue
                self.proposed[k] = None
