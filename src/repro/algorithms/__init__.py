"""The paper's distributed algorithms and baselines.

* :class:`~repro.algorithms.port_one.PortOneEDS` — Theorem 3, O(1) time,
  ratio ``4 - 2/d`` on d-regular graphs.
* :class:`~repro.algorithms.regular_odd.RegularOddEDS` — Theorem 4,
  O(d²) time, ratio ``4 - 6/(d+1)`` on odd-d-regular graphs.
* :class:`~repro.algorithms.bounded_degree.BoundedDegreeEDS` — Theorem 5,
  the family A(Δ), O(Δ²) time, ratio ``4 - 1/⌊Δ/2⌋`` on graphs of maximum
  degree Δ.
* :class:`~repro.algorithms.maximal_matching_ids.GreedyMaximalMatchingIds`
  — identified-model baseline (2-approximation via maximal matching).
"""

from repro.algorithms.base import LabelAwareProgram, pair_at, pair_schedule_index
from repro.algorithms.bounded_degree import (
    BoundedDegreeEDS,
    run_bounded_with_split,
)
from repro.algorithms.double_cover import (
    DominatingTwoMatching,
    three_approx_vertex_cover,
)
from repro.algorithms.maximal_matching_ids import GreedyMaximalMatchingIds
from repro.algorithms.port_one import PortOneEDS
from repro.algorithms.randomized import RandomizedMaximalMatching
from repro.algorithms.regular_odd import RegularOddEDS

__all__ = [
    "PortOneEDS",
    "RegularOddEDS",
    "BoundedDegreeEDS",
    "run_bounded_with_split",
    "DominatingTwoMatching",
    "three_approx_vertex_cover",
    "GreedyMaximalMatchingIds",
    "RandomizedMaximalMatching",
    "LabelAwareProgram",
    "pair_at",
    "pair_schedule_index",
]
