"""Vector-engine kernels for the paper's deterministic algorithms.

Each class is the struct-of-arrays counterpart of one batch program from
:mod:`repro.algorithms.batch`, plugged into the scheduler through the
:class:`~repro.runtime.vector.VectorProgram` protocol: per-node state is
typed numpy arrays, one round is a handful of whole-graph array ops, and
the step → participant schedules are precomputed entry arrays grouped by
step (memoised on the compiled graph under ``vector_*`` keys, separate
from the batch programs' memo entries so both engines can share one
graph).

The fidelity rules of the batch programs apply unchanged — canonical
send order (ascending node, then the per-node send-mapping order),
setup messages still sent, per-node schedule arithmetic mirrored — plus
one vectorisation invariant the schedules guarantee: **each node appears
at most once per schedule step** (a pair step selects at most one port
per node, proposal rounds carry one proposal per proposer and group
replies per responder), so simultaneous array updates are equivalent to
the batch programs' sequential per-node loops.

This module is only imported when numpy is available (the factories'
``vector_program`` hooks gate on
:func:`repro.runtime.vector.vector_available`).
"""

from __future__ import annotations

from repro.algorithms.base import pair_at
from repro.exceptions import AlgorithmContractError, SimulationError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.vector import np
from repro.runtime.vector import (
    PAYLOAD_ACC,
    PAYLOAD_ALIVE,
    PAYLOAD_COV,
    PAYLOAD_DN,
    PAYLOAD_HCOV,
    PAYLOAD_HELLO,
    PAYLOAD_ID,
    PAYLOAD_INT,
    PAYLOAD_MCOV,
    PAYLOAD_PROP,
    PAYLOAD_PROP_ID,
    PAYLOAD_REJ,
    PAYLOAD_SCOV,
    VectorProgram,
)

__all__ = [
    "VectorAllEdges",
    "VectorBoundedDegree",
    "VectorDoubleCover",
    "VectorGreedyMatchingIds",
    "VectorPortOne",
    "VectorRegularOdd",
]

_INF = (1 << 63) - 1


def _flag_outputs(vg, flags, ks, m_port=None):
    """Per-node output frozensets for halting nodes *ks*: the local
    ports whose flag is set, plus the matched port when given.

    One global ``flatnonzero`` + sorted-owner bisection instead of a
    per-node scan — this runs once per halt wave, over every halting
    node, and dominated whole-run time as a per-node loop."""
    selected = np.flatnonzero(flags)
    locs = vg.local[selected].tolist()
    owners = vg.port_node[selected]
    lo = np.searchsorted(owners, ks)
    hi = np.searchsorted(owners, ks, side="right")
    if m_port is None:
        return [
            frozenset(locs[a:b])
            for a, b in zip(lo.tolist(), hi.tolist())
        ]
    matched = m_port[ks].tolist()
    return [
        frozenset(locs[a:b]) | {m} if m >= 0 else frozenset(locs[a:b])
        for a, b, m in zip(lo.tolist(), hi.tolist(), matched)
    ]


# -- Theorem 3 -------------------------------------------------------------


class VectorPortOne(VectorProgram):
    """Theorem 3, vectorised: one total broadcast, then every node halts.

    The selection is one boolean expression over the port axis; outputs
    are memoised like the batch program's.
    """

    __slots__ = ("_outs",)

    def __init__(self, graph: PortNumberedGraph) -> None:
        super().__init__(graph)
        cg = self.cg
        try:
            self._outs = cg.memo["vector_port_one"]
        except KeyError:
            vg = self.vg
            selected = (vg.local == 1) | (vg.peer_local == 1)
            self._outs = vg.port_sets(selected)
            cg.memo["vector_port_one"] = self._outs

    def _step(self, rnd):
        vg = self.vg
        sends = vg.all_ports
        ok = self.deliver(rnd, sends)
        if self.record:
            self.log_sends(sends, PAYLOAD_INT, a=vg.local, delivered=ok)
        ks = np.flatnonzero(self.running)
        self.halt_nodes(ks, [self._outs[k] for k in ks.tolist()])


class VectorAllEdges(VectorProgram):
    """A(1), vectorised: silence, then every node outputs all its ports."""

    __slots__ = ()

    def _step(self, rnd):
        degrees = self.vg.degrees
        ks = np.flatnonzero(self.running)
        self.halt_nodes(
            ks,
            [frozenset(range(1, int(degrees[k]) + 1)) for k in ks.tolist()],
        )


# -- shared Section 5 label machinery --------------------------------------


def _label_tables(vg):
    """Distinguishable ports and pair tags, fully vectorised.

    Returns ``(dn_port, tag_k, tag_i, tag_j, tag_g)`` memoised as
    ``vector_label``: ``dn_port[k]`` is the min-port uniquely-labelled
    edge of node ``k`` (−1 when none), and the tag arrays hold every
    ``pair (i, j) → port`` table entry as ``(node, i, j, global port)``
    rows sorted by ``(node, i, j)`` — the exact content of the batch
    programs' ``port_for_pair`` dicts, with the same Lemma 2 violation
    check.
    """
    cg = vg.cg
    try:
        return cg.memo["vector_label"]
    except KeyError:
        pass
    total = vg.num_ports
    local = vg.local
    peer_local = vg.peer_local
    owner = vg.port_node

    # Pair multiplicity per node: a port's edge label is the unordered
    # pair {i, peer_local}; unique pairs are the distinguishable edges.
    lo = np.minimum(local, peer_local)
    hi = np.maximum(local, peer_local)
    width = int(hi.max()) + 1 if total else 1
    pair_key = (owner * width + lo) * width + hi
    _, inverse, counts = np.unique(
        pair_key, return_inverse=True, return_counts=True
    )
    unique_pair = counts[inverse] == 1
    dn = vg.segment_min(np.where(unique_pair, local, _INF), _INF)
    dn_port = np.where(dn == _INF, -1, dn)

    # Tag rows.  A port g is tagged (i, j) when its own end is the
    # distinguishable port (i = local) or its peer end is (pair
    # reversed) — mirroring BatchLabelAware's two tag sources.
    tag_own = dn_port[owner] == local
    tag_peer = dn_port[vg.peer_node] == peer_local
    gids = vg.all_ports
    tag_k = np.concatenate([owner[tag_own], owner[tag_peer]])
    tag_i = np.concatenate([local[tag_own], peer_local[tag_peer]])
    tag_j = np.concatenate([peer_local[tag_own], local[tag_peer]])
    tag_g = np.concatenate([gids[tag_own], gids[tag_peer]])
    order = np.lexsort((tag_g, tag_j, tag_i, tag_k))
    tag_k = tag_k[order]
    tag_i = tag_i[order]
    tag_j = tag_j[order]
    tag_g = tag_g[order]

    if len(tag_k) > 1:
        same_pair = (
            (tag_k[1:] == tag_k[:-1])
            & (tag_i[1:] == tag_i[:-1])
            & (tag_j[1:] == tag_j[:-1])
        )
        clash = same_pair & (tag_g[1:] != tag_g[:-1])
        if clash.any():
            at = int(np.flatnonzero(clash)[0])
            pair = (int(tag_i[at]), int(tag_j[at]))
            raise SimulationError(
                f"Lemma 2 violated: pair {pair} tags two incident edges "
                f"(ports {int(local[tag_g[at]])} and "
                f"{int(local[tag_g[at + 1]])})"
            )
        keep = np.ones(len(tag_k), dtype=bool)
        keep[1:] = ~same_pair  # duplicate (k, i, j, g) rows collapse
        tag_k = tag_k[keep]
        tag_i = tag_i[keep]
        tag_j = tag_j[keep]
        tag_g = tag_g[keep]

    tables = (dn_port, tag_k, tag_i, tag_j, tag_g)
    cg.memo["vector_label"] = tables
    return tables


def _entry_groups(vg, ent_step, ent_k, ent_g, extra=()):
    """Sort schedule entries by ``(step, node)`` and group by step.

    Returns ``(steps, starts, ent_k, ent_g, ent_peer, *extra_sorted)``
    where ``steps``/``starts`` delimit each step's slice and
    ``ent_peer`` is the absolute index of the mate's entry at the same
    step (−1 when the mate is not scheduled then) — one ``searchsorted``
    replaces the per-round inbox.
    """
    order = np.lexsort((ent_k, ent_step))
    ent_step = ent_step[order]
    ent_k = ent_k[order]
    ent_g = ent_g[order]
    extra_sorted = tuple(column[order] for column in extra)
    total = vg.num_ports
    # Within a step each node appears once, in ascending order, so the
    # (step, gport) key array is strictly increasing.
    keys = ent_step * total + ent_g
    peer_keys = ent_step * total + vg.mate[ent_g]
    if len(keys):
        pos = np.searchsorted(keys, peer_keys)
        pos = np.minimum(pos, len(keys) - 1)
        ent_peer = np.where(keys[pos] == peer_keys, pos, -1)
    else:
        ent_peer = keys
    steps, first = np.unique(ent_step, return_index=True)
    starts = np.append(first, len(ent_step))
    return (steps, starts, ent_k, ent_g, ent_peer) + extra_sorted


def _step_slice(steps, starts, step):
    """The ``(s0, s1)`` slice of *step*'s entries, or ``None``."""
    at = int(np.searchsorted(steps, step))
    if at == len(steps) or steps[at] != step:
        return None
    return int(starts[at]), int(starts[at + 1])


class _VectorLabelAware(VectorProgram):
    """Shared Section 5 setup: precomputed labels, emitted setup rounds."""

    __slots__ = ("dn_port",)

    def __init__(self, graph: PortNumberedGraph) -> None:
        super().__init__(graph)
        self.dn_port = _label_tables(self.vg)[0]

    def _setup_step(self, rnd):
        """Rounds 0 and 1: the ``hello`` / ``dn`` total broadcasts."""
        vg = self.vg
        sends = vg.all_ports
        ok = self.deliver(rnd, sends)
        if self.record:
            if rnd == 0:
                self.log_sends(
                    sends,
                    PAYLOAD_HELLO,
                    a=vg.local,
                    b=vg.degrees[vg.port_node],
                    delivered=ok,
                )
            else:
                self.log_sends(
                    sends,
                    PAYLOAD_DN,
                    a=vg.local == self.dn_port[vg.port_node],
                    delivered=ok,
                )


# -- Theorem 4 -------------------------------------------------------------


def _regular_odd_schedule(vg):
    """The two-phase pair schedule as grouped entry arrays, memoised."""
    cg = vg.cg
    try:
        return cg.memo["vector_regular_odd"]
    except KeyError:
        pass
    _, tag_k, tag_i, tag_j, tag_g = _label_tables(vg)
    d = vg.degrees[tag_k]
    # A pair can name a *peer* port number beyond this node's own
    # degree; the node's d-bounded schedule never reaches it.
    keep = (tag_i <= d) & (tag_j <= d)
    tag_k = tag_k[keep]
    tag_g = tag_g[keep]
    d = d[keep]
    step1 = (tag_i[keep] - 1) * d + (tag_j[keep] - 1)
    ent_step = np.concatenate([step1, step1 + d * d])
    ent_k = np.concatenate([tag_k, tag_k])
    ent_g = np.concatenate([tag_g, tag_g])
    phase2 = np.zeros(len(ent_step), dtype=bool)
    phase2[len(step1):] = True
    groups = _entry_groups(vg, ent_step, ent_k, ent_g, extra=(phase2,))

    degrees = vg.degrees
    halt_k = np.flatnonzero(degrees > 0)
    halt_step = 2 * degrees[halt_k] * degrees[halt_k] - 1
    order = np.lexsort((halt_k, halt_step))
    halt_k = halt_k[order]
    halt_step = halt_step[order]
    halt_steps, first = np.unique(halt_step, return_index=True)
    halt_starts = np.append(first, len(halt_step))

    sched = groups + (halt_steps, halt_starts, halt_k)
    cg.memo["vector_regular_odd"] = sched
    return sched


class VectorRegularOdd(_VectorLabelAware):
    """Theorem 4, vectorised: masked pair steps over flat flag arrays.

    State: ``sel_flag`` (per-port membership in D), ``sel_count`` /
    ``covered`` (per-node).  A step's entries are one slice of the
    grouped schedule; peer bits come from the precomputed peer-entry
    index instead of an inbox.
    """

    __slots__ = ("_sched", "sel_flag", "sel_count", "covered")

    def __init__(self, graph: PortNumberedGraph) -> None:
        super().__init__(graph)
        self._sched = _regular_odd_schedule(self.vg)
        vg = self.vg
        self.sel_flag = np.zeros(vg.num_ports, dtype=bool)
        self.sel_count = np.zeros(vg.num_nodes, dtype=np.int64)
        self.covered = np.zeros(vg.num_nodes, dtype=bool)

    def _step(self, rnd):
        if rnd < 2:
            self._setup_step(rnd)
            return
        step = rnd - 2
        (steps, starts, ent_k, ent_g, ent_peer, ent_ph2,
         halt_steps, halt_starts, halt_k) = self._sched
        found = _step_slice(steps, starts, step)
        if found is not None:
            s0, s1 = found
            ks = ent_k[s0:s1]
            gs = ent_g[s0:s1]
            ph2 = ent_ph2[s0:s1]
            peer = ent_peer[s0:s1]
            run = self.running[ks]
            cov = self.covered[ks]
            sel = self.sel_flag[gs]
            count = self.sel_count[ks]
            # phase 1 sends its covered bit; phase 2 only for D-member
            # ports, the bit saying the endpoint survives removal.
            sending = run & (~ph2 | sel)
            bits = np.where(ph2, count > 1, cov)
            sends = gs[sending]
            ok = self.deliver(rnd, sends)
            if self.record:
                self.log_sends(
                    sends, PAYLOAD_COV, a=bits[sending], delivered=ok
                )
            # peer bits, via each entry's mate entry in the same step
            has_peer = peer >= 0
            rel = peer[has_peer] - s0
            got = np.zeros(s1 - s0, dtype=bool)
            got[has_peer] = sending[rel]
            peer_bits = np.zeros(s1 - s0, dtype=bool)
            peer_bits[has_peer] = bits[rel]
            eligible = run & got
            # phase 1: add unless both endpoints already covered
            add = eligible & ~ph2 & ~(cov & peer_bits)
            if add.any():
                add_g = gs[add]
                fresh = ~self.sel_flag[add_g]
                self.sel_flag[add_g[fresh]] = True
                self.sel_count[ks[add][fresh]] += 1
                self.covered[ks[add]] = True
            # phase 2: remove if both endpoints stay covered without it
            rem = eligible & ph2 & sel & (count > 1) & peer_bits
            if rem.any():
                self.sel_flag[gs[rem]] = False
                self.sel_count[ks[rem]] -= 1
        found = _step_slice(halt_steps, halt_starts, step)
        if found is not None:
            h0, h1 = found
            ks = halt_k[h0:h1]
            ks = ks[self.running[ks]]
            if len(ks):
                self.halt_nodes(ks, _flag_outputs(self.vg, self.sel_flag, ks))


# -- Theorem 5 -------------------------------------------------------------


def _bounded_schedule(vg, delta):
    """Phase lookup table + grouped phase-I entries for Δ' = *delta*."""
    cg = vg.cg
    try:
        return cg.memo["vector_bounded", delta]
    except KeyError:
        pass
    # step → ("I", pair) | ("II", stage, local) | ("III", local),
    # identical to the batch schedule (a function of Δ' alone).
    schedule: list[tuple] = []
    for step in range(delta * delta):
        schedule.append(("I", pair_at(step, delta)))
    for stage in range(2, delta + 1):
        for local in range(1 + 2 * stage):
            schedule.append(("II", stage, local))
    for local in range(1 + 2 * delta):
        schedule.append(("III", local))

    _, tag_k, tag_i, tag_j, tag_g = _label_tables(vg)
    ent_step = (tag_i - 1) * delta + (tag_j - 1)
    groups = _entry_groups(vg, ent_step, tag_k, tag_g)
    memoed = (tuple(schedule), groups)
    cg.memo["vector_bounded", delta] = memoed
    return memoed


class VectorBoundedDegree(_VectorLabelAware):
    """Theorem 5's A(Δ'), vectorised (Δ' odd and ≥ 3).

    Phase I is the grouped pair schedule; phases II/III keep the
    proposal queues as one flat CSR array (``queue_flat`` with per-node
    ``cursor``/``queue_end``) rebuilt at each stage kickoff, so propose
    rounds are a gather and respond rounds a sort + first-occurrence
    mask.  ``m_port``/``m_cov`` track the matching, ``p_flag`` the
    phase III h-edges.
    """

    __slots__ = (
        "delta",
        "schedule",
        "total_steps",
        "_pairs",
        "peer_degree",
        "m_port",
        "m_cov",
        "p_flag",
        "white_eligible",
        "stage_accepted",
        "out_done",
        "accepted_in",
        "queue_flat",
        "queue_end",
        "cursor",
        "proposers",
        "_phase3",
        "_pending",
    )

    def __init__(
        self, graph: PortNumberedGraph, max_degree: int, odd_delta: int
    ) -> None:
        for v in graph.nodes:
            if graph.degree(v) > max_degree:
                raise AlgorithmContractError(
                    f"node degree {graph.degree(v)} exceeds promised bound "
                    f"Δ = {max_degree}"
                )
        super().__init__(graph)
        self.delta = odd_delta
        self.schedule, self._pairs = _bounded_schedule(self.vg, odd_delta)
        self.total_steps = len(self.schedule)
        vg = self.vg
        n = vg.num_nodes
        self.peer_degree = vg.degrees[vg.peer_node]
        self.m_port = np.full(n, -1, dtype=np.int64)
        self.m_cov = np.zeros(n, dtype=bool)
        self.p_flag = np.zeros(vg.num_ports, dtype=bool)
        self.white_eligible = np.zeros(n, dtype=bool)
        self.stage_accepted = np.zeros(n, dtype=bool)
        self.out_done = np.zeros(n, dtype=bool)
        self.accepted_in = np.zeros(n, dtype=bool)
        self.queue_flat = np.zeros(0, dtype=np.int64)
        self.queue_end = np.zeros(n, dtype=np.int64)
        self.cursor = np.zeros(n, dtype=np.int64)
        self.proposers = np.zeros(0, dtype=np.int64)
        self._phase3 = False
        self._pending = None

    def _step(self, rnd):
        if rnd < 2:
            self._setup_step(rnd)
            return
        step = rnd - 2
        located = self.schedule[step]
        kind = located[0]
        if kind == "I":
            self._pair_step(rnd, step)
        else:
            local = located[2] if kind == "II" else located[1]
            if local == 0:
                self._kickoff(rnd, located)
            elif (local - 1) % 2 == 0:
                self._propose(rnd)
            else:
                self._respond(rnd)
        if step + 1 >= self.total_steps:
            ks = np.flatnonzero(self.running)
            if len(ks):
                self.halt_nodes(
                    ks,
                    _flag_outputs(self.vg, self.p_flag, ks, self.m_port),
                )

    def _pair_step(self, rnd, step):
        """Phase I: greedy maximal matching on the M(i, j) edge class."""
        steps, starts, ent_k, ent_g, ent_peer = self._pairs
        found = _step_slice(steps, starts, step)
        if found is None:
            return
        s0, s1 = found
        ks = ent_k[s0:s1]
        gs = ent_g[s0:s1]
        peer = ent_peer[s0:s1]
        cov = self.m_cov[ks]
        ok = self.deliver(rnd, gs)
        if self.record:
            self.log_sends(gs, PAYLOAD_MCOV, a=cov, delivered=ok)
        # Both tagged endpoints of a pair schedule the same step, so
        # every entry's peer slot resolves while any node runs.
        has_peer = peer >= 0
        got = np.zeros(s1 - s0, dtype=bool)
        got[has_peer] = True
        peer_bits = np.zeros(s1 - s0, dtype=bool)
        peer_bits[has_peer] = cov[peer[has_peer] - s0]
        # add to M iff *neither* endpoint is covered (§7 phase I)
        update = got & ~cov & ~peer_bits
        if update.any():
            self.m_port[ks[update]] = self.vg.local[gs[update]]
            self.m_cov[ks[update]] = True

    def _kickoff(self, rnd, located):
        """Stage / phase III boundary: total status broadcast + reset."""
        vg = self.vg
        sends = vg.all_ports
        ok = self.deliver(rnd, sends)
        if self.record:
            code = PAYLOAD_SCOV if located[0] == "II" else PAYLOAD_HCOV
            self.log_sends(
                sends, code, a=self.m_cov[vg.port_node], delivered=ok
            )
        if located[0] == "II":
            self._start_stage(located[1])
        else:
            self._start_h()

    def _set_queues(self, port_mask):
        """Rebuild the flat proposal queues from a per-port mask."""
        vg = self.vg
        queued = np.flatnonzero(port_mask)
        counts = np.bincount(
            vg.port_node[queued], minlength=vg.num_nodes
        )
        self.queue_flat = queued
        self.queue_end = np.cumsum(counts)
        self.cursor = self.queue_end - counts
        self.proposers = np.flatnonzero(counts)

    def _start_stage(self, stage):
        """Stage setup: white/black roles from the scov bits.

        Black (uncovered, degree == stage) nodes queue their ports
        towards uncovered smaller-degree neighbours; whites (uncovered,
        degree < stage) are eligible acceptors.
        """
        vg = self.vg
        degrees = vg.degrees
        uncovered = ~self.m_cov
        self._phase3 = False
        self.white_eligible = uncovered & (degrees < stage)
        self.stage_accepted[:] = False
        owner = vg.port_node
        self._set_queues(
            uncovered[owner]
            & (degrees[owner] == stage)
            & (self.peer_degree < stage)
            & uncovered[vg.peer_node]
        )

    def _start_h(self):
        """Phase III setup: every uncovered node proposes along its
        uncovered neighbours; acceptance state starts clean."""
        vg = self.vg
        uncovered = ~self.m_cov
        self._phase3 = True
        self.accepted_in[:] = False
        self._set_queues(uncovered[vg.port_node] & uncovered[vg.peer_node])
        self.out_done = self.cursor >= self.queue_end

    def _propose(self, rnd):
        props = self.proposers
        if self._phase3:
            live = ~self.out_done[props]
        else:
            live = ~self.stage_accepted[props]
        live &= self.cursor[props] < self.queue_end[props]
        active = props[live]
        sends = self.queue_flat[self.cursor[active]]
        ok = self.deliver(rnd, sends)
        if self.record:
            self.log_sends(sends, PAYLOAD_PROP, delivered=ok)
        self._pending = sends if ok is None else sends[ok]

    def _respond(self, rnd):
        """Group pending proposals per responder; the smallest pending
        port wins when the responder is eligible to accept."""
        vg = self.vg
        src = self._pending
        self._pending = None
        targets = vg.mate[src]
        order = np.argsort(targets)
        tgs = targets[order]
        tks = vg.port_node[tgs]
        first = np.ones(len(tgs), dtype=bool)
        first[1:] = tks[1:] != tks[:-1]
        if self._phase3:
            eligible = ~self.accepted_in[tks]
        else:
            eligible = self.white_eligible[tks] & (self.m_port[tks] < 0)
        acc = first & eligible
        ok = self.deliver(rnd, tgs)
        if self.record:
            codes = np.where(acc, PAYLOAD_ACC, PAYLOAD_REJ)
            self.log_sends(tgs, codes, delivered=ok)
        # responder-side state (the batch program updates at send time)
        winners = tgs[acc]
        acceptors = tks[acc]
        if self._phase3:
            self.p_flag[winners] = True
            self.accepted_in[acceptors] = True
        else:
            self.m_port[acceptors] = vg.local[winners]
            self.m_cov[acceptors] = True
            self.stage_accepted[acceptors] = True
        # proposer-side state (updates on reply delivery)
        delivered = ok if ok is not None else np.ones(len(tgs), dtype=bool)
        sorted_src = src[order]
        acc_src = sorted_src[acc & delivered]
        acc_prop = vg.port_node[acc_src]
        if self._phase3:
            self.p_flag[acc_src] = True
            self.out_done[acc_prop] = True
        else:
            self.m_port[acc_prop] = vg.local[acc_src]
            self.m_cov[acc_prop] = True
            self.stage_accepted[acc_prop] = True
        rej_prop = vg.port_node[sorted_src[~acc & delivered]]
        self.cursor[rej_prop] += 1
        if self._phase3:
            self.out_done[rej_prop] |= (
                self.cursor[rej_prop] >= self.queue_end[rej_prop]
            )


# -- [21] double cover -----------------------------------------------------


class VectorDoubleCover(VectorProgram):
    """The [21] double-cover proposal protocol, vectorised."""

    __slots__ = ("delta", "cursor", "out_done", "accepted_in", "p_flag",
                 "_pending")

    def __init__(self, graph: PortNumberedGraph, max_degree: int) -> None:
        for v in graph.nodes:
            if graph.degree(v) > max_degree:
                raise AlgorithmContractError(
                    f"node degree {graph.degree(v)} exceeds promised bound "
                    f"Δ = {max_degree}"
                )
        super().__init__(graph)
        self.delta = max_degree
        vg = self.vg
        n = vg.num_nodes
        self.cursor = np.zeros(n, dtype=np.int64)  # 0-based propose index
        self.out_done = vg.degrees == 0
        self.accepted_in = np.zeros(n, dtype=bool)
        self.p_flag = np.zeros(vg.num_ports, dtype=bool)
        self._pending = None

    def _step(self, rnd):
        vg = self.vg
        if rnd % 2 == 0:
            # propose sub-round
            active = np.flatnonzero(
                self.running & ~self.out_done & (self.cursor < vg.degrees)
            )
            sends = vg.offsets[active] + self.cursor[active]
            ok = self.deliver(rnd, sends)
            if self.record:
                self.log_sends(sends, PAYLOAD_PROP, delivered=ok)
            self._pending = sends if ok is None else sends[ok]
        else:
            # respond sub-round: smallest pending port wins per node
            src = self._pending
            self._pending = None
            targets = vg.mate[src]
            order = np.argsort(targets)
            tgs = targets[order]
            tks = vg.port_node[tgs]
            first = np.ones(len(tgs), dtype=bool)
            first[1:] = tks[1:] != tks[:-1]
            acc = first & ~self.accepted_in[tks]
            ok = self.deliver(rnd, tgs)
            if self.record:
                codes = np.where(acc, PAYLOAD_ACC, PAYLOAD_REJ)
                self.log_sends(tgs, codes, delivered=ok)
            self.p_flag[tgs[acc]] = True
            self.accepted_in[tks[acc]] = True
            delivered = (
                ok if ok is not None else np.ones(len(tgs), dtype=bool)
            )
            sorted_src = src[order]
            acc_src = sorted_src[acc & delivered]
            acc_prop = vg.port_node[acc_src]
            self.p_flag[acc_src] = True
            self.out_done[acc_prop] = True
            rej_prop = vg.port_node[sorted_src[~acc & delivered]]
            self.cursor[rej_prop] += 1
            self.out_done[rej_prop] |= (
                self.cursor[rej_prop] >= vg.degrees[rej_prop]
            )
        if rnd + 1 >= 2 * self.delta:
            ks = np.flatnonzero(self.running)
            if len(ks):
                self.halt_nodes(ks, _flag_outputs(vg, self.p_flag, ks))


# -- identified-model greedy matching --------------------------------------


class VectorGreedyMatchingIds(VectorProgram):
    """The identified-model greedy maximal matching, vectorised.

    Nodes halt as soon as they are matched or exhausted, so this kernel
    genuinely exercises the drop accounting of :meth:`deliver`.  Raises
    :class:`OverflowError` when an identifier does not fit int64 — the
    factory hook turns that into a compiled-engine fallback.
    """

    __slots__ = ("uid", "nid", "proposed", "accepted", "_pending")

    def __init__(self, graph: PortNumberedGraph, ids) -> None:
        super().__init__(graph)
        cg = self.cg
        # OverflowError here (id beyond int64) aborts vectorisation.
        self.uid = np.array([ids[v] for v in cg.nodes], dtype=np.int64)
        vg = self.vg
        self.nid = (
            self.uid[vg.peer_node]
            if vg.num_nodes
            else np.zeros(0, dtype=np.int64)
        )
        n = vg.num_nodes
        self.proposed = np.full(n, -1, dtype=np.int64)  # gport or -1
        self.accepted = np.full(n, -1, dtype=np.int64)  # local port or -1
        self._pending = None

    def _step(self, rnd):
        vg = self.vg
        running = self.running
        if rnd == 0:
            sends = vg.all_ports  # id exchange: nobody halted yet
            ok = self.deliver(rnd, sends)
            if self.record:
                self.log_sends(
                    sends,
                    PAYLOAD_ID,
                    a=self.uid[vg.port_node],
                    delivered=ok,
                )
            return
        phase = (rnd - 1) % 3
        if phase == 0:
            # status broadcast; running nodes keep addressing halted
            # neighbours, so this is where sends drop.
            sends = np.flatnonzero(running[vg.port_node])
            ok = self.deliver(rnd, sends)
            if self.record:
                self.log_sends(sends, PAYLOAD_ALIVE, delivered=ok)
            # a port hears "alive" iff its peer's owner is running
            alive = running[vg.peer_node]
            key = np.where(alive, self.nid, _INF)
            min_id = vg.segment_min(key, _INF)
            has_alive = vg.segment_min(
                np.where(alive, 0, 1).astype(np.int64), 1
            ) == 0
            finished = running & ~has_alive
            candidates = np.where(
                alive & (self.nid == min_id[vg.port_node]),
                vg.all_ports,
                _INF,
            )
            best = vg.segment_min(candidates, _INF)
            proposers = running & has_alive & (min_id < self.uid)
            self.proposed[:] = -1
            self.proposed[proposers] = best[proposers]
            self.accepted[:] = -1
            done = np.flatnonzero(finished)
            if len(done):
                self.halt_nodes(done, [frozenset()] * len(done))
        elif phase == 1:
            sources = np.flatnonzero(self.proposed >= 0)
            sends = self.proposed[sources]
            ok = self.deliver(rnd, sends)
            if self.record:
                self.log_sends(
                    sends, PAYLOAD_PROP_ID, a=self.uid[sources], delivered=ok
                )
            self._pending = sends if ok is None else sends[ok]
        else:
            src = self._pending
            self._pending = None
            targets = vg.mate[src]
            responders = vg.port_node[targets]
            proposer_uid = self.uid[vg.port_node[src]]
            # replies per responder, proposals ordered by (uid, port)
            order = np.lexsort(
                (vg.local[targets], proposer_uid, responders)
            )
            tgs = targets[order]
            tks = responders[order]
            first = np.ones(len(tgs), dtype=bool)
            first[1:] = tks[1:] != tks[:-1]
            acc = first & (self.proposed[tks] < 0)
            ok = self.deliver(rnd, tgs)
            if self.record:
                codes = np.where(acc, PAYLOAD_ACC, PAYLOAD_REJ)
                self.log_sends(tgs, codes, delivered=ok)
            winners = tgs[acc]
            acceptors = tks[acc]
            self.accepted[acceptors] = vg.local[winners]
            delivered = (
                ok if ok is not None else np.ones(len(tgs), dtype=bool)
            )
            sorted_src = src[order]
            matched_src = sorted_src[acc & delivered]
            matched = vg.port_node[matched_src]
            halting = np.concatenate([acceptors, matched])
            out_port = np.concatenate(
                [vg.local[winners], vg.local[matched_src]]
            )
            by_node = np.argsort(halting)
            halting = halting[by_node]
            out_port = out_port[by_node]
            if len(halting):
                self.halt_nodes(
                    halting,
                    [frozenset({int(p)}) for p in out_port.tolist()],
                )
            self.proposed[:] = -1
