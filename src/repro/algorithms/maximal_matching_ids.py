"""Baseline: distributed maximal matching with unique identifiers.

Paper §1.3 recalls that with unique node identifiers any distributed
maximal matching algorithm yields a 2-approximation of the minimum edge
dominating set.  This module provides a simple deterministic protocol in
the identified model, used by the evaluation harness to quantify the
price of anonymity.

Protocol (phases of three rounds after an id-exchange round):

1. *status* — every unmatched node announces it is still available;
   silence means a neighbour is matched or exhausted.
2. *propose* — every unmatched node whose smallest-id available neighbour
   has a *smaller* id than its own proposes to it; nodes that are local
   minima of the available subgraph stay silent and act as acceptors.
   The role split guarantees a proposer can never simultaneously be
   accepted and accept someone else, which would break the output's
   internal consistency.
3. *respond* — acceptors accept the smallest-id proposer and reject the
   rest; proposers reject any proposals they received.  Accepted pairs
   halt with the matched edge.

In every phase the globally smallest available id that still has an
available neighbour gets matched (all its available neighbours propose to
it), so the algorithm terminates within ``n`` phases — O(n) worst-case
rounds.  This is intentionally the simplest correct baseline, not the
O(Δ + log* n) algorithm of Panconesi-Rizzi [19]: its role in the harness
is approximation-quality comparison, not round-complexity racing.
"""

from __future__ import annotations

from typing import Mapping

from repro.runtime.algorithm import Message, NodeProgram

__all__ = ["GreedyMaximalMatchingIds"]

_PHASE_LEN = 3  # status, propose, respond


class GreedyMaximalMatchingIds(NodeProgram):
    """Identified-model greedy maximal matching (2-approx EDS baseline).

    Use with :func:`repro.runtime.run_identified`::

        run_identified(graph, GreedyMaximalMatchingIds)
    """

    def __init__(self, degree: int, uid: int) -> None:
        super().__init__(degree)
        self.uid = uid
        self.neighbour_id: dict[int, int] = {}
        self.proposed_port: int | None = None
        self.pending: list[tuple[int, int]] = []  # (peer id, port)
        self.accepted_port: int | None = None

    def send(self, rnd: int) -> Mapping[int, Message]:
        ports = range(1, self.degree + 1)
        if rnd == 0:
            return {i: ("id", self.uid) for i in ports}
        phase_round = (rnd - 1) % _PHASE_LEN
        if phase_round == 0:
            return {i: ("alive",) for i in ports}
        if phase_round == 1:
            if self.proposed_port is not None:
                return {self.proposed_port: ("prop", self.uid)}
            return {}
        # respond round
        replies: dict[int, Message] = {}
        if self.pending:
            self.pending.sort()
            if self.proposed_port is None:
                # acceptor: take the smallest-id proposer
                self.accepted_port = self.pending[0][1]
                replies[self.accepted_port] = ("acc",)
                losers = self.pending[1:]
            else:
                losers = self.pending
            for _, port in losers:
                replies[port] = ("rej",)
        return replies

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        if rnd == 0:
            for i, (_, uid) in inbox.items():
                self.neighbour_id[i] = uid
            return
        phase_round = (rnd - 1) % _PHASE_LEN
        if phase_round == 0:
            alive = [i for i, msg in inbox.items() if msg == ("alive",)]
            if not alive:
                self.halt(frozenset())  # no partner can ever appear
                return
            best = min(alive, key=lambda i: (self.neighbour_id[i], i))
            if self.neighbour_id[best] < self.uid:
                self.proposed_port = best  # proposer this phase
            else:
                self.proposed_port = None  # local minimum: acceptor
            self.pending = []
            self.accepted_port = None
        elif phase_round == 1:
            self.pending = [
                (msg[1], i)
                for i, msg in inbox.items()
                if isinstance(msg, tuple) and msg and msg[0] == "prop"
            ]
        else:
            if self.accepted_port is not None:
                self.halt({self.accepted_port})
                return
            if self.proposed_port is not None:
                if inbox.get(self.proposed_port) == ("acc",):
                    self.halt({self.proposed_port})
                    return
            self.proposed_port = None

    @classmethod
    def batch_program(cls, graph, ids):
        """Opt in to the compiled scheduler's batch stepping."""
        from repro.algorithms.batch import BatchGreedyMatchingIds

        return BatchGreedyMatchingIds(graph, ids)

    @classmethod
    def vector_program(cls, graph, ids):
        """Opt in to the numpy vector engine.

        Returns ``None`` (→ compiled fallback) without numpy or when an
        identifier does not fit the engine's int64 id arrays.
        """
        from repro.runtime.vector import vector_available

        if not vector_available():
            return None
        from repro.algorithms.vector import VectorGreedyMatchingIds

        try:
            return VectorGreedyMatchingIds(graph, ids)
        except OverflowError:
            return None


# Registered where it is defined: work units reach this program by name.
from repro.registry.algorithms import register_identified  # noqa: E402

register_identified(
    "ids_greedy",
    lambda graph: GreedyMaximalMatchingIds,
    description="identified-model greedy maximal matching baseline",
)
