"""Theorem 3: the O(1)-time algorithm for regular graphs.

    "The algorithm outputs all edges that are connected to a port with
    port number 1."  (paper Section 6)

An edge ``{u, v}`` is selected iff ``l(u, v) = 1`` or ``l(v, u) = 1``.
Every node is covered (its own port 1 selects an edge), so the output is
an edge cover and hence an edge dominating set; on a d-regular graph
``|D| <= |V| = 2|E|/d`` while the optimum is at least ``|E|/(2d - 1)``,
giving the tight factor ``4 - 2/d`` for even ``d`` (Theorem 1 shows no
algorithm does better).

The protocol is a single round: each node tells each neighbour which of
its ports the shared edge uses; a node then selects port 1 plus every
port whose peer port is 1.  The output is internally consistent by
construction (both endpoints see the same pair of port numbers).
"""

from __future__ import annotations

from typing import Mapping

from repro.runtime.algorithm import Message, NodeProgram

__all__ = ["PortOneEDS"]


class PortOneEDS(NodeProgram):
    """Select every edge incident to a port numbered 1 (Theorem 3).

    Usable directly as an anonymous algorithm factory::

        run_anonymous(graph, PortOneEDS)

    Defined for every graph; the ``4 - 2/d`` guarantee applies to
    d-regular inputs (for odd regular graphs Theorem 4's algorithm has a
    strictly better ratio).
    """

    ROUNDS = 1

    def send(self, rnd: int) -> Mapping[int, Message]:
        return {i: i for i in range(1, self.degree + 1)}

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        selected = {
            i for i, peer_port in inbox.items() if i == 1 or peer_port == 1
        }
        self.halt(selected)

    @classmethod
    def batch_program(cls, graph):
        """Opt in to the compiled scheduler's batch stepping."""
        from repro.algorithms.batch import BatchPortOne

        return BatchPortOne(graph)

    @classmethod
    def vector_program(cls, graph):
        """Opt in to the numpy vector engine (``None`` without numpy)."""
        from repro.runtime.vector import vector_available

        if not vector_available():
            return None
        from repro.algorithms.vector import VectorPortOne

        return VectorPortOne(graph)


# Registered where it is defined: work units reach this program by name.
from repro.registry.algorithms import register_anonymous  # noqa: E402

register_anonymous(
    "port_one",
    lambda graph: PortOneEDS,
    description="Theorem 3: O(1) rounds, ratio 4 - 2/d on d-regular graphs",
)
