"""Theorem 4: the O(d²)-time algorithm for d-regular graphs of odd degree.

The algorithm (paper Section 6) builds an edge dominating set ``D`` in two
phases over the matchings ``M(i, j)`` of Section 5:

* **Phase I** — for each pair ``(i, j)`` (sequentially, one synchronous
  step per pair) process all edges of ``M(i, j)`` in parallel: skip an
  edge if both endpoints are already covered by ``D``, otherwise add it.
  Because every node of an odd-degree-regular graph has a distinguishable
  neighbour (Lemma 1), the union of the ``M(i, j)`` covers every node, so
  phase I produces an *edge cover*; since an edge is never added when both
  endpoints are covered, the cover is a forest.

* **Phase II** — for each pair ``(i, j)`` again, process the edges of
  ``D ∩ M(i, j)`` in parallel: remove an edge when both its endpoints stay
  covered by ``D`` minus the edge.  This leaves a forest of node-disjoint
  stars (no path of three edges survives), hence
  ``|D| <= d|V|/(d + 1) <= (4 - 6/(d+1)) |D*|``.

Each pair step costs one communication round (the endpoints of the unique
incident ``M(i, j)`` edge exchange one coverage bit and then take the same
decision), so the whole algorithm runs in ``2d² + 2`` rounds — matching
the paper's ``O(d²)`` bound and independent of the number of nodes.

The node programs use their own degree as ``d``; running the algorithm on
a non-regular graph violates its contract (nodes would disagree on the
schedule).  Use :class:`~repro.algorithms.bounded_degree.BoundedDegreeEDS`
for general bounded-degree graphs.
"""

from __future__ import annotations

from typing import Mapping

from repro.algorithms.base import LabelAwareProgram, pair_at
from repro.runtime.algorithm import Message

__all__ = ["RegularOddEDS"]


class RegularOddEDS(LabelAwareProgram):
    """The two-phase Theorem 4 algorithm.

    Usable directly as an anonymous algorithm factory::

        run_anonymous(graph, RegularOddEDS)

    Feasibility (the output being an edge dominating set) is guaranteed
    for d-regular graphs with d odd; the program runs to completion on any
    graph, mirroring the model (a distributed algorithm cannot check
    global regularity), and the harness validates outputs externally.
    """

    __slots__ = ("selected", "covered")

    def __init__(self, degree: int) -> None:
        super().__init__(degree)
        #: ports of edges currently in D
        self.selected: set[int] = set()
        #: whether this node is covered by D
        self.covered = False

    # -- schedule ----------------------------------------------------------
    #
    # step t in [0, d^2)        : phase I,  pair #t
    # step t in [d^2, 2 d^2)    : phase II, pair #(t - d^2)
    # after the last step the node halts with its selected ports.

    def _phase_pair(self, step: int) -> tuple[int, tuple[int, int]] | None:
        d = self.degree
        if step < d * d:
            return (1, pair_at(step, d))
        if step < 2 * d * d:
            return (2, pair_at(step - d * d, d))
        return None

    def _active_port(self, phase: int, pair: tuple[int, int]) -> int | None:
        """My port participating in this pair step, if any."""
        port = self.port_for_pair.get(pair)
        if port is None:
            return None
        if phase == 2 and port not in self.selected:
            return None  # phase II only processes edges of D ∩ M(i, j)
        return port

    def algo_send(self, step: int) -> Mapping[int, Message]:
        located = self._phase_pair(step)
        if located is None:
            return {}
        phase, pair = located
        port = self._active_port(phase, pair)
        if port is None:
            return {}
        if phase == 1:
            # coverage bit: is this endpoint already covered by D?
            return {port: ("cov", self.covered)}
        # phase II: would this endpoint stay covered without this edge?
        stays_covered = bool(self.selected - {port})
        return {port: ("cov", stays_covered)}

    def algo_receive(self, step: int, inbox: Mapping[int, Message]) -> None:
        located = self._phase_pair(step)
        if located is not None:
            phase, pair = located
            port = self._active_port(phase, pair)
            if port is not None and port in inbox:
                _, peer_bit = inbox[port]
                if phase == 1:
                    self._phase1_decide(port, peer_bit)
                else:
                    self._phase2_decide(port, peer_bit)
        if step + 1 >= 2 * self.degree * self.degree:
            self.halt(self.selected)

    def _phase1_decide(self, port: int, peer_covered: bool) -> None:
        """Add the edge unless both endpoints are already covered."""
        if self.covered and peer_covered:
            return
        self.selected.add(port)
        self.covered = True

    def _phase2_decide(self, port: int, peer_stays: bool) -> None:
        """Remove the edge if both endpoints stay covered without it."""
        mine_stays = bool(self.selected - {port})
        if mine_stays and peer_stays:
            self.selected.discard(port)

    @staticmethod
    def total_rounds(d: int) -> int:
        """The exact number of rounds the program takes on d-regular input."""
        return 2 + 2 * d * d

    @classmethod
    def batch_program(cls, graph):
        """Opt in to the compiled scheduler's batch stepping."""
        from repro.algorithms.batch import BatchRegularOdd

        return BatchRegularOdd(graph)

    @classmethod
    def vector_program(cls, graph):
        """Opt in to the numpy vector engine (``None`` without numpy)."""
        from repro.runtime.vector import vector_available

        if not vector_available():
            return None
        from repro.algorithms.vector import VectorRegularOdd

        return VectorRegularOdd(graph)


# Registered where it is defined: work units reach this program by name.
from repro.registry.algorithms import register_anonymous  # noqa: E402

register_anonymous(
    "regular_odd",
    lambda graph: RegularOddEDS,
    description=(
        "Theorem 4: O(d^2) rounds, ratio 4 - 6/(d+1) on odd-d-regular "
        "graphs"
    ),
)
