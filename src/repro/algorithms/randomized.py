"""Randomised maximal matching in anonymous networks (Israeli-Itai style).

Deterministic anonymous algorithms cannot even find a maximal matching
in a symmetric cycle (paper §1.4: classical packing problems "are
typically unsolvable for trivial reasons"); this module shows that
private coins dissolve the obstruction.  The protocol is a simplified
Israeli-Itai round structure:

* *status* — unmatched nodes announce themselves; a node with no
  unmatched neighbours halts (its incident edges are all dominated).
* *propose* — each unmatched node flips a fair coin; heads makes it a
  proposer this phase, and it proposes to a uniformly random unmatched
  neighbour.  Tails makes it an acceptor.
* *respond* — acceptors accept one pending proposal (smallest port);
  proposers never accept, so an accepted proposal matches exactly two
  nodes.  Matched pairs halt with the shared edge.

In every phase an edge between two unmatched nodes survives with
constant probability of getting matched at an endpoint, so the protocol
terminates in O(log n) phases with high probability; the simulator's
round limit provides the (astronomically unlikely) failure guard.  The
output is always a maximal matching — hence a 2-approximate EDS — which
quantifies exactly what the paper's deterministic lower bounds cost.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.runtime.algorithm import Message, NodeProgram

__all__ = ["RandomizedMaximalMatching"]

_PHASE_LEN = 3  # status, propose, respond


class RandomizedMaximalMatching(NodeProgram):
    """Anonymous randomised maximal matching.

    Use with :func:`repro.runtime.randomized.run_randomized`::

        run_randomized(graph, RandomizedMaximalMatching, seed=42)
    """

    def __init__(self, degree: int, rng: random.Random) -> None:
        super().__init__(degree)
        self.rng = rng
        self.alive_ports: list[int] = list(range(1, degree + 1))
        self.proposed_port: int | None = None
        self.is_proposer = False
        self.pending: list[int] = []
        self.accepted_port: int | None = None

    def send(self, rnd: int) -> Mapping[int, Message]:
        phase_round = rnd % _PHASE_LEN
        if phase_round == 0:
            return {i: ("alive",) for i in range(1, self.degree + 1)}
        if phase_round == 1:
            if self.is_proposer and self.proposed_port is not None:
                return {self.proposed_port: ("prop",)}
            return {}
        replies: dict[int, Message] = {}
        if self.pending:
            if not self.is_proposer:
                self.pending.sort()
                self.accepted_port = self.pending[0]
                replies[self.accepted_port] = ("acc",)
                losers = self.pending[1:]
            else:
                losers = self.pending
            for port in losers:
                replies[port] = ("rej",)
        return replies

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        phase_round = rnd % _PHASE_LEN
        if phase_round == 0:
            self.alive_ports = sorted(
                i for i, msg in inbox.items() if msg == ("alive",)
            )
            if not self.alive_ports:
                self.halt(frozenset())
                return
            self.is_proposer = self.rng.random() < 0.5
            self.proposed_port = (
                self.rng.choice(self.alive_ports) if self.is_proposer else None
            )
            self.pending = []
            self.accepted_port = None
        elif phase_round == 1:
            self.pending = [
                i for i, msg in inbox.items() if msg == ("prop",)
            ]
        else:
            if self.accepted_port is not None:
                self.halt({self.accepted_port})
                return
            if (
                self.proposed_port is not None
                and inbox.get(self.proposed_port) == ("acc",)
            ):
                self.halt({self.proposed_port})


# Registered where it is defined: work units reach this program by name.
# The engine hands every unit a content-hash-derived rng_seed, which is
# what makes randomised runs cache-correct and byte-reproducible.
from repro.registry.algorithms import register_randomized  # noqa: E402

register_randomized(
    "randomized_matching",
    lambda graph: RandomizedMaximalMatching,
    description=(
        "anonymous randomised maximal matching (Israeli-Itai style); "
        "2-approximate EDS with private coins"
    ),
)
