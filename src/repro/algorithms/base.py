"""Shared message-passing machinery for the paper's algorithms.

Both Theorem 4 and Theorem 5 begin by computing, at every node, the
Section 5 data: the label pair of every incident edge, the node's
distinguishable edge (if any), and for every incident edge the set of
pairs ``(i, j)`` with ``edge ∈ M(i, j)``.  This takes two rounds:

* round 0 — every node sends ``(port number, degree)`` over every port;
  afterwards each node knows, per port, the peer's port number (hence
  every label pair) and the peer's degree (needed by Theorem 5 phase II);
* round 1 — every node announces over each port whether that edge is its
  distinguishable edge; afterwards both endpoints of every edge know all
  of the edge's ``M(i, j)`` memberships.

:class:`LabelAwareProgram` implements these rounds and then delegates to
the subclass hooks ``algo_send`` / ``algo_receive`` with a rebased round
counter.  The distributed computation is the message-passing counterpart
of the centralised :mod:`repro.portgraph.labels`; the test suite checks
they agree on every graph.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.exceptions import SimulationError
from repro.runtime.algorithm import Message, NodeProgram

__all__ = ["LabelAwareProgram", "pair_schedule_index", "pair_at"]

SETUP_ROUNDS = 2


def pair_at(step: int, bound: int) -> tuple[int, int]:
    """The ``step``-th pair of the lexicographic schedule over 1..bound."""
    if not 0 <= step < bound * bound:
        raise ValueError(f"step {step} outside 0..{bound * bound - 1}")
    return (step // bound + 1, step % bound + 1)


def pair_schedule_index(i: int, j: int, bound: int) -> int:
    """Inverse of :func:`pair_at`."""
    return (i - 1) * bound + (j - 1)


class LabelAwareProgram(NodeProgram):
    """Node program with the Section 5 setup phase built in.

    After the two setup rounds the following attributes are available:

    peer_port:
        ``peer_port[i] = j`` where ``p(v, i) = (u, j)``.
    peer_degree:
        the degree of the neighbour behind each port.
    distinguishable_port:
        the port of this node's distinguishable edge, or ``None``
        (Lemma 1: always set when the degree is odd).
    m_port_tags:
        ``m_port_tags[p]`` is the set of pairs ``(i, j)`` such that the
        edge at port ``p`` belongs to ``M(i, j)``.
    port_for_pair:
        inverse lookup; by Lemma 2 each pair selects at most one incident
        edge, which this mapping exploits (violations raise
        :class:`SimulationError`, making Lemma 2 an executable invariant).
    """

    __slots__ = (
        "peer_port",
        "peer_degree",
        "distinguishable_port",
        "m_port_tags",
        "port_for_pair",
    )

    def __init__(self, degree: int) -> None:
        super().__init__(degree)
        self.peer_port: dict[int, int] = {}
        self.peer_degree: dict[int, int] = {}
        self.distinguishable_port: int | None = None
        self.m_port_tags: dict[int, frozenset[tuple[int, int]]] = {}
        self.port_for_pair: dict[tuple[int, int], int] = {}

    # -- subclass hooks --------------------------------------------------

    def algo_send(self, step: int) -> Mapping[int, Message]:
        """Post-setup sending; *step* counts from 0."""
        raise NotImplementedError

    def algo_receive(self, step: int, inbox: Mapping[int, Message]) -> None:
        """Post-setup receiving; *step* counts from 0."""
        raise NotImplementedError

    def setup_finished(self) -> None:
        """Called once after round 1's receive; optional subclass hook."""

    # -- the setup protocol ----------------------------------------------

    def send(self, rnd: int) -> Mapping[int, Message]:
        ports = range(1, self.degree + 1)
        if rnd == 0:
            return {i: ("hello", i, self.degree) for i in ports}
        if rnd == 1:
            return {
                i: ("dn", i == self.distinguishable_port) for i in ports
            }
        return self.algo_send(rnd - SETUP_ROUNDS)

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        if rnd == 0:
            self._receive_hello(inbox)
        elif rnd == 1:
            self._receive_dn(inbox)
            self.setup_finished()
        else:
            self.algo_receive(rnd - SETUP_ROUNDS, inbox)

    def _receive_hello(self, inbox: Mapping[int, Message]) -> None:
        if len(inbox) != self.degree:
            raise SimulationError(
                f"setup round 0 expected {self.degree} messages, "
                f"got {len(inbox)}"
            )
        for i, payload in inbox.items():
            tag, j, peer_degree = payload
            if tag != "hello":
                raise SimulationError(f"unexpected round-0 payload {payload!r}")
            self.peer_port[i] = j
            self.peer_degree[i] = peer_degree
        self.distinguishable_port = self._compute_distinguishable_port()

    def _compute_distinguishable_port(self) -> int | None:
        """Port of the min-port uniquely labelled edge (paper Section 5)."""
        pair_of = {
            i: frozenset({i, self.peer_port[i]})
            for i in range(1, self.degree + 1)
        }
        multiplicity = Counter(pair_of.values())
        for i in range(1, self.degree + 1):
            if multiplicity[pair_of[i]] == 1:
                return i
        return None

    def _receive_dn(self, inbox: Mapping[int, Message]) -> None:
        tags: dict[int, set[tuple[int, int]]] = {
            i: set() for i in range(1, self.degree + 1)
        }
        # Edge at my port p is in M(p, peer_port[p]) when it is my
        # distinguishable edge ...
        if self.distinguishable_port is not None:
            p = self.distinguishable_port
            tags[p].add((p, self.peer_port[p]))
        # ... and in M(peer_port[p], p) when the peer declared it.
        for i, payload in inbox.items():
            tag, is_peer_dn = payload
            if tag != "dn":
                raise SimulationError(f"unexpected round-1 payload {payload!r}")
            if is_peer_dn:
                tags[i].add((self.peer_port[i], i))

        self.m_port_tags = {i: frozenset(ts) for i, ts in tags.items()}
        for port, ts in self.m_port_tags.items():
            for pair in ts:
                if pair in self.port_for_pair:
                    raise SimulationError(
                        f"Lemma 2 violated: pair {pair} tags two incident "
                        f"edges (ports {self.port_for_pair[pair]} and {port})"
                    )
                self.port_for_pair[pair] = port
