"""Command-line interface for the reproduction harness.

Examples
--------
::

    repro-eds table1 --workers 4
    repro-eds figure 4
    repro-eds figure all --workers 4
    repro-eds rounds --degrees 1,3,5,7 --sizes 16,32,64
    repro-eds average --instances 3
    repro-eds ablation --workers 2
    repro-eds sweep --scenario default --workers 4
    repro-eds sweep --scenario large-regular --workers 8 --jsonl out.jsonl
    repro-eds sweep --no-cache --degrees 3,5 --sizes 16 --seeds 2
    repro-eds sweep --backend inline --degrees 2,3 --sizes 12 --seeds 1
    repro-eds sweep --algorithms randomized_matching --measure messages
    repro-eds sweep --scenario default --cache-max-size 64MiB
    repro-eds compare
    repro-eds compare --families regular --degrees 3,5 --sizes 12,16
    repro-eds compare --algorithms port_one,greedy_mds_line,central_optimal
    repro-eds plugins
    repro-eds messages --degrees 3,5 --sizes 16,32,64
    repro-eds cache stats
    repro-eds cache gc --max-size 64MiB --max-age 7d
    repro-eds cache clear
    repro-eds demo --family regular -d 3 -n 16 --algorithm regular_odd
    repro-eds profile --scenario large-regular --limit 6
    repro-eds profile --scenario xlarge-regular --limit 2 --optimum lower_bound
    repro-eds sweep --scenario default --trace sweep-trace.jsonl
    repro-eds -v sweep --scenario default

Global flags: ``-v/--verbose`` (debug logging for ``repro.*``) and
``-q`` (warnings only) go before the subcommand; ``--trace PATH`` on
sweep/table1/compare/figure/messages/profile writes a JSONL telemetry
sidecar (see ``repro.obs``).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Sequence

from repro import api
from repro.analysis.report import format_table
from repro.analysis.runner import AlgorithmSpec, run_on
from repro.engine import (
    BACKEND_NAMES,
    DEFAULT_CACHE_DIR,
    FIGURE_IDS,
    ProgressPrinter,
    ResultCache,
    derive_seed,
    figure_units,
    get_scenario,
    scenario_names,
)
from repro.engine.cache import human_bytes, parse_age, parse_size
from repro.engine.spec import OPTIMUM_MODES
from repro.experiments.ablation import format_ablations, run_ablations
from repro.experiments.compare import (
    COMPARE_FAMILIES,
    comparison_units,
    format_comparison,
    run_comparison,
)
from repro.experiments.messages import (
    format_messages,
    message_complexity_sweep,
)
from repro.experiments.sweeps import (
    average_case_sweep,
    format_average_case,
    format_round_complexity,
    round_complexity_sweep,
)
from repro.experiments.table1 import format_table1, reproduce_table1
from repro.generators.bounded import grid, random_bounded_degree
from repro.generators.pairing import pairing_regular
from repro.generators.regular import cycle, random_regular
from repro.exceptions import SimulationError
from repro.obs import (
    TRACE_FORMATS,
    configure_logging,
    render_report,
    report_json_dict,
    telemetry,
    write_perfetto,
    write_trace,
)
from repro.obs.perf import (
    DEFAULT_BASELINE_RUNS,
    DEFAULT_LEDGER_PATH,
    DEFAULT_MIN_PHASE_S,
    DEFAULT_THRESHOLD,
    append_entry,
    compare_ledger,
    entry_from_sessions,
    format_entry,
    format_ledger,
    read_ledger,
)
from repro.registry import (
    algorithm_names,
    get_measure,
    measure_names,
    resolve,
)
from repro.runtime import ENGINES, engines_available, use_engine

__all__ = ["main", "build_parser"]

logger = logging.getLogger(__name__)


def _int_list(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part)


def _str_list(text: str) -> tuple[str, ...]:
    return tuple(part for part in text.split(",") if part)


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="shard work units across N processes (default: serial)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default="auto",
        help="execution backend: 'inline' (zero-overhead serial), "
        "'thread', 'process' (multiprocessing fan-out), or 'auto' "
        "(probe per-unit cost, fan out only when pool startup pays off; "
        "default)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="serve repeated work units from the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )


def _engine_cache(args: argparse.Namespace) -> ResultCache | None:
    return api.as_cache(args.cache, cache_dir=args.cache_dir)


def _add_cache_max_size_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-max-size", default=None, metavar="SIZE",
        help="after the run, evict least recently written cache "
        "records until the cache fits SIZE (opt-in gc automation; "
        "this run's records are refreshed first and evicted last)",
    )


def _cache_max_bytes(args: argparse.Namespace) -> int | None:
    """The parsed ``--cache-max-size`` cap (None when not requested)."""
    if args.cache_max_size is None:
        return None
    return parse_size(args.cache_max_size)


def _grid_measures() -> tuple[str, ...]:
    """Measures usable on declarative grids (``sweep --measure``)."""
    return tuple(
        name for name in measure_names() if get_measure(name).grid_safe
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a telemetry trace sidecar to PATH (per-unit "
        "phase spans, runtime counters, cache latencies; never written "
        "into the cache directory)",
    )
    parser.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default="jsonl",
        help="trace sidecar format: 'jsonl' (one JSON object per line, "
        "jq-friendly) or 'perfetto' (Chrome trace-event JSON — open it "
        "at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--mem", action="store_true",
        help="also capture per-phase memory (tracemalloc peaks + RSS) "
        "while telemetry is active; opt-in because allocation tracking "
        "costs real time",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eds",
        description=(
            "Reproduction of Suomela, 'Distributed Algorithms for Edge "
            "Dominating Sets' (PODC 2010)."
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="enable debug logging for the repro.* loggers "
        "(goes before the subcommand)",
    )
    parser.add_argument(
        "-q", dest="log_quiet", action="store_true",
        help="only log warnings and errors (goes before the subcommand)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="reproduce Table 1 (E1-E3)")
    t1.add_argument("--even", type=_int_list, default=(2, 4, 6, 8, 10, 12))
    t1.add_argument("--odd", type=_int_list, default=(1, 3, 5, 7, 9))
    t1.add_argument("--ks", type=_int_list, default=(1, 2, 3, 4, 5))
    _add_engine_flags(t1)
    _add_trace_flag(t1)

    fig = sub.add_parser(
        "figure",
        help="reproduce a figure (E5-E11) through the engine "
        "(parallel across figures, cached like any sweep)",
    )
    fig.add_argument("figure_id", choices=[*FIGURE_IDS, "all"])
    _add_engine_flags(fig)
    _add_trace_flag(fig)

    rounds = sub.add_parser("rounds", help="round-complexity sweep (E4)")
    rounds.add_argument("--degrees", type=_int_list, default=(1, 3, 5, 7))
    rounds.add_argument("--sizes", type=_int_list, default=(16, 32, 64))
    rounds.add_argument("--workers", type=int, default=1)

    avg = sub.add_parser("average", help="average-case sweep (E12)")
    avg.add_argument("--instances", type=int, default=5)
    avg.add_argument("--seed", type=int, default=0)
    avg.add_argument("--workers", type=int, default=1)

    abl = sub.add_parser("ablation", help="ablation studies (E13)")
    _add_engine_flags(abl)

    msg = sub.add_parser(
        "messages",
        help="message-complexity sweep (E17) through the engine",
    )
    msg.add_argument("--degrees", type=_int_list, default=(3, 5),
                     help="odd degree parameters, e.g. 3,5")
    msg.add_argument("--sizes", type=_int_list, default=(16, 32, 64))
    msg.add_argument("--seed", type=int, default=0)
    msg.add_argument(
        "--algorithms", type=_str_list, default=None,
        help="override the profiled algorithms, e.g. "
        "port_one,randomized_matching",
    )
    _add_engine_flags(msg)
    _add_trace_flag(msg)

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative grid through the parallel experiment "
        "engine (sharded workers + content-addressed result cache)",
    )
    sweep.add_argument(
        "--scenario", choices=scenario_names(), default="default",
        help="named grid to run (default: 'default')",
    )
    sweep.add_argument(
        "--degrees", type=_int_list, default=None,
        help="override the scenario's degree axis, e.g. 2,3,4",
    )
    sweep.add_argument(
        "--family", default=None,
        help="override the scenario's graph family (grid families: "
        "regular, pairing_regular, bounded) — e.g. run the "
        "xlarge-regular slice on the direct-to-CSR pairing generator",
    )
    sweep.add_argument(
        "--sizes", type=_int_list, default=None,
        help="override the scenario's size axis, e.g. 16,32,64",
    )
    sweep.add_argument(
        "--seeds", type=int, default=None,
        help="override the number of seeds per grid cell",
    )
    sweep.add_argument(
        "--algorithms", type=_str_list, default=None,
        help="override the algorithm list, e.g. port_one,bounded_degree "
        f"(registered: {','.join(algorithm_names())})",
    )
    sweep.add_argument(
        "--measure", choices=_grid_measures(), default=None,
        help="override the scenario's measure (default: its own, "
        "usually 'quality')",
    )
    sweep.add_argument(
        "--optimum", choices=OPTIMUM_MODES, default=None,
        help="override the scenario's optimum mode (e.g. 'dual_bound' "
        "for certified ratio intervals at any scale)",
    )
    sweep.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the result records as canonical JSON lines",
    )
    sweep.add_argument(
        "--quiet", action="store_true",
        help="suppress the progress/ETA lines on stderr",
    )
    _add_cache_max_size_flag(sweep)
    _add_engine_flags(sweep)
    _add_trace_flag(sweep)

    cmp = sub.add_parser(
        "compare",
        help="run the paper's algorithms head-to-head against the "
        "related-work baselines (greedy MDS on the line graph, LP "
        "rounding, forest decomposition, exact optimum) and print a "
        "side-by-side ratio/rounds/messages table",
    )
    cmp.add_argument(
        "--families", type=_str_list, default=COMPARE_FAMILIES,
        help="graph families to compare on (default: regular,bounded)",
    )
    cmp.add_argument(
        "--degrees", type=_int_list, default=(3, 4, 5),
        help="degree axis, e.g. 3,4,5",
    )
    cmp.add_argument(
        "--sizes", type=_int_list, default=(12, 16),
        help="size axis (keep within the exact-optimum limit)",
    )
    cmp.add_argument(
        "--seeds", type=int, default=2,
        help="random instances per grid cell",
    )
    cmp.add_argument(
        "--algorithms", type=_str_list, default=None,
        help="override the contenders, e.g. "
        "port_one,greedy_mds_line,central_optimal "
        f"(registered: {','.join(algorithm_names())})",
    )
    cmp.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the result records as canonical JSON lines",
    )
    cmp.add_argument(
        "--quiet", action="store_true",
        help="suppress the progress/ETA lines on stderr",
    )
    _add_cache_max_size_flag(cmp)
    _add_engine_flags(cmp)
    _add_trace_flag(cmp)

    plugins = sub.add_parser(
        "plugins",
        help="list third-party plugins discovered through the "
        "'repro.plugins' entry-point group",
    )
    del plugins  # no extra flags

    cache = sub.add_parser(
        "cache", help="maintain the content-addressed result cache"
    )
    cache.add_argument("action", choices=["stats", "clear", "gc"])
    cache.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    cache.add_argument(
        "--max-size", default=None, metavar="SIZE",
        help="gc: evict least recently written records until the cache "
        "fits SIZE (e.g. 64MiB, 1.5G, or plain bytes)",
    )
    cache.add_argument(
        "--max-age", default=None, metavar="AGE",
        help="gc: evict records older than AGE (e.g. 90s, 12h, 7d, or "
        "plain seconds)",
    )

    verify = sub.add_parser(
        "verify",
        help="run the whole reproduction (Table 1, figures, rounds) "
        "and report a single verdict",
    )
    verify.add_argument("--fast", action="store_true",
                        help="smaller parameter ranges")
    _add_engine_flags(verify)

    render = sub.add_parser(
        "render", help="print a lower-bound construction and its quotient"
    )
    render.add_argument("construction", choices=["even", "odd"])
    render.add_argument("-d", type=int, default=4)

    demo = sub.add_parser("demo", help="run one algorithm on one graph")
    demo.add_argument(
        "--family",
        choices=["regular", "pairing_regular", "cycle", "grid", "bounded"],
        default="regular",
    )
    demo.add_argument("--algorithm", choices=algorithm_names(),
                      default="bounded_degree")
    demo.add_argument("-n", type=int, default=16)
    demo.add_argument("-d", type=int, default=3,
                      help="degree (regular) / max degree (bounded)")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine for the run (default: the scheduler's "
        "own choice; 'vector' needs the numpy [vector] extra, 'auto' "
        "falls back to 'compiled' without it)",
    )

    profile = sub.add_parser(
        "profile",
        help="run a scenario slice with telemetry on and print the "
        "per-phase p50/p95 breakdown, the slowest units, and runtime/"
        "cache counters",
    )
    profile.add_argument(
        "--scenario", choices=scenario_names(), default="default",
        help="named grid to profile (default: 'default')",
    )
    profile.add_argument(
        "--limit", type=int, default=8,
        help="profile only the first N work units of the expanded grid "
        "(default: 8; 0 means all)",
    )
    profile.add_argument(
        "--degrees", type=_int_list, default=None,
        help="override the scenario's degree axis, e.g. 2,3,4",
    )
    profile.add_argument(
        "--family", default=None,
        help="override the scenario's graph family (grid families: "
        "regular, pairing_regular, bounded)",
    )
    profile.add_argument(
        "--sizes", type=_int_list, default=None,
        help="override the scenario's size axis, e.g. 16,32,64",
    )
    profile.add_argument(
        "--seeds", type=int, default=None,
        help="override the number of seeds per grid cell",
    )
    profile.add_argument(
        "--algorithms", type=_str_list, default=None,
        help="override the algorithm list, e.g. port_one,bounded_degree "
        f"(registered: {','.join(algorithm_names())})",
    )
    profile.add_argument(
        "--measure", choices=_grid_measures(), default=None,
        help="override the scenario's measure",
    )
    profile.add_argument(
        "--optimum", choices=OPTIMUM_MODES, default=None,
        help="override the scenario's optimum mode (e.g. 'lower_bound' "
        "to profile everything except the exact optimum)",
    )
    profile.add_argument(
        "--top", type=int, default=5,
        help="how many slowest units to list (default: 5)",
    )
    profile.add_argument(
        "--workers", type=int, default=1,
        help="shard work units across N workers (default: serial)",
    )
    profile.add_argument(
        "--backend", choices=BACKEND_NAMES, default="inline",
        help="execution backend (default: 'inline' — serial timings "
        "are the easiest to interpret)",
    )
    profile.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="serve repeated units from the result cache (default: off "
        "— profiling wants to measure the computation, not cache reads)",
    )
    profile.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    profile.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine for the profiled units (forces the "
        "inline backend: the engine override is per-process state and "
        "does not cross into pool workers)",
    )
    profile.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="output format: the human-readable tables (default) or "
        "one machine-readable JSON document on stdout",
    )
    _add_trace_flag(profile)

    perf = sub.add_parser(
        "perf",
        help="the perf ledger: 'record' appends one benchmark run "
        "(per-phase medians across reps, peak memory, git SHA) to an "
        "append-only JSONL history, 'report' prints the trajectory, "
        "'compare' checks the newest run of each scenario/engine group "
        "against the baseline median and exits nonzero on regression",
    )
    perf.add_argument("action", choices=["record", "report", "compare"])
    perf.add_argument(
        "--ledger", default=DEFAULT_LEDGER_PATH, metavar="PATH",
        help=f"ledger file (default: {DEFAULT_LEDGER_PATH})",
    )
    perf.add_argument(
        "--scenario", choices=scenario_names(), default=None,
        help="scenario to record, or to filter report/compare by "
        "(record default: 'default')",
    )
    perf.add_argument(
        "--limit", type=int, default=4,
        help="record only the first N work units of the expanded grid "
        "(default: 4; 0 means all)",
    )
    perf.add_argument(
        "--reps", type=int, default=3,
        help="repetitions per record; the ledger stores per-phase "
        "medians across reps (default: 3)",
    )
    perf.add_argument(
        "--degrees", type=_int_list, default=None,
        help="override the scenario's degree axis, e.g. 2,3,4",
    )
    perf.add_argument(
        "--family", default=None,
        help="override the scenario's graph family (grid families: "
        "regular, pairing_regular, bounded)",
    )
    perf.add_argument(
        "--sizes", type=_int_list, default=None,
        help="override the scenario's size axis, e.g. 16,32,64",
    )
    perf.add_argument(
        "--seeds", type=int, default=None,
        help="override the number of seeds per grid cell",
    )
    perf.add_argument(
        "--algorithms", type=_str_list, default=None,
        help="override the algorithm list, e.g. port_one,bounded_degree",
    )
    perf.add_argument(
        "--measure", choices=_grid_measures(), default=None,
        help="override the scenario's measure",
    )
    perf.add_argument(
        "--optimum", choices=OPTIMUM_MODES, default=None,
        help="override the scenario's optimum mode",
    )
    perf.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine to record under (also the compare "
        "filter); entries only ever compare within one scenario/engine "
        "group",
    )
    perf.add_argument(
        "--mem", action="store_true",
        help="record peak memory (tracemalloc + RSS) into the entry",
    )
    perf.add_argument(
        "--note", default="",
        help="free-form note stored on the recorded entry",
    )
    perf.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="compare: flag phases more than this fraction over "
        f"baseline (default: {DEFAULT_THRESHOLD:g} = "
        f"{DEFAULT_THRESHOLD:.0%} slower)".replace("%", "%%"),
    )
    perf.add_argument(
        "--min-phase-ms", type=float, default=DEFAULT_MIN_PHASE_S * 1000,
        help="compare: ignore phases where both sides are under this "
        f"many milliseconds (noise floor; default: "
        f"{DEFAULT_MIN_PHASE_S * 1000:g})",
    )
    perf.add_argument(
        "--baseline-runs", type=int, default=DEFAULT_BASELINE_RUNS,
        help="compare: baseline is the median of up to N prior runs "
        f"(default: {DEFAULT_BASELINE_RUNS})",
    )

    return parser


def _engines_line() -> str:
    """One line naming every engine and whether it can run here."""
    avail = engines_available()
    parts = [
        name if ok else f"{name} (unavailable: install repro-eds[vector])"
        for name, ok in avail.items()
    ]
    return "engines: " + ", ".join(parts)


def _run_demo(args: argparse.Namespace) -> str:
    if args.family == "regular":
        n = args.n + (args.n * args.d) % 2  # a d-regular graph needs n*d even
        n = max(n, args.d + 1 + (args.d + 1) % 2)
        graph = random_regular(args.d, n, seed=args.seed)
        label = f"random {args.d}-regular, n={n}"
    elif args.family == "pairing_regular":
        n = args.n + (args.n * args.d) % 2
        n = max(n, args.d + 1 + (args.d + 1) % 2)
        graph = pairing_regular(args.d, n, seed=args.seed)
        label = f"pairing {args.d}-regular, n={n}"
    elif args.family == "cycle":
        graph = cycle(args.n, seed=args.seed)
        label = f"cycle, n={args.n}"
    elif args.family == "grid":
        side = max(2, int(args.n ** 0.5))
        graph = grid(side, side, seed=args.seed)
        label = f"grid {side}x{side}"
    else:
        graph = random_bounded_degree(args.n, args.d, seed=args.seed)
        label = f"random bounded Δ={args.d}, n={args.n}"

    # Resolved through the registry, so every registered algorithm —
    # randomised ones included — is demo-able by name.
    bound = resolve(
        args.algorithm, rng_seed=derive_seed("demo", args.seed)
    )
    spec = AlgorithmSpec.from_bound(bound)
    with use_engine(args.engine):
        row = run_on(spec, graph, graph_label=label)
    table = format_table(
        ["graph", "algorithm", "n", "m", "|D|",
         "opt" + ("" if row.optimum_exact else " (LB)"), "ratio", "rounds"],
        [
            (
                row.graph_label,
                row.algorithm,
                row.num_nodes,
                row.num_edges,
                row.solution_size,
                row.optimum,
                f"{row.ratio_float:.4f}",
                row.rounds,
            )
        ],
        title="demo run",
    )
    return f"{table}\n{_engines_line()}"


def _write_trace_file(
    path: str, session, *, fmt: str, meta: dict
) -> None:
    """Write the trace sidecar in the requested ``--trace-format``."""
    if fmt == "perfetto":
        events = write_perfetto(path, session, meta=meta)
        logger.info(
            "wrote perfetto trace (%d event(s)) to %s — open it at "
            "https://ui.perfetto.dev", events, path,
        )
    else:
        lines = write_trace(path, session, meta=meta)
        logger.info(
            "wrote telemetry trace (%d line(s)) to %s", lines, path
        )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(verbose=args.verbose, quiet=args.log_quiet)

    trace_path = getattr(args, "trace", None)
    if trace_path and args.command != "profile":
        # Run the whole command inside a telemetry session and write the
        # trace sidecar after.  ``profile`` owns its session instead, so
        # it can render the report before writing the trace.
        with telemetry(capture_memory=getattr(args, "mem", False)) as session:
            code = _dispatch(args)
        _write_trace_file(
            trace_path, session,
            fmt=args.trace_format, meta={"command": args.command},
        )
        return code
    if (
        getattr(args, "mem", False)
        and args.command not in ("profile", "perf")
    ):
        # Without a session there is nothing for the captured memory to
        # land in; say so instead of silently ignoring the flag.
        print(
            "note: --mem has no effect without --trace "
            "(memory telemetry needs an active telemetry session)",
            file=sys.stderr,
        )
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "table1":
        rows = reproduce_table1(
            args.even, args.odd, args.ks,
            workers=max(1, args.workers), cache=_engine_cache(args),
            backend=args.backend,
        )
        print(format_table1(rows))
        if not all(r.tight for r in rows):
            print("ERROR: some rows are not tight", file=sys.stderr)
            return 1
    elif args.command == "figure":
        return _run_figures(args)
    elif args.command == "rounds":
        rows = round_complexity_sweep(
            args.degrees, args.sizes, workers=args.workers
        )
        print(format_round_complexity(rows))
        if not all(r.matches_prediction for r in rows):
            print("ERROR: round predictions violated", file=sys.stderr)
            return 1
    elif args.command == "average":
        rows = average_case_sweep(
            instances=args.instances, seed=args.seed, workers=args.workers
        )
        print(format_average_case(rows))
    elif args.command == "ablation":
        print(format_ablations(run_ablations(
            workers=max(1, args.workers), cache=_engine_cache(args),
            backend=args.backend,
        )))
    elif args.command == "messages":
        return _run_messages(args)
    elif args.command == "sweep":
        return _run_sweep(args)
    elif args.command == "compare":
        return _run_compare(args)
    elif args.command == "plugins":
        from repro.plugins import format_plugins

        print(format_plugins())
    elif args.command == "cache":
        return _run_cache(args)
    elif args.command == "verify":
        return _run_verify(
            fast=args.fast,
            workers=max(1, args.workers),
            cache=_engine_cache(args),
            backend=args.backend,
        )
    elif args.command == "render":
        print(_run_render(args))
    elif args.command == "demo":
        try:
            print(_run_demo(args))
        except SimulationError as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            return 2
    elif args.command == "profile":
        return _run_profile(args)
    elif args.command == "perf":
        return _run_perf(args)
    return 0


def _run_figures(args: argparse.Namespace) -> int:
    """Reproduce figures as engine work units (E5-E11)."""
    ids = None if args.figure_id == "all" else [args.figure_id]
    report = api.run_sweep(
        figure_units(ids),
        workers=max(1, args.workers),
        cache=_engine_cache(args),
        backend=args.backend,
    )
    for record in report.records:
        print(record.extra["rendering"])
        print(f"[{record.extra['figure_id']}] verified claims:")
        for claim in record.extra["checks"]:
            print(f"  ✓ {claim}")
        print()
    return 0


def _run_messages(args: argparse.Namespace) -> int:
    """Run the E17 message-complexity sweep through the engine."""
    algorithms = (
        args.algorithms if args.algorithms is not None
        else ("port_one", "regular_odd", "bounded_degree")
    )
    unknown = set(algorithms) - set(algorithm_names())
    if unknown:
        print(f"ERROR: unknown algorithms {sorted(unknown)}", file=sys.stderr)
        return 2
    rows = message_complexity_sweep(
        args.degrees, args.sizes, args.seed,
        algorithms=algorithms,
        workers=max(1, args.workers),
        cache=_engine_cache(args),
        backend=args.backend,
    )
    if not rows:
        print("ERROR: the grid expanded to zero feasible work units",
              file=sys.stderr)
        return 2
    print(format_messages(rows))
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    """Run the paper-vs-baselines comparison and print the table.

    The table goes to stdout and everything run-dependent (progress,
    backend decision, cache accounting) to stderr, so the stdout bytes
    are identical for every backend, worker count, and cache state.
    """
    unknown_families = set(args.families) - set(COMPARE_FAMILIES)
    if unknown_families:
        print(
            f"ERROR: unknown comparison families "
            f"{sorted(unknown_families)}; available: "
            f"{','.join(COMPARE_FAMILIES)}",
            file=sys.stderr,
        )
        return 2
    if args.algorithms is not None:
        unknown = set(args.algorithms) - set(algorithm_names())
        if unknown:
            print(f"ERROR: unknown algorithms {sorted(unknown)}",
                  file=sys.stderr)
            return 2
    try:
        cache_max = _cache_max_bytes(args)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2

    units = comparison_units(
        args.families, args.degrees, args.sizes, args.seeds,
        algorithms=args.algorithms,
    )
    if not units:
        print("ERROR: the grid expanded to zero feasible work units",
              file=sys.stderr)
        return 2
    cache = _engine_cache(args)
    outcome = run_comparison(
        args.families, args.degrees, args.sizes, args.seeds,
        algorithms=args.algorithms,
        units=units,
        workers=max(1, args.workers),
        cache=cache,
        backend=args.backend,
        cache_max_size=cache_max,
        progress=(
            None if args.quiet
            else ProgressPrinter(len(units), label="compare")
        ),
        jsonl=args.jsonl,
    )
    print(format_comparison(outcome.rows))
    report = outcome.execution
    print(report.backend_line(), file=sys.stderr)
    if cache is not None:
        print(f"{report.cache_line()} [dir: {args.cache_dir}]",
              file=sys.stderr)
        if report.gc is not None:
            print(report.gc_line(), file=sys.stderr)
    else:
        print("cache: disabled", file=sys.stderr)
    if args.jsonl:
        print(f"wrote {len(report.store)} records to {args.jsonl}",
              file=sys.stderr)
    return 0


def _resolved_scenario(args: argparse.Namespace):
    """The named scenario with the shared axis-override flags applied.

    ``sweep``, ``profile`` and ``perf record`` expose the same override
    surface (family/degrees/sizes/seeds/algorithms/measure/optimum);
    this is the one place it is interpreted.  Raises
    :class:`ValueError` with a user-facing message on bad overrides.
    """
    scenario = get_scenario(args.scenario)
    overrides: dict[str, object] = {}
    if getattr(args, "family", None) is not None:
        overrides["family"] = args.family
    if args.degrees is not None:
        overrides["degrees"] = args.degrees
    if args.sizes is not None:
        overrides["sizes"] = args.sizes
    if args.seeds is not None:
        overrides["seeds"] = args.seeds
    if args.measure is not None:
        overrides["measure"] = args.measure
    if getattr(args, "optimum", None) is not None:
        overrides["optimum"] = args.optimum
    if args.algorithms is not None:
        unknown = set(args.algorithms) - set(algorithm_names())
        if unknown:
            raise ValueError(f"unknown algorithms {sorted(unknown)}")
        overrides["algorithms"] = args.algorithms
    if overrides:
        return scenario.override(**overrides)
    return scenario


def _run_sweep(args: argparse.Namespace) -> int:
    """Expand a scenario grid and run it through the experiment engine."""
    try:
        scenario = _resolved_scenario(args)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2

    units = scenario.expand()
    if not units:
        print("ERROR: the grid expanded to zero feasible work units",
              file=sys.stderr)
        return 2

    try:
        cache_max = _cache_max_bytes(args)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    cache = _engine_cache(args)
    progress = (
        None if args.quiet
        else ProgressPrinter(len(units), label=f"sweep:{scenario.name}")
    )
    report = api.run_sweep(
        units, workers=max(1, args.workers), cache=cache, progress=progress,
        backend=args.backend, cache_max_size=cache_max,
    )
    print(report.store.format_summary(
        title=f"sweep '{scenario.name}' — {len(units)} work units"
    ))
    print(report.backend_line())
    if cache is not None:
        print(f"{report.cache_line()} [dir: {args.cache_dir}]")
        if report.gc is not None:
            print(report.gc_line())
    else:
        print("cache: disabled")
    if args.jsonl:
        report.store.to_jsonl(args.jsonl)
        print(f"wrote {len(report.store)} records to {args.jsonl}")
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """Profile a scenario slice and print the per-phase breakdown.

    Cached results would hide the phases being profiled, so the cache
    defaults to off here; ``--cache`` opts back in (the phase table then
    mostly shows cache read latencies, which is occasionally the point).
    """
    try:
        scenario = _resolved_scenario(args)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2

    units = scenario.expand()
    if not units:
        print("ERROR: the grid expanded to zero feasible work units",
              file=sys.stderr)
        return 2
    if args.limit > 0:
        units = units[: args.limit]

    backend = args.backend
    workers = max(1, args.workers)
    if args.engine is not None and (backend != "inline" or workers != 1):
        # The override is a ContextVar; pool workers would ignore it.
        print(
            f"note: --engine {args.engine} forces the inline backend "
            "(the engine override does not cross into pool workers)",
            file=sys.stderr,
        )
        backend = "inline"
        workers = 1

    with telemetry(capture_memory=args.mem) as session, \
            use_engine(args.engine):
        api.run_sweep(
            units,
            workers=workers,
            cache=_engine_cache(args),
            backend=backend,
            progress=ProgressPrinter(
                len(units), label=f"profile:{scenario.name}"
            ),
        )
    engine_note = (
        "" if args.engine is None else f", engine={args.engine}"
    )
    title = (
        f"profile: {scenario.name} ({len(units)} unit(s), "
        f"backend={backend}{engine_note})"
    )
    if args.format == "json":
        import json as json_module

        print(json_module.dumps(
            report_json_dict(session, top=args.top, title=title)
        ))
    else:
        print(render_report(session, top=args.top, title=title))
        print(_engines_line())
    if args.trace:
        _write_trace_file(
            args.trace, session,
            fmt=args.trace_format, meta={"command": "profile"},
        )
    return 0


def _run_perf(args: argparse.Namespace) -> int:
    """The perf ledger: record a benchmark run, report, or compare."""
    if args.action == "record":
        return _run_perf_record(args)
    entries = read_ledger(args.ledger)
    if args.action == "report":
        if args.scenario is not None:
            entries = [e for e in entries if e.scenario == args.scenario]
        if args.engine is not None:
            entries = [e for e in entries if e.engine == args.engine]
        print(format_ledger(entries))
        return 0
    # compare
    if not entries:
        print(f"ERROR: no perf ledger at {args.ledger} "
              "(run `repro-eds perf record` first)", file=sys.stderr)
        return 2
    reports = compare_ledger(
        entries,
        scenario=args.scenario,
        engine=args.engine,
        threshold=args.threshold,
        min_phase_s=args.min_phase_ms / 1000.0,
        baseline_runs=max(1, args.baseline_runs),
    )
    if not reports:
        print(
            "perf compare: no scenario/engine group has two or more "
            "recorded runs yet — nothing to compare"
        )
        return 0
    for report in reports:
        print(report.format(threshold=args.threshold))
        print()
    regressed = [r for r in reports if not r.ok]
    if regressed:
        groups = ", ".join(
            f"{r.scenario}/{r.engine}" for r in regressed
        )
        print(f"VERDICT: perf regression in {groups}", file=sys.stderr)
        return 1
    print(f"VERDICT: no perf regressions across {len(reports)} group(s)")
    return 0


def _run_perf_record(args: argparse.Namespace) -> int:
    """Run a scenario slice ``--reps`` times and append a ledger entry.

    Records always run on the inline backend with the cache off: the
    point is to measure the computation, and serial self-times are the
    comparable quantity.  Medians across reps go into the entry.
    """
    if args.scenario is None:
        args.scenario = "default"
    try:
        scenario = _resolved_scenario(args)
    except ValueError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 2
    units = scenario.expand()
    if not units:
        print("ERROR: the grid expanded to zero feasible work units",
              file=sys.stderr)
        return 2
    if args.limit > 0:
        units = units[: args.limit]

    sessions = []
    for rep in range(max(1, args.reps)):
        with telemetry(capture_memory=args.mem) as session, \
                use_engine(args.engine):
            api.run_sweep(units, cache=None, backend="inline")
        sessions.append(session)
        logger.info(
            "perf record rep %d/%d: %d unit(s) in %.3fs",
            rep + 1, max(1, args.reps), len(units),
            session.unit_wall_total_s(),
        )
    entry = entry_from_sessions(
        sessions,
        scenario=scenario.name,
        engine=args.engine or "default",
        note=args.note,
    )
    append_entry(args.ledger, entry)
    print(format_entry(entry))
    print(f"appended to {args.ledger}")
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    """Cache maintenance: stats, clear everything, or policy eviction."""
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        print(cache.stats().format())
        return 0
    if args.action == "gc":
        if args.max_size is None and args.max_age is None:
            print("ERROR: cache gc needs --max-size and/or --max-age",
                  file=sys.stderr)
            return 2
        try:
            max_bytes = (
                None if args.max_size is None else parse_size(args.max_size)
            )
            max_age = (
                None if args.max_age is None else parse_age(args.max_age)
            )
        except ValueError as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            return 2
        report = cache.gc(max_bytes=max_bytes, max_age=max_age)
        print(f"{report.format()} [dir: {args.cache_dir}]")
        return 0
    stats = cache.stats()
    removed = cache.clear()
    print(
        f"removed {removed} cached record(s) "
        f"({human_bytes(stats.total_bytes)}) from {args.cache_dir}"
    )
    return 0


def _run_verify(
    *,
    fast: bool,
    workers: int = 1,
    cache: ResultCache | None = None,
    backend: str = "auto",
) -> int:
    """Run every headline check; return 0 only if all pass."""
    failures: list[str] = []

    even = (2, 4) if fast else (2, 4, 6, 8, 10, 12)
    odd = (1, 3) if fast else (1, 3, 5, 7, 9)
    ks = (1, 2) if fast else (1, 2, 3, 4, 5)
    rows = reproduce_table1(even, odd, ks, workers=workers, cache=cache,
                            backend=backend)
    tight = sum(1 for r in rows if r.tight)
    print(f"[table1] {tight}/{len(rows)} rows tight")
    if tight != len(rows):
        failures.append("table1")

    try:
        figure_report = api.run_sweep(
            figure_units(), workers=workers, cache=cache, backend=backend
        )
        for record in figure_report.records:
            print(f"[figure {record.extra['figure']}] "
                  f"{len(record.extra['checks'])} claims verified")
    except Exception as exc:  # pragma: no cover - defensive
        print(f"[figures] FAILED: {exc}")
        failures.append("figures")

    sweep = round_complexity_sweep(
        odd_degrees=(1, 3) if fast else (1, 3, 5, 7),
        sizes=(12,) if fast else (16, 32, 64),
        workers=workers,
        cache=cache,
        backend=backend,
    )
    ok = sum(1 for r in sweep if r.matches_prediction)
    print(f"[rounds] {ok}/{len(sweep)} round counts match closed forms")
    if ok != len(sweep):
        failures.append("rounds")

    from repro.experiments.optimality import recompute_lower_bounds

    bounds = recompute_lower_bounds(
        even_degrees=(2, 4) if fast else (2, 4, 6, 8),
        odd_degrees=(1, 3) if fast else (1, 3, 5),
    )
    matched = sum(1 for r in bounds if r.matches)
    print(
        f"[lower bounds] {matched}/{len(bounds)} recomputed by orbit "
        f"search match Table 1"
    )
    if matched != len(bounds):
        failures.append("lower bounds")

    if failures:
        print(f"\nVERDICT: FAILED ({', '.join(failures)})")
        return 1
    print("\nVERDICT: all reproduction checks passed")
    return 0


def _run_render(args: argparse.Namespace) -> str:
    from repro.lowerbounds import build_even_lower_bound, build_odd_lower_bound
    from repro.portgraph.render import render_edge_set, render_graph

    d = args.d
    if args.construction == "even":
        if d % 2:
            d += 1
        instance = build_even_lower_bound(d)
    else:
        if d % 2 == 0:
            d += 1
        instance = build_odd_lower_bound(d)

    parts = [
        render_graph(
            instance.graph,
            title=f"Theorem {'1' if args.construction == 'even' else '2'} "
            f"construction, d = {d}",
        ),
        "",
        render_edge_set(instance.optimum, title="optimal EDS D*:"),
        "",
        render_graph(instance.quotient, title="quotient multigraph M:"),
        "",
        f"forced ratio: {instance.forced_ratio} "
        f"({float(instance.forced_ratio):.4f})",
    ]
    return "\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
