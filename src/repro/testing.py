"""Public hypothesis strategies for property-testing against this library.

Downstream users extending the library (custom node programs, new
numbering strategies, alternative constructions) can reuse these
strategies instead of rebuilding graph generators; the package's own
test suite imports them from here.

All strategies produce *simple* graphs; multigraph cases are exercised
through explicit constructions and random lifts.
"""

from __future__ import annotations

import random

import networkx as nx

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - dev extra missing
    raise ImportError(
        "repro.testing requires hypothesis (install the 'dev' extra)"
    ) from exc

from repro.portgraph.convert import from_networkx
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.numbering import random_numbering

__all__ = [
    "nx_graphs",
    "regular_nx_graphs",
    "port_graphs",
    "odd_regular_port_graphs",
    "bounded_degree_port_graphs",
]


def nx_graphs(
    max_nodes: int = 12, max_degree: int | None = None
) -> "st.SearchStrategy[nx.Graph]":
    """Random simple graphs via edge-probability sampling.

    When *max_degree* is set, excess edges are pruned deterministically
    (given the drawn seed) until the bound holds.
    """

    @st.composite
    def build(draw: st.DrawFn) -> nx.Graph:
        n = draw(st.integers(min_value=1, max_value=max_nodes))
        seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
        p = draw(st.floats(min_value=0.05, max_value=0.9))
        graph = nx.gnp_random_graph(n, p, seed=seed)
        if max_degree is not None:
            rng = random.Random(seed)
            while True:
                over = [v for v, d in graph.degree() if d > max_degree]
                if not over:
                    break
                v = over[0]
                neighbours = list(graph.neighbors(v))
                graph.remove_edge(v, rng.choice(neighbours))
        return graph

    return build()


def regular_nx_graphs(
    degrees: tuple[int, ...] = (2, 3, 4, 5),
    max_nodes: int = 14,
) -> "st.SearchStrategy[nx.Graph]":
    """Random d-regular graphs for d drawn from *degrees*."""

    @st.composite
    def build(draw: st.DrawFn) -> nx.Graph:
        d = draw(st.sampled_from(degrees))
        candidates = [
            n for n in range(d + 1, max_nodes + 1) if (n * d) % 2 == 0
        ]
        n = draw(st.sampled_from(candidates))
        seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
        return nx.random_regular_graph(d, n, seed=seed)

    return build()


def port_graphs(
    max_nodes: int = 10, max_degree: int | None = None
) -> "st.SearchStrategy[PortNumberedGraph]":
    """Random simple port-numbered graphs with random port numberings."""

    @st.composite
    def build(draw: st.DrawFn) -> PortNumberedGraph:
        graph = draw(nx_graphs(max_nodes=max_nodes, max_degree=max_degree))
        seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
        return from_networkx(graph, random_numbering(seed))

    return build()


def odd_regular_port_graphs(
    degrees: tuple[int, ...] = (1, 3, 5),
    max_nodes: int = 15,
) -> "st.SearchStrategy[PortNumberedGraph]":
    """Random odd-d-regular port graphs (Theorem 4's domain)."""

    @st.composite
    def build(draw: st.DrawFn) -> PortNumberedGraph:
        d = draw(st.sampled_from(degrees))
        candidates = [
            n for n in range(d + 1, max_nodes + 1) if (n * d) % 2 == 0
        ]
        n = draw(st.sampled_from(candidates))
        seed = draw(st.integers(min_value=0, max_value=10**6))
        numbering_seed = draw(st.integers(min_value=0, max_value=10**6))
        graph = nx.random_regular_graph(d, n, seed=seed)
        return from_networkx(graph, random_numbering(numbering_seed))

    return build()


def bounded_degree_port_graphs(
    max_degree: int, max_nodes: int = 12
) -> "st.SearchStrategy[PortNumberedGraph]":
    """Random port graphs of bounded degree (Theorem 5's domain)."""

    @st.composite
    def build(draw: st.DrawFn) -> PortNumberedGraph:
        graph = draw(nx_graphs(max_nodes=max_nodes, max_degree=max_degree))
        seed = draw(st.integers(min_value=0, max_value=10**6))
        return from_networkx(graph, random_numbering(seed))

    return build()
