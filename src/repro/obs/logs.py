"""Logging configuration for the ``repro`` package.

Every ``repro.*`` module gets its logger the standard way::

    logger = logging.getLogger(__name__)

All of those roll up to the package root logger ``"repro"``, which this
module configures exactly once per process when the CLI starts.  Library
use stays silent by default (no handler is installed unless
:func:`configure_logging` is called), per the usual library etiquette.

Verbosity mapping for the global CLI flags:

* ``-q``            → WARNING (errors and warnings only)
* default           → INFO
* ``-v``            → DEBUG for ``repro.*``
"""

from __future__ import annotations

import logging
import sys
from typing import TextIO

__all__ = ["ROOT_LOGGER_NAME", "configure_logging"]

ROOT_LOGGER_NAME = "repro"

#: Marker attribute identifying the handler we installed, so repeated
#: ``main()`` calls (tests, embedding) reconfigure instead of stacking
#: duplicate handlers.
_HANDLER_MARKER = "_repro_cli_handler"


class _LiveStderr:
    """A stream that resolves ``sys.stderr`` at every write.

    Pinning the stderr object at configure time breaks under anything
    that swaps ``sys.stderr`` later (pytest's capture replaces it per
    test and closes the old one) — the handler would then raise into
    logging's error handler on every record.
    """

    def write(self, text: str) -> int:
        return sys.stderr.write(text)

    def flush(self) -> None:
        stream = sys.stderr
        if hasattr(stream, "flush"):
            stream.flush()


def configure_logging(
    *,
    verbose: int = 0,
    quiet: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Install/replace the CLI log handler on the ``repro`` root logger."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARKER, False):
            root.removeHandler(handler)

    if quiet:
        level = logging.WARNING
    elif verbose > 0:
        level = logging.DEBUG
    else:
        level = logging.INFO

    handler = logging.StreamHandler(stream if stream is not None
                                    else _LiveStderr())
    setattr(handler, _HANDLER_MARKER, True)
    if level == logging.DEBUG:
        fmt = "%(levelname).1s %(name)s: %(message)s"
    else:
        fmt = "%(message)s"
    handler.setFormatter(logging.Formatter(fmt))
    root.addHandler(handler)
    root.setLevel(level)
    # Propagation to the global root logger stays on: the root usually
    # has no handlers (so nothing double-prints), and severing it would
    # blind root-level capture such as pytest's caplog.
    return root
