"""Zero-dependency span recording for per-unit phase profiling.

A *span* is one timed phase of a work unit's execution — graph build,
simulate, a measure, the optimum computation.  Spans are collected by a
:class:`SpanRecorder` installed for the duration of one unit
(:func:`recording`); instrumentation points call the module-level
:func:`span` context manager, which is a **no-op fast path** when no
recorder is installed: one :class:`~contextvars.ContextVar` read and an
immediate yield, nothing allocated, nothing timed.  That is what keeps
always-on instrumentation off the hot path — the scheduler's round loop
is never touched per-message, only per-run.

Process safety: a recorder lives in a ContextVar, so concurrent threads
(the thread backend) each see only their own unit's recorder, and worker
*processes* collect into their own recorder and ship the result back to
the parent inside the unit payload as a :class:`UnitTelemetry` —
telemetry never rides in the result record itself, so cached bytes are
byte-identical with telemetry on or off.

Whether instrumentation should collect at all is a process-wide flag
(:func:`set_collection` / :func:`collection_enabled`): the executor
raises it while a telemetry session is active, and the process backend
ships it to pool workers in the unit payload.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.obs.memory import MemoryMeter, memory_collection_enabled

__all__ = [
    "Span",
    "SpanRecorder",
    "UnitTelemetry",
    "collection_enabled",
    "current_recorder",
    "recording",
    "set_collection",
    "span",
    "span_self_times",
]


@dataclass
class Span:
    """One timed phase: name, offset from unit start, duration, attrs."""

    name: str
    start_s: float
    duration_s: float = 0.0
    #: Index of the enclosing span in the recorder's list, or ``None``.
    parent: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Memory fields, populated only under ``--mem`` (see
    #: :mod:`repro.obs.memory`): net traced bytes allocated over the
    #: span, peak traced bytes live while it was open, and the process
    #: peak RSS observed at its close.  ``None`` → not captured, and the
    #: fields are omitted from the JSON form so traces without memory
    #: capture are byte-identical to pre-memory ones.
    mem_alloc_b: int | None = None
    mem_peak_b: int | None = None
    mem_rss_b: int | None = None

    def to_json_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
        }
        if self.parent is not None:
            data["parent"] = self.parent
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.mem_peak_b is not None:
            data["mem_alloc_b"] = self.mem_alloc_b
            data["mem_peak_b"] = self.mem_peak_b
            if self.mem_rss_b is not None:
                data["mem_rss_b"] = self.mem_rss_b
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "Span":
        return cls(
            name=data["name"],
            start_s=data["start_s"],
            duration_s=data["duration_s"],
            parent=data.get("parent"),
            attrs=dict(data.get("attrs", {})),
            mem_alloc_b=data.get("mem_alloc_b"),
            mem_peak_b=data.get("mem_peak_b"),
            mem_rss_b=data.get("mem_rss_b"),
        )


def span_self_times(spans: Sequence[Span]) -> list[float]:
    """Per-span *self* time: duration minus the direct children's time.

    Phase tables aggregate self time so nested spans (``optimum`` inside
    ``measure:quality``) are never double counted and per-phase sums
    reconcile with unit wall time.
    """
    child_total = [0.0] * len(spans)
    for s in spans:
        if s.parent is not None:
            child_total[s.parent] += s.duration_s
    return [
        max(0.0, s.duration_s - child)
        for s, child in zip(spans, child_total)
    ]


class SpanRecorder:
    """Collects one unit's spans and counters (single-threaded use)."""

    __slots__ = (
        "spans", "counters", "mem", "mem_peak_b", "rss_peak_b",
        "_clock", "_t0", "_stack",
    )

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        #: The unit's :class:`~repro.obs.memory.MemoryMeter` while memory
        #: capture is live (installed by :func:`recording`), else ``None``.
        self.mem: MemoryMeter | None = None
        self.mem_peak_b: int | None = None
        self.rss_peak_b: int | None = None
        self._clock = clock
        self._t0 = clock()
        self._stack: list[int] = []

    def open(self, name: str, attrs: Mapping[str, Any] | None = None) -> int:
        """Open a span; returns its index for :meth:`close`."""
        parent = self._stack[-1] if self._stack else None
        index = len(self.spans)
        self.spans.append(Span(
            name=name,
            start_s=self._clock() - self._t0,
            parent=parent,
            attrs=dict(attrs) if attrs else {},
        ))
        self._stack.append(index)
        if self.mem is not None:
            self.mem.on_open(self.spans[index])
        return index

    def close(self, index: int) -> None:
        s = self.spans[index]
        s.duration_s = (self._clock() - self._t0) - s.start_s
        # Defensive: close any child left open by a non-local exit.
        while self._stack and self._stack[-1] != index:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self.mem is not None:
            self.mem.on_close(s)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (if any).

        This is how the runtime scheduler reports the engine name and
        round count onto the ``simulate`` span opened by the measure
        pipeline, without the pipeline having to know either.
        """
        if self._stack:
            self.spans[self._stack[-1]].attrs.update(attrs)

    def count(self, name: str, value: float = 1) -> None:
        """Increment a unit-scoped counter (merged into session metrics)."""
        self.counters[name] = self.counters.get(name, 0) + value

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._t0


_recorder: ContextVar[SpanRecorder | None] = ContextVar(
    "repro_obs_recorder", default=None
)

#: Process-wide collection switch (see the module docstring).  A plain
#: module global, not a ContextVar: worker threads and forked workers
#: must see the executor's setting.
_collection_enabled = False


def set_collection(enabled: bool) -> None:
    """Enable/disable telemetry collection in this process."""
    global _collection_enabled
    _collection_enabled = bool(enabled)


def collection_enabled() -> bool:
    """Whether unit execution should collect telemetry in this process."""
    return _collection_enabled


def current_recorder() -> SpanRecorder | None:
    """The recorder of the unit currently executing here, if any."""
    return _recorder.get()


@contextmanager
def recording(
    clock: Callable[[], float] = time.perf_counter,
    *,
    capture_memory: bool | None = None,
) -> Iterator[SpanRecorder]:
    """Install a fresh recorder for one unit's execution.

    *capture_memory* defaults to the process-wide flag
    (:func:`~repro.obs.memory.memory_collection_enabled`).  tracemalloc
    peaks are process state, so if another unit's meter is already live
    (thread backend) this one records timing only.
    """
    rec = SpanRecorder(clock)
    if capture_memory is None:
        capture_memory = memory_collection_enabled()
    if capture_memory:
        rec.mem = MemoryMeter.acquire()
    token = _recorder.set(rec)
    try:
        yield rec
    finally:
        _recorder.reset(token)
        if rec.mem is not None:
            rec.mem_peak_b, rec.rss_peak_b = rec.mem.finish()
            rec.mem = None


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Record a phase span — or do (almost) nothing when not recording.

    Yields the open :class:`Span` so callers can attach result-dependent
    attributes, or ``None`` on the no-op fast path.
    """
    rec = _recorder.get()
    if rec is None:
        yield None
        return
    index = rec.open(name, attrs)
    try:
        yield rec.spans[index]
    finally:
        rec.close(index)


@dataclass
class UnitTelemetry:
    """One computed work unit's telemetry, shippable across processes.

    This is what a worker sends back alongside the result record —
    *alongside*, never inside: records and their cached bytes stay
    byte-identical whether telemetry is collected or not.
    """

    key: str
    algorithm: str
    label: str
    measure: str
    wall_s: float
    worker: str
    spans: list[Span] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    #: Peak traced bytes / peak RSS over the unit, only under ``--mem``.
    mem_peak_b: int | None = None
    rss_peak_b: int | None = None

    @classmethod
    def from_recorder(
        cls,
        rec: SpanRecorder,
        *,
        key: str,
        algorithm: str,
        label: str,
        measure: str,
        wall_s: float,
    ) -> "UnitTelemetry":
        return cls(
            key=key,
            algorithm=algorithm,
            label=label,
            measure=measure,
            wall_s=wall_s,
            worker=worker_id(),
            spans=rec.spans,
            counters=dict(rec.counters),
            mem_peak_b=rec.mem_peak_b,
            rss_peak_b=rec.rss_peak_b,
        )

    def phase_self_times(self) -> dict[str, float]:
        """Aggregate self time per phase name for this unit."""
        totals: dict[str, float] = {}
        for s, self_s in zip(self.spans, span_self_times(self.spans)):
            totals[s.name] = totals.get(s.name, 0.0) + self_s
        return totals

    def phase_mem_peaks(self) -> dict[str, int]:
        """Max traced-peak bytes per phase name (empty without --mem)."""
        peaks: dict[str, int] = {}
        for s in self.spans:
            if s.mem_peak_b is None:
                continue
            prev = peaks.get(s.name)
            if prev is None or s.mem_peak_b > prev:
                peaks[s.name] = s.mem_peak_b
        return peaks

    def engine(self) -> str | None:
        """The simulation engine this unit ran on, if annotated.

        The runtime scheduler annotates the ``simulate`` span with the
        engine name; per-engine aggregation (memory by engine) reads it
        back from here.
        """
        for s in self.spans:
            if s.name == "simulate" and "engine" in s.attrs:
                return str(s.attrs["engine"])
        return None

    def to_json_dict(self) -> dict[str, Any]:
        data = {
            "key": self.key,
            "algorithm": self.algorithm,
            "label": self.label,
            "measure": self.measure,
            "wall_s": round(self.wall_s, 9),
            "worker": self.worker,
            "spans": [s.to_json_dict() for s in self.spans],
            "counters": dict(self.counters),
        }
        if self.mem_peak_b is not None:
            data["mem_peak_b"] = self.mem_peak_b
            if self.rss_peak_b is not None:
                data["rss_peak_b"] = self.rss_peak_b
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "UnitTelemetry":
        return cls(
            key=data["key"],
            algorithm=data["algorithm"],
            label=data["label"],
            measure=data["measure"],
            wall_s=data["wall_s"],
            worker=data["worker"],
            spans=[Span.from_json_dict(s) for s in data.get("spans", ())],
            counters=dict(data.get("counters", {})),
            mem_peak_b=data.get("mem_peak_b"),
            rss_peak_b=data.get("rss_peak_b"),
        )


def worker_id() -> str:
    """Identify the executing worker: pid plus thread name."""
    return f"{os.getpid()}:{threading.current_thread().name}"
