"""The telemetry session: where per-unit telemetry aggregates.

A :class:`TelemetrySession` is installed for the duration of one CLI
command (or any ``with telemetry() as session:`` block).  While one is
active, ``run_units`` switches unit execution to the instrumented path,
collects each computed unit's :class:`~repro.obs.spans.UnitTelemetry`,
and merges it here; the cache reports lookup latency; backends leave
calibration notes.  With no session active every instrumentation point
is a no-op — that is the "always-on-cheap" contract.

The session is deliberately dumb storage plus aggregation: rendering
lives in :mod:`repro.obs.report`, export in :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import UnitTelemetry

__all__ = ["TelemetrySession", "current_session", "telemetry"]


class TelemetrySession:
    """Aggregates telemetry for one command / sweep invocation."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        *,
        capture_memory: bool = False,
    ):
        self.units: list[UnitTelemetry] = []
        self.metrics = MetricsRegistry()
        #: Free-form annotations (backend description, calibration
        #: decision, command name) surfaced in the report and the trace.
        self.notes: dict[str, str] = {}
        #: Seconds each worker (``pid:thread``) spent computing units.
        self.worker_busy: dict[str, float] = {}
        #: Opt-in per-phase memory capture (``--mem``): the executor
        #: raises the process-wide memory flag while this session is
        #: active.  Off by default to protect the <5% overhead budget.
        self.capture_memory = bool(capture_memory)
        self._clock = clock
        self._started = clock()

    # -- ingestion -----------------------------------------------------

    def add_unit(self, unit: UnitTelemetry) -> None:
        """Merge one computed unit's telemetry into the aggregate."""
        self.units.append(unit)
        self.metrics.inc("units.computed")
        self.metrics.observe("unit.wall_s", unit.wall_s)
        self.worker_busy[unit.worker] = (
            self.worker_busy.get(unit.worker, 0.0) + unit.wall_s
        )
        self.metrics.merge_counters(unit.counters)
        for phase, self_s in unit.phase_self_times().items():
            self.metrics.observe(f"phase.{phase}", self_s)
        if unit.mem_peak_b is not None:
            self.metrics.observe("unit.mem_peak_b", unit.mem_peak_b)
            if unit.rss_peak_b is not None:
                self.metrics.observe("unit.rss_peak_b", unit.rss_peak_b)
            for phase, peak_b in unit.phase_mem_peaks().items():
                self.metrics.observe(f"phase_mem.{phase}", peak_b)
            engine = unit.engine()
            if engine:
                self.metrics.observe(
                    f"engine_mem.{engine}", unit.mem_peak_b
                )

    def note(self, name: str, value: str) -> None:
        self.notes[name] = str(value)

    # -- derived views -------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._started

    def phase_names(self) -> list[str]:
        """Phase names ordered by total self time, descending."""
        names = self.metrics.histogram_names(prefix="phase.")
        return sorted(
            (n[len("phase."):] for n in names),
            key=lambda n: -self.metrics.summary(f"phase.{n}")["total"],
        )

    def phase_total_s(self) -> float:
        """Sum of all phase self times across all units."""
        return sum(
            self.metrics.summary(name)["total"]
            for name in self.metrics.histogram_names(prefix="phase.")
        )

    def unit_wall_total_s(self) -> float:
        return sum(u.wall_s for u in self.units)

    def unaccounted_s(self) -> float:
        """Unit wall time not attributed to any phase span.

        Per-phase tables report span *self* times, so this is the
        reconciliation residual: wall minus instrumented time.  Small
        and positive in a healthy run (dispatch overhead, feasibility
        bookkeeping between spans).
        """
        return self.unit_wall_total_s() - self.phase_total_s()

    def has_memory(self) -> bool:
        """Whether any unit shipped memory telemetry (``--mem`` runs)."""
        return bool(self.metrics.summary("unit.mem_peak_b")["count"])

    def top_units(self, n: int) -> list[UnitTelemetry]:
        # Ties on wall time break by unit key so the slowest-units table
        # is byte-stable across reruns (sorted() is stable, but the
        # ingestion order of pool backends is completion order).
        return sorted(self.units, key=lambda u: (-u.wall_s, u.key))[:n]


_session: ContextVar[TelemetrySession | None] = ContextVar(
    "repro_obs_session", default=None
)


def current_session() -> TelemetrySession | None:
    """The active telemetry session, or ``None`` (the common case)."""
    return _session.get()


@contextmanager
def telemetry(
    clock: Callable[[], float] = time.perf_counter,
    *,
    capture_memory: bool = False,
) -> Iterator[TelemetrySession]:
    """Activate a telemetry session for the enclosed block.

    *capture_memory* opts in to per-phase tracemalloc/RSS capture
    (``--mem``); it costs real time, so it is never on by default.
    """
    session = TelemetrySession(clock, capture_memory=capture_memory)
    token = _session.set(session)
    try:
        yield session
    finally:
        _session.reset(token)
