"""Per-phase memory telemetry: tracemalloc windows plus peak RSS.

Memory capture is **opt-in** (``--mem``) and rides the same plumbing as
span timing: a :class:`MemoryMeter` is attached to the unit's
:class:`~repro.obs.spans.SpanRecorder` while the process-wide
:func:`memory_collection_enabled` flag is up, and every span open/close
becomes a *window boundary*.  At each boundary the meter reads
``tracemalloc.get_traced_memory()``, folds the window's peak into every
currently-open span, and calls ``tracemalloc.reset_peak()`` — so a
nested span's transient spike is charged to *all* its open ancestors
(each really did have that many live bytes during its lifetime), and a
span's ``mem_peak_b`` is a true peak over its own duration, not just a
start/end delta.

Why opt-in: ``tracemalloc`` hooks every allocation, which costs far more
than the <5% telemetry-overhead budget the timing path is gated on.
With the flag down this module contributes nothing — the recorder's
``mem`` slot stays ``None`` and span open/close skip one attribute test.

numpy registers its buffer allocations with tracemalloc
(``PyTraceMalloc_Track``), so the vector engine's struct-of-arrays
footprint shows up here like any Python allocation.

Peak RSS comes from ``resource.getrusage`` — a process-lifetime
high-water mark, monotone across units.  It answers "how big did the
worker get", complementing tracemalloc's "who allocated what".
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.spans import Span

__all__ = [
    "MemoryMeter",
    "memory_collection_enabled",
    "rss_peak_bytes",
    "set_memory_collection",
]


#: Process-wide opt-in switch, mirroring ``spans.set_collection``: the
#: executor raises it while a ``capture_memory`` session is active and
#: the process backend ships it to pool workers in the unit payload.
_memory_enabled = False


def set_memory_collection(enabled: bool) -> None:
    """Enable/disable per-phase memory capture in this process."""
    global _memory_enabled
    _memory_enabled = bool(enabled)


def memory_collection_enabled() -> bool:
    """Whether unit execution should capture memory in this process."""
    return _memory_enabled


def rss_peak_bytes() -> int | None:
    """The process-lifetime peak resident set size, in bytes.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; ``None``
    where the ``resource`` module is unavailable (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return int(peak)
    return int(peak) * 1024


#: tracemalloc peaks are process-global state, so only one meter may be
#: live per process at a time.  Under the thread backend the first unit
#: to start wins and concurrent units skip memory capture (their spans
#: simply carry no memory fields) — timing telemetry is unaffected.
_meter_active = False


class MemoryMeter:
    """Windows ``tracemalloc`` between span boundaries for one unit."""

    __slots__ = ("_owns_tracing", "_stack", "unit_peak_b")

    @classmethod
    def acquire(cls) -> "MemoryMeter | None":
        """Claim the process's meter slot, or ``None`` if already taken."""
        global _meter_active
        if _meter_active:
            return None
        _meter_active = True
        return cls()

    def __init__(self) -> None:
        self._owns_tracing = not tracemalloc.is_tracing()
        if self._owns_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        #: ``(span, traced bytes at open)`` for every open span.
        self._stack: list[tuple["Span", int]] = []
        self.unit_peak_b = tracemalloc.get_traced_memory()[0]

    def _flush_window(self) -> int:
        """Fold the current window's peak into every open span.

        Returns the *current* traced byte count (the next window's
        baseline).  ``reset_peak`` pins the peak to current, so every
        window's peak is at least its starting level.
        """
        current, peak = tracemalloc.get_traced_memory()
        if peak > self.unit_peak_b:
            self.unit_peak_b = peak
        for open_span, _ in self._stack:
            if open_span.mem_peak_b is None or peak > open_span.mem_peak_b:
                open_span.mem_peak_b = peak
        tracemalloc.reset_peak()
        return current

    def on_open(self, span: "Span") -> None:
        current = self._flush_window()
        self._stack.append((span, current))

    def on_close(self, span: "Span") -> None:
        current = self._flush_window()
        rss = rss_peak_bytes()
        # Pop through children left open by a non-local exit, mirroring
        # the recorder's own defensive close.
        while self._stack:
            open_span, opened_at = self._stack.pop()
            open_span.mem_alloc_b = current - opened_at
            if open_span.mem_peak_b is None or current > open_span.mem_peak_b:
                open_span.mem_peak_b = current
            open_span.mem_rss_b = rss
            if open_span is span:
                break

    def finish(self) -> tuple[int, int | None]:
        """Release the meter; returns ``(unit peak bytes, peak RSS)``."""
        global _meter_active
        current = self._flush_window()
        rss = rss_peak_bytes()
        while self._stack:  # spans left open by a non-local exit
            open_span, opened_at = self._stack.pop()
            open_span.mem_alloc_b = current - opened_at
            open_span.mem_rss_b = rss
        if self._owns_tracing:
            tracemalloc.stop()
        _meter_active = False
        return self.unit_peak_b, rss
