"""Observability: spans, metrics, telemetry sessions, traces, logging.

The subsystem in one breath: instrumentation points throughout the
engine and runtime call :func:`span` / :func:`~SpanRecorder.count`,
which are no-ops unless a unit-level :class:`SpanRecorder` is installed;
the executor installs one per computed unit whenever a command-level
:class:`TelemetrySession` (:func:`telemetry`) is active, ships the
resulting :class:`UnitTelemetry` across worker boundaries next to the
result record, and aggregates everything into session metrics that
:func:`render_report` prints and :func:`write_trace` exports as JSONL.

Cached records never carry telemetry: keys and bytes are identical with
the subsystem on or off.
"""

from repro.obs.logs import ROOT_LOGGER_NAME, configure_logging
from repro.obs.metrics import MetricsRegistry, percentile, summarize
from repro.obs.report import dominant_phase, render_report
from repro.obs.session import TelemetrySession, current_session, telemetry
from repro.obs.spans import (
    Span,
    SpanRecorder,
    UnitTelemetry,
    collection_enabled,
    current_recorder,
    recording,
    set_collection,
    span,
    span_self_times,
)
from repro.obs.trace import TRACE_VERSION, write_trace

__all__ = [
    "ROOT_LOGGER_NAME",
    "TRACE_VERSION",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "TelemetrySession",
    "UnitTelemetry",
    "collection_enabled",
    "configure_logging",
    "current_recorder",
    "current_session",
    "dominant_phase",
    "percentile",
    "recording",
    "render_report",
    "set_collection",
    "span",
    "span_self_times",
    "summarize",
    "telemetry",
    "write_trace",
]
