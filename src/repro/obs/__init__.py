"""Observability: spans, metrics, telemetry sessions, traces, logging.

The subsystem in one breath: instrumentation points throughout the
engine and runtime call :func:`span` / :func:`~SpanRecorder.count`,
which are no-ops unless a unit-level :class:`SpanRecorder` is installed;
the executor installs one per computed unit whenever a command-level
:class:`TelemetrySession` (:func:`telemetry`) is active, ships the
resulting :class:`UnitTelemetry` across worker boundaries next to the
result record, and aggregates everything into session metrics that
:func:`render_report` prints and :func:`write_trace` exports as JSONL.

Cached records never carry telemetry: keys and bytes are identical with
the subsystem on or off.
"""

from repro.obs.logs import ROOT_LOGGER_NAME, configure_logging
from repro.obs.memory import (
    MemoryMeter,
    memory_collection_enabled,
    rss_peak_bytes,
    set_memory_collection,
)
from repro.obs.metrics import MetricsRegistry, percentile, summarize
from repro.obs.perf import (
    DEFAULT_LEDGER_PATH,
    CompareReport,
    LedgerEntry,
    append_entry,
    compare_entries,
    compare_ledger,
    entry_from_sessions,
    format_ledger,
    read_ledger,
)
from repro.obs.perfetto import (
    PERFETTO_VERSION,
    TRACE_FORMATS,
    trace_events,
    write_perfetto,
)
from repro.obs.report import dominant_phase, render_report, report_json_dict
from repro.obs.session import TelemetrySession, current_session, telemetry
from repro.obs.spans import (
    Span,
    SpanRecorder,
    UnitTelemetry,
    collection_enabled,
    current_recorder,
    recording,
    set_collection,
    span,
    span_self_times,
)
from repro.obs.trace import TRACE_VERSION, write_trace

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "PERFETTO_VERSION",
    "ROOT_LOGGER_NAME",
    "TRACE_FORMATS",
    "TRACE_VERSION",
    "CompareReport",
    "LedgerEntry",
    "MemoryMeter",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "TelemetrySession",
    "UnitTelemetry",
    "append_entry",
    "collection_enabled",
    "compare_entries",
    "compare_ledger",
    "configure_logging",
    "current_recorder",
    "current_session",
    "dominant_phase",
    "entry_from_sessions",
    "format_ledger",
    "memory_collection_enabled",
    "percentile",
    "read_ledger",
    "recording",
    "render_report",
    "report_json_dict",
    "rss_peak_bytes",
    "set_collection",
    "set_memory_collection",
    "span",
    "span_self_times",
    "summarize",
    "telemetry",
    "trace_events",
    "write_perfetto",
    "write_trace",
]
