"""JSONL trace export for telemetry sessions.

A trace is a *sidecar* file written wherever the user points ``--trace``
— never into ``.repro-cache/``: cached records and their keys stay
byte-identical whether tracing is on or off.

Format: one JSON object per line.

* line 1 — ``{"type": "meta", "version": 1, ...}`` (command, scenario,
  whatever the caller passes),
* one ``{"type": "unit", ...}`` line per computed unit, with its spans
  (name, start offset, duration, parent index, attrs) and counters,
* last line — ``{"type": "summary", ...}`` with the aggregated metrics
  (histograms summarised to count/total/p50/p95/max), notes, and
  per-worker busy time.

The format is deliberately dumb enough to consume with ``jq`` or a
five-line script; ``TRACE_VERSION`` guards future shape changes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Mapping

from repro.obs.session import TelemetrySession

__all__ = ["TRACE_VERSION", "write_trace"]

TRACE_VERSION = 1


def write_trace(
    path: str | Path,
    session: TelemetrySession,
    *,
    meta: Mapping[str, Any] | None = None,
) -> int:
    """Write *session* as a JSONL trace to *path*; returns line count."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    lines: list[dict[str, Any]] = [{
        "type": "meta",
        "version": TRACE_VERSION,
        "created_unix": round(time.time(), 3),
        **dict(meta or {}),
    }]
    for unit in session.units:
        lines.append({"type": "unit", **unit.to_json_dict()})
    lines.append({
        "type": "summary",
        "elapsed_s": round(session.elapsed_s, 9),
        "memory_captured": session.has_memory(),
        "metrics": session.metrics.to_json_dict(),
        "notes": dict(session.notes),
        "worker_busy_s": {
            worker: round(busy, 9)
            for worker, busy in sorted(session.worker_busy.items())
        },
    })
    with open(target, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=False))
            handle.write("\n")
    return len(lines)
