"""Render a telemetry session as a human-readable profile report.

The centerpiece is the per-phase table: for each instrumented phase
(``graph_build``, ``simulate``, ``optimum``, ``measure:quality``, …) it
shows sample count, p50/p95/max *self* time per unit, the total, and the
share of all unit wall time.  Self times (durations minus nested child
spans) are what make the table sum up: phases plus the ``(unaccounted)``
residual reconcile with total unit wall time instead of double-counting
the optimum inside its enclosing measure.
"""

from __future__ import annotations

from typing import Any

from repro.obs.session import TelemetrySession
from repro.obs.spans import UnitTelemetry

__all__ = ["dominant_phase", "render_report", "report_json_dict"]


def _format_table(headers, rows, *, title=None):
    # Imported lazily: ``repro.analysis`` pulls in the runtime, and the
    # runtime's modules import ``repro.obs.spans`` (which executes this
    # package's ``__init__``) — a module-level import here would close
    # that cycle.
    from repro.analysis.report import format_table

    return format_table(headers, rows, title=title)


def _fmt_s(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.2f}ms"


def _fmt_bytes(count: float) -> str:
    # Local rather than ``repro.engine.cache.human_bytes``: importing the
    # engine here would re-open the cycle the lazy format_table avoids.
    scaled = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if scaled < 1024 or unit == "GiB":
            return (
                f"{scaled:.0f}{unit}" if unit == "B"
                else f"{scaled:.1f}{unit}"
            )
        scaled /= 1024
    raise AssertionError("unreachable")


def dominant_phase(unit: UnitTelemetry) -> str:
    """The phase this unit spent most of its instrumented time in."""
    phases = unit.phase_self_times()
    if not phases:
        return "-"
    return max(phases.items(), key=lambda kv: kv[1])[0]


def _phase_table(session: TelemetrySession) -> str:
    wall_total = session.unit_wall_total_s()
    with_memory = session.has_memory()

    def mem_cells(name: str) -> tuple[str, ...]:
        if not with_memory:
            return ()
        m = session.metrics.summary(f"phase_mem.{name}")
        if not m["count"]:
            return ("-", "-", "-")
        return (
            _fmt_bytes(m["p50"]), _fmt_bytes(m["p95"]), _fmt_bytes(m["max"])
        )

    rows = []
    for name in session.phase_names():
        s = session.metrics.summary(f"phase.{name}")
        share = s["total"] / wall_total if wall_total else 0.0
        rows.append((
            name,
            s["count"],
            _fmt_s(s["p50"]),
            _fmt_s(s["p95"]),
            _fmt_s(s["max"]),
            _fmt_s(s["total"]),
            f"{share * 100:.1f}%",
            *mem_cells(name),
        ))
    unaccounted = session.unaccounted_s()
    share = unaccounted / wall_total if wall_total else 0.0
    blanks = ("", "", "") if with_memory else ()
    rows.append((
        "(unaccounted)", "", "", "", "",
        _fmt_s(max(0.0, unaccounted)), f"{share * 100:.1f}%", *blanks,
    ))
    unit_mem = (
        session.metrics.summary("unit.mem_peak_b") if with_memory else None
    )
    rows.append((
        "total (unit wall)", len(session.units), "", "", "",
        _fmt_s(wall_total), "100.0%" if wall_total else "-",
        *(
            (
                _fmt_bytes(unit_mem["p50"]),
                _fmt_bytes(unit_mem["p95"]),
                _fmt_bytes(unit_mem["max"]),
            )
            if unit_mem is not None and unit_mem["count"] else blanks
        ),
    ))
    headers = ["phase", "count", "p50", "p95", "max", "total", "share"]
    if with_memory:
        # Peak traced bytes live while the phase was open, per unit.
        headers += ["mem p50", "mem p95", "mem max"]
    return _format_table(headers, rows, title="per-phase self time")


def _top_units_table(session: TelemetrySession, top: int) -> str:
    rows = [
        (
            f"{unit.algorithm} @ {unit.label}",
            unit.measure,
            _fmt_s(unit.wall_s),
            dominant_phase(unit),
            unit.worker,
        )
        for unit in session.top_units(top)
    ]
    return _format_table(
        ["unit", "measure", "wall", "dominant phase", "worker"],
        rows,
        title=f"top {len(rows)} slowest units",
    )


def _counter_lines(session: TelemetrySession) -> list[str]:
    m = session.metrics
    lines = []
    computed = m.counter("units.computed")
    wall = session.unit_wall_total_s()
    if computed:
        rate = f", {computed / wall:.2f} units/s" if wall else ""
        lines.append(
            f"units: {computed:g} computed in {_fmt_s(wall)} busy time"
            f"{rate} (session elapsed {_fmt_s(session.elapsed_s)})"
        )
    rounds = m.counter("runtime.rounds")
    if m.counter("runtime.runs"):
        delivered = m.counter("runtime.messages.delivered")
        dropped = m.counter("runtime.messages.dropped")
        per_s = f", {rounds / wall:.1f} rounds/s" if wall else ""
        vector_runs = m.counter("runtime.vector.runs")
        vector_note = (
            f" ({vector_runs:g} on the vector engine)" if vector_runs else ""
        )
        lines.append(
            f"runtime: {m.counter('runtime.runs'):g} runs{vector_note}, "
            f"{rounds:g} rounds{per_s}; messages: {delivered:g} "
            f"delivered, {dropped:g} dropped"
        )
    built = m.counter("graph_build.graphs")
    if built:
        edges = m.counter("graph_build.edges")
        build_s = sum(
            m.summary(name)["total"]
            for name in m.histogram_names(prefix="phase.graph_build")
        )
        per_s = f", {edges / build_s:,.0f} edges/s" if build_s else ""
        lines.append(
            f"graph build: {built:g} graph(s), {int(edges):,} edge(s) in "
            f"{_fmt_s(build_s)}{per_s}"
        )
    sandwiches = m.counter("optimum.sandwich")
    if sandwiches:
        mean_gap = m.counter("optimum.gap_total") / sandwiches
        verify = m.summary("phase.optimum_verify")
        lines.append(
            f"optimum: {sandwiches:g} ν-sandwich bound(s), mean gap "
            f"(dual−primal) {mean_gap:.1f}; certificate verification "
            f"{_fmt_s(verify['total'])} total "
            f"(p50 {_fmt_s(verify['p50'])} per unit)"
        )
    if session.has_memory():
        unit_mem = m.summary("unit.mem_peak_b")
        rss = m.summary("unit.rss_peak_b")
        rss_note = (
            f"; process peak RSS {_fmt_bytes(rss['max'])}"
            if rss["count"] else ""
        )
        lines.append(
            f"memory: traced peak per unit p50 {_fmt_bytes(unit_mem['p50'])}"
            f" / p95 {_fmt_bytes(unit_mem['p95'])}"
            f" / max {_fmt_bytes(unit_mem['max'])}{rss_note}"
        )
        engines = m.histogram_names(prefix="engine_mem.")
        if engines:
            per_engine = ", ".join(
                f"{name[len('engine_mem.'):]} "
                f"p50 {_fmt_bytes(m.summary(name)['p50'])} "
                f"max {_fmt_bytes(m.summary(name)['max'])} "
                f"({m.summary(name)['count']:g} unit(s))"
                for name in engines
            )
            lines.append(f"memory by engine: {per_engine}")
    hits, misses = m.counter("cache.hit"), m.counter("cache.miss")
    if hits or misses:
        reads = m.summary("cache.read_s")
        writes = m.summary("cache.write_s")
        evicted = m.counter("cache.evict")
        lines.append(
            f"cache: {hits:g} hit(s), {misses:g} miss(es), "
            f"{evicted:g} evicted; read p50 {_fmt_s(reads['p50'])} "
            f"p95 {_fmt_s(reads['p95'])}, write p50 {_fmt_s(writes['p50'])}"
        )
    if session.worker_busy:
        busiest = sorted(
            session.worker_busy.items(), key=lambda kv: -kv[1]
        )
        shown = ", ".join(
            f"{worker} {_fmt_s(busy)}" for worker, busy in busiest[:4]
        )
        more = f" (+{len(busiest) - 4} more)" if len(busiest) > 4 else ""
        lines.append(f"workers: {len(busiest)} busy — {shown}{more}")
    lines.extend(
        f"{name}: {value}" for name, value in sorted(session.notes.items())
    )
    return lines


def report_json_dict(
    session: TelemetrySession,
    *,
    top: int = 5,
    title: str = "telemetry report",
) -> dict[str, Any]:
    """The profile report as one machine-readable JSON document.

    The same content as :func:`render_report` — phase table, slowest
    units, counters — with raw numbers instead of formatted strings
    (``repro-eds profile --format json``).
    """
    wall_total = session.unit_wall_total_s()
    with_memory = session.has_memory()
    phases = []
    for name in session.phase_names():
        s = session.metrics.summary(f"phase.{name}")
        row: dict[str, Any] = {
            "name": name,
            "count": s["count"],
            "p50_s": round(s["p50"], 9),
            "p95_s": round(s["p95"], 9),
            "max_s": round(s["max"], 9),
            "total_s": round(s["total"], 9),
            "share": round(s["total"] / wall_total, 6) if wall_total else 0.0,
        }
        if with_memory:
            m = session.metrics.summary(f"phase_mem.{name}")
            if m["count"]:
                row["mem_peak_p50_b"] = round(m["p50"])
                row["mem_peak_p95_b"] = round(m["p95"])
                row["mem_peak_max_b"] = round(m["max"])
        phases.append(row)
    units = []
    for unit in session.top_units(top):
        entry: dict[str, Any] = {
            "key": unit.key,
            "algorithm": unit.algorithm,
            "label": unit.label,
            "measure": unit.measure,
            "wall_s": round(unit.wall_s, 9),
            "dominant_phase": dominant_phase(unit),
            "worker": unit.worker,
        }
        if unit.mem_peak_b is not None:
            entry["mem_peak_b"] = unit.mem_peak_b
        units.append(entry)
    return {
        "title": title,
        "elapsed_s": round(session.elapsed_s, 9),
        "units_computed": len(session.units),
        "unit_wall_total_s": round(wall_total, 9),
        "unaccounted_s": round(session.unaccounted_s(), 9),
        "memory_captured": with_memory,
        "phases": phases,
        "top_units": units,
        "metrics": session.metrics.to_json_dict(),
        "notes": dict(session.notes),
        "worker_busy_s": {
            worker: round(busy, 9)
            for worker, busy in sorted(session.worker_busy.items())
        },
    }


def render_report(
    session: TelemetrySession,
    *,
    top: int = 5,
    title: str = "telemetry report",
) -> str:
    """Render the full profile: phase table, slowest units, counters."""
    parts = [title, "=" * len(title), ""]
    if not session.units:
        parts.append("no units were computed (all served from cache?)")
        parts.extend(_counter_lines(session))
        return "\n".join(parts)
    parts.append(_phase_table(session))
    parts.append("")
    if top > 0:
        parts.append(_top_units_table(session, top))
        parts.append("")
    parts.extend(_counter_lines(session))
    return "\n".join(parts)
