"""Render a telemetry session as a human-readable profile report.

The centerpiece is the per-phase table: for each instrumented phase
(``graph_build``, ``simulate``, ``optimum``, ``measure:quality``, …) it
shows sample count, p50/p95/max *self* time per unit, the total, and the
share of all unit wall time.  Self times (durations minus nested child
spans) are what make the table sum up: phases plus the ``(unaccounted)``
residual reconcile with total unit wall time instead of double-counting
the optimum inside its enclosing measure.
"""

from __future__ import annotations

from repro.obs.session import TelemetrySession
from repro.obs.spans import UnitTelemetry

__all__ = ["dominant_phase", "render_report"]


def _format_table(headers, rows, *, title=None):
    # Imported lazily: ``repro.analysis`` pulls in the runtime, and the
    # runtime's modules import ``repro.obs.spans`` (which executes this
    # package's ``__init__``) — a module-level import here would close
    # that cycle.
    from repro.analysis.report import format_table

    return format_table(headers, rows, title=title)


def _fmt_s(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.2f}ms"


def dominant_phase(unit: UnitTelemetry) -> str:
    """The phase this unit spent most of its instrumented time in."""
    phases = unit.phase_self_times()
    if not phases:
        return "-"
    return max(phases.items(), key=lambda kv: kv[1])[0]


def _phase_table(session: TelemetrySession) -> str:
    wall_total = session.unit_wall_total_s()
    rows = []
    for name in session.phase_names():
        s = session.metrics.summary(f"phase.{name}")
        share = s["total"] / wall_total if wall_total else 0.0
        rows.append((
            name,
            s["count"],
            _fmt_s(s["p50"]),
            _fmt_s(s["p95"]),
            _fmt_s(s["max"]),
            _fmt_s(s["total"]),
            f"{share * 100:.1f}%",
        ))
    unaccounted = session.unaccounted_s()
    share = unaccounted / wall_total if wall_total else 0.0
    rows.append((
        "(unaccounted)", "", "", "", "",
        _fmt_s(max(0.0, unaccounted)), f"{share * 100:.1f}%",
    ))
    rows.append((
        "total (unit wall)", len(session.units), "", "", "",
        _fmt_s(wall_total), "100.0%" if wall_total else "-",
    ))
    return _format_table(
        ["phase", "count", "p50", "p95", "max", "total", "share"],
        rows,
        title="per-phase self time",
    )


def _top_units_table(session: TelemetrySession, top: int) -> str:
    rows = [
        (
            f"{unit.algorithm} @ {unit.label}",
            unit.measure,
            _fmt_s(unit.wall_s),
            dominant_phase(unit),
            unit.worker,
        )
        for unit in session.top_units(top)
    ]
    return _format_table(
        ["unit", "measure", "wall", "dominant phase", "worker"],
        rows,
        title=f"top {len(rows)} slowest units",
    )


def _counter_lines(session: TelemetrySession) -> list[str]:
    m = session.metrics
    lines = []
    computed = m.counter("units.computed")
    wall = session.unit_wall_total_s()
    if computed:
        rate = f", {computed / wall:.2f} units/s" if wall else ""
        lines.append(
            f"units: {computed:g} computed in {_fmt_s(wall)} busy time"
            f"{rate} (session elapsed {_fmt_s(session.elapsed_s)})"
        )
    rounds = m.counter("runtime.rounds")
    if m.counter("runtime.runs"):
        delivered = m.counter("runtime.messages.delivered")
        dropped = m.counter("runtime.messages.dropped")
        per_s = f", {rounds / wall:.1f} rounds/s" if wall else ""
        vector_runs = m.counter("runtime.vector.runs")
        vector_note = (
            f" ({vector_runs:g} on the vector engine)" if vector_runs else ""
        )
        lines.append(
            f"runtime: {m.counter('runtime.runs'):g} runs{vector_note}, "
            f"{rounds:g} rounds{per_s}; messages: {delivered:g} "
            f"delivered, {dropped:g} dropped"
        )
    sandwiches = m.counter("optimum.sandwich")
    if sandwiches:
        mean_gap = m.counter("optimum.gap_total") / sandwiches
        verify = m.summary("phase.optimum_verify")
        lines.append(
            f"optimum: {sandwiches:g} ν-sandwich bound(s), mean gap "
            f"(dual−primal) {mean_gap:.1f}; certificate verification "
            f"{_fmt_s(verify['total'])} total "
            f"(p50 {_fmt_s(verify['p50'])} per unit)"
        )
    hits, misses = m.counter("cache.hit"), m.counter("cache.miss")
    if hits or misses:
        reads = m.summary("cache.read_s")
        writes = m.summary("cache.write_s")
        evicted = m.counter("cache.evict")
        lines.append(
            f"cache: {hits:g} hit(s), {misses:g} miss(es), "
            f"{evicted:g} evicted; read p50 {_fmt_s(reads['p50'])} "
            f"p95 {_fmt_s(reads['p95'])}, write p50 {_fmt_s(writes['p50'])}"
        )
    if session.worker_busy:
        busiest = sorted(
            session.worker_busy.items(), key=lambda kv: -kv[1]
        )
        shown = ", ".join(
            f"{worker} {_fmt_s(busy)}" for worker, busy in busiest[:4]
        )
        more = f" (+{len(busiest) - 4} more)" if len(busiest) > 4 else ""
        lines.append(f"workers: {len(busiest)} busy — {shown}{more}")
    lines.extend(
        f"{name}: {value}" for name, value in sorted(session.notes.items())
    )
    return lines


def render_report(
    session: TelemetrySession,
    *,
    top: int = 5,
    title: str = "telemetry report",
) -> str:
    """Render the full profile: phase table, slowest units, counters."""
    parts = [title, "=" * len(title), ""]
    if not session.units:
        parts.append("no units were computed (all served from cache?)")
        parts.extend(_counter_lines(session))
        return "\n".join(parts)
    parts.append(_phase_table(session))
    parts.append("")
    if top > 0:
        parts.append(_top_units_table(session, top))
        parts.append("")
    parts.extend(_counter_lines(session))
    return "\n".join(parts)
