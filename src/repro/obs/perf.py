"""The perf ledger: an append-only performance history with regression
detection.

The committed ``BENCH_*.json`` files are overwritten snapshots — they
say how fast the code is *now*, never whether it got slower.  The
ledger fixes that: every ``repro-eds perf record`` (and every benchmark
run with ``--ledger``) appends **one JSON line** to a ledger file
(default ``PERF_LEDGER.jsonl``) carrying the git SHA, scenario, engine,
per-phase self-time medians across reps, unit wall time, peak memory
(when captured), and whether numpy was importable.  Nothing is ever
rewritten, so the file *is* the performance trajectory.

``repro-eds perf compare`` then does noise-aware regression detection:
for each ``(scenario, engine)`` group the newest entry is compared
against the **median of up to N prior entries** (medians across reps at
record time, median across runs at compare time — two layers of noise
suppression).  A phase regresses when it is more than ``threshold``
slower than baseline *and* above a minimum-seconds noise floor (5 ms
phases jitter wildly; flagging them would make the CI gate cry wolf).
:func:`compare_entries` returns the verdict; the CLI exits nonzero on
any regression, which is the whole CI gate.
"""

from __future__ import annotations

import importlib.util
import json
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.session import TelemetrySession

__all__ = [
    "DEFAULT_BASELINE_RUNS",
    "DEFAULT_LEDGER_PATH",
    "DEFAULT_MIN_PHASE_S",
    "DEFAULT_THRESHOLD",
    "LEDGER_VERSION",
    "CompareReport",
    "LedgerEntry",
    "PhaseDelta",
    "append_entry",
    "compare_entries",
    "compare_ledger",
    "entry_from_sessions",
    "format_entry",
    "format_ledger",
    "git_sha",
    "read_ledger",
]

LEDGER_VERSION = 1
DEFAULT_LEDGER_PATH = "PERF_LEDGER.jsonl"
#: Regression threshold: fail when a phase is >25% over baseline.
DEFAULT_THRESHOLD = 0.25
#: Noise floor: phases where both sides are under this many seconds are
#: never flagged (their jitter exceeds any honest threshold).
DEFAULT_MIN_PHASE_S = 0.005
#: How many prior runs the baseline median aggregates, at most.
DEFAULT_BASELINE_RUNS = 5

#: Pseudo-phase name for total unit wall time in compare tables.
WALL_PHASE = "(unit wall)"


def git_sha() -> str:
    """The current commit's short SHA, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _numpy_available() -> bool:
    return importlib.util.find_spec("numpy") is not None


@dataclass
class LedgerEntry:
    """One recorded benchmark run — one line of the ledger."""

    scenario: str
    engine: str
    #: Median self-time per phase across the run's reps, seconds.
    phases: dict[str, float] = field(default_factory=dict)
    #: Median total unit wall time across reps, seconds.
    unit_wall_s: float = 0.0
    units: int = 0
    reps: int = 1
    #: Median across reps of the per-rep max unit peak (traced bytes);
    #: ``None`` when memory capture was off.
    mem_peak_b: int | None = None
    rss_peak_b: int | None = None
    numpy: bool = False
    git_sha: str = "unknown"
    recorded_unix: float = 0.0
    python: str = ""
    note: str = ""

    def to_json_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "version": LEDGER_VERSION,
            "recorded_unix": round(self.recorded_unix, 3),
            "git_sha": self.git_sha,
            "scenario": self.scenario,
            "engine": self.engine,
            "reps": self.reps,
            "units": self.units,
            "numpy": self.numpy,
            "python": self.python,
            "unit_wall_s": round(self.unit_wall_s, 9),
            "phases": {
                name: round(seconds, 9)
                for name, seconds in sorted(self.phases.items())
            },
        }
        if self.mem_peak_b is not None:
            data["mem_peak_b"] = self.mem_peak_b
        if self.rss_peak_b is not None:
            data["rss_peak_b"] = self.rss_peak_b
        if self.note:
            data["note"] = self.note
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "LedgerEntry":
        return cls(
            scenario=data["scenario"],
            engine=data.get("engine", "default"),
            phases={
                str(k): float(v)
                for k, v in data.get("phases", {}).items()
            },
            unit_wall_s=float(data.get("unit_wall_s", 0.0)),
            units=int(data.get("units", 0)),
            reps=int(data.get("reps", 1)),
            mem_peak_b=data.get("mem_peak_b"),
            rss_peak_b=data.get("rss_peak_b"),
            numpy=bool(data.get("numpy", False)),
            git_sha=str(data.get("git_sha", "unknown")),
            recorded_unix=float(data.get("recorded_unix", 0.0)),
            python=str(data.get("python", "")),
            note=str(data.get("note", "")),
        )

    @property
    def group(self) -> tuple[str, str]:
        """Entries compare only within a ``(scenario, engine)`` group."""
        return (self.scenario, self.engine)


def entry_from_sessions(
    sessions: Sequence[TelemetrySession],
    *,
    scenario: str,
    engine: str,
    note: str = "",
    recorded_unix: float | None = None,
    sha: str | None = None,
) -> LedgerEntry:
    """Fold the telemetry sessions of a run's reps into one entry.

    Each session is one repetition of the same work; per-phase medians
    across reps are the first layer of noise suppression (the second is
    the baseline median in :func:`compare_entries`).
    """
    if not sessions:
        raise ValueError("entry_from_sessions needs at least one session")
    phase_samples: dict[str, list[float]] = {}
    wall_samples: list[float] = []
    mem_samples: list[float] = []
    rss_samples: list[float] = []
    for session in sessions:
        wall_samples.append(session.unit_wall_total_s())
        for name in session.metrics.histogram_names(prefix="phase."):
            phase_samples.setdefault(name[len("phase."):], []).append(
                session.metrics.summary(name)["total"]
            )
        if session.has_memory():
            mem_samples.append(
                session.metrics.summary("unit.mem_peak_b")["max"]
            )
            rss = session.metrics.summary("unit.rss_peak_b")
            if rss["count"]:
                rss_samples.append(rss["max"])
    return LedgerEntry(
        scenario=scenario,
        engine=engine,
        phases={
            name: statistics.median(samples)
            for name, samples in phase_samples.items()
        },
        unit_wall_s=statistics.median(wall_samples),
        units=max(len(s.units) for s in sessions),
        reps=len(sessions),
        mem_peak_b=(
            int(statistics.median(mem_samples)) if mem_samples else None
        ),
        rss_peak_b=(
            int(statistics.median(rss_samples)) if rss_samples else None
        ),
        numpy=_numpy_available(),
        git_sha=sha if sha is not None else git_sha(),
        recorded_unix=(
            recorded_unix if recorded_unix is not None else time.time()
        ),
        python=platform.python_version(),
        note=note,
    )


# ---------------------------------------------------------------------------
# Ledger file I/O
# ---------------------------------------------------------------------------


def append_entry(path: str | Path, entry: LedgerEntry) -> None:
    """Append one entry to the ledger (created on first use)."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry.to_json_dict(), sort_keys=False))
        handle.write("\n")


def read_ledger(path: str | Path) -> list[LedgerEntry]:
    """All ledger entries in file (i.e. chronological) order."""
    target = Path(path)
    if not target.exists():
        return []
    entries = []
    with open(target, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(LedgerEntry.from_json_dict(json.loads(line)))
    return entries


# ---------------------------------------------------------------------------
# Regression detection
# ---------------------------------------------------------------------------


@dataclass
class PhaseDelta:
    """One phase's current-vs-baseline comparison."""

    phase: str
    baseline_s: float
    current_s: float
    regressed: bool
    improved: bool

    @property
    def ratio(self) -> float:
        if self.baseline_s <= 0:
            return float("inf") if self.current_s > 0 else 1.0
        return self.current_s / self.baseline_s


@dataclass
class CompareReport:
    """The verdict for one ``(scenario, engine)`` group."""

    scenario: str
    engine: str
    baseline_runs: int
    current: LedgerEntry
    deltas: list[PhaseDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[PhaseDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self, *, threshold: float = DEFAULT_THRESHOLD) -> str:
        head = (
            f"{self.scenario} / {self.engine} — current {self.current.git_sha}"
            f" vs median of {self.baseline_runs} prior run(s), "
            f"threshold +{threshold * 100:.0f}%"
        )
        lines = [head]
        for d in sorted(self.deltas, key=lambda d: -d.current_s):
            change = (d.ratio - 1.0) * 100
            flag = (
                "  << REGRESSION" if d.regressed
                else "  (improved)" if d.improved else ""
            )
            lines.append(
                f"  {d.phase:<24} {d.baseline_s * 1000:>10.2f}ms -> "
                f"{d.current_s * 1000:>10.2f}ms  {change:+7.1f}%{flag}"
            )
        if not self.deltas:
            lines.append("  (no phases in common with the baseline)")
        lines.append(
            "  verdict: "
            + ("OK" if self.ok
               else f"{len(self.regressions)} phase(s) regressed")
        )
        return "\n".join(lines)


def compare_entries(
    baseline: Sequence[LedgerEntry],
    current: LedgerEntry,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_phase_s: float = DEFAULT_MIN_PHASE_S,
) -> CompareReport:
    """Compare *current* against the per-phase median of *baseline*.

    A phase regresses when ``current > baseline * (1 + threshold)`` and
    at least one side clears the *min_phase_s* noise floor.  Total unit
    wall time participates as the pseudo-phase ``(unit wall)``.
    """
    report = CompareReport(
        scenario=current.scenario,
        engine=current.engine,
        baseline_runs=len(baseline),
        current=current,
    )

    def judge(name: str, base_samples: list[float], now: float) -> None:
        if not base_samples:
            return
        base = statistics.median(base_samples)
        above_floor = now >= min_phase_s or base >= min_phase_s
        report.deltas.append(PhaseDelta(
            phase=name,
            baseline_s=base,
            current_s=now,
            regressed=above_floor and now > base * (1.0 + threshold),
            improved=above_floor and base > 0
            and now < base / (1.0 + threshold),
        ))

    for phase, now in sorted(current.phases.items()):
        judge(
            phase,
            [e.phases[phase] for e in baseline if phase in e.phases],
            now,
        )
    judge(
        WALL_PHASE,
        [e.unit_wall_s for e in baseline if e.unit_wall_s > 0],
        current.unit_wall_s,
    )
    return report


def compare_ledger(
    entries: Iterable[LedgerEntry],
    *,
    scenario: str | None = None,
    engine: str | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    min_phase_s: float = DEFAULT_MIN_PHASE_S,
    baseline_runs: int = DEFAULT_BASELINE_RUNS,
) -> list[CompareReport]:
    """Compare the newest entry of each ``(scenario, engine)`` group.

    Groups with fewer than two entries have nothing to compare against
    and are skipped.  *scenario* / *engine* filter the groups.
    """
    groups: dict[tuple[str, str], list[LedgerEntry]] = {}
    for entry in entries:
        if scenario is not None and entry.scenario != scenario:
            continue
        if engine is not None and entry.engine != engine:
            continue
        groups.setdefault(entry.group, []).append(entry)
    reports = []
    for _, group in sorted(groups.items()):
        if len(group) < 2:
            continue
        baseline = group[-1 - baseline_runs:-1]
        reports.append(compare_entries(
            baseline, group[-1],
            threshold=threshold, min_phase_s=min_phase_s,
        ))
    return reports


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_mem(value: int | None) -> str:
    if value is None:
        return "-"
    scaled = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if scaled < 1024 or unit == "GiB":
            return (
                f"{scaled:.0f}{unit}" if unit == "B" else f"{scaled:.1f}{unit}"
            )
        scaled /= 1024
    raise AssertionError("unreachable")


def format_entry(entry: LedgerEntry) -> str:
    """One recorded entry as a short human-readable block."""
    top = sorted(entry.phases.items(), key=lambda kv: -kv[1])[:4]
    phase_text = ", ".join(
        f"{name} {seconds * 1000:.1f}ms" for name, seconds in top
    )
    mem = (
        f", peak mem {_fmt_mem(entry.mem_peak_b)}"
        if entry.mem_peak_b is not None else ""
    )
    return (
        f"recorded {entry.scenario} / {entry.engine} @ {entry.git_sha}: "
        f"{entry.units} unit(s) x {entry.reps} rep(s), "
        f"wall {entry.unit_wall_s * 1000:.1f}ms{mem}\n"
        f"  slowest phases: {phase_text or '(none)'}"
    )


def format_ledger(entries: Sequence[LedgerEntry]) -> str:
    """The whole ledger as a chronological trajectory table."""
    if not entries:
        return "perf ledger: empty (run `repro-eds perf record` first)"
    # Imported lazily for the same cycle reason as repro.obs.report.
    from repro.analysis.report import format_table

    rows = []
    for entry in entries:
        stamp = (
            time.strftime("%Y-%m-%d %H:%M", time.gmtime(entry.recorded_unix))
            if entry.recorded_unix else "-"
        )
        dominant = max(
            entry.phases.items(), key=lambda kv: kv[1], default=("-", 0.0)
        )
        rows.append((
            stamp,
            entry.git_sha,
            entry.scenario,
            entry.engine,
            f"{entry.units}x{entry.reps}",
            f"{entry.unit_wall_s * 1000:.1f}ms",
            f"{dominant[0]} ({dominant[1] * 1000:.1f}ms)",
            _fmt_mem(entry.mem_peak_b),
            "yes" if entry.numpy else "no",
        ))
    return format_table(
        ["recorded (UTC)", "sha", "scenario", "engine", "units",
         "unit wall", "dominant phase", "peak mem", "numpy"],
        rows,
        title=f"perf ledger — {len(entries)} run(s)",
    )
