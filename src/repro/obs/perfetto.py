"""Chrome trace-event export: open telemetry sessions in Perfetto.

:func:`write_perfetto` converts a :class:`~repro.obs.session.
TelemetrySession` into the Chrome trace-event JSON format (the *JSON
object format*: ``{"traceEvents": [...], ...}``), which
``ui.perfetto.dev`` and ``chrome://tracing`` load directly.  Like the
JSONL trace it is a sidecar — never written into the cache directory.

Mapping:

* one **process track per worker** (``pid:thread`` from
  :func:`~repro.obs.spans.worker_id`), named via ``process_name`` /
  ``thread_name`` metadata events;
* each unit becomes an enclosing complete event (``ph: "X"``, category
  ``unit``) with its spans nested inside (category ``phase``), carrying
  span attrs — and memory fields under ``--mem`` — in ``args``;
* **counter tracks** (``ph: "C"``) per worker for rounds, messages
  (delivered/dropped), and — when memory was captured — traced peak
  bytes, sampled once per unit.

Per-unit spans only record offsets from *unit* start (wall-clock
anchors would break byte-reproducibility guarantees elsewhere), so
units are laid out **sequentially per worker track**, each starting
where the previous one on that worker ended.  Within a worker the
layout is faithful to per-unit timing; gaps between units (cache reads,
dispatch) are not represented.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.obs.session import TelemetrySession
from repro.obs.spans import UnitTelemetry

__all__ = [
    "PERFETTO_VERSION",
    "TRACE_FORMATS",
    "trace_events",
    "write_perfetto",
]

PERFETTO_VERSION = 1

#: Trace formats the CLI can write (``--trace-format``); ``jsonl`` is
#: :func:`repro.obs.trace.write_trace`, ``perfetto`` is this module.
TRACE_FORMATS = ("jsonl", "perfetto")


def _worker_ids(session: TelemetrySession) -> dict[str, tuple[int, int]]:
    """Stable ``worker string -> (pid, tid)`` assignment.

    The pid is parsed from the worker id; thread names within one
    process get sequential tids (Perfetto wants small integers, not
    thread names).
    """
    ids: dict[str, tuple[int, int]] = {}
    next_tid: dict[int, int] = {}
    for unit in session.units:
        if unit.worker in ids:
            continue
        pid_text = unit.worker.split(":", 1)[0]
        try:
            pid = int(pid_text)
        except ValueError:
            pid = 1 + len({p for p, _ in ids.values()})
        tid = next_tid.get(pid, 1)
        next_tid[pid] = tid + 1
        ids[unit.worker] = (pid, tid)
    return ids


def _us(seconds: float) -> int:
    return int(round(seconds * 1_000_000))


def _span_args(span: Any) -> dict[str, Any]:
    args = dict(span.attrs)
    if span.mem_peak_b is not None:
        args["mem_alloc_b"] = span.mem_alloc_b
        args["mem_peak_b"] = span.mem_peak_b
        if span.mem_rss_b is not None:
            args["mem_rss_b"] = span.mem_rss_b
    return args


def _unit_events(
    unit: UnitTelemetry, *, pid: int, tid: int, start_us: int
) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = [{
        "name": f"{unit.algorithm} @ {unit.label}",
        "cat": "unit",
        "ph": "X",
        "ts": start_us,
        "dur": max(1, _us(unit.wall_s)),
        "pid": pid,
        "tid": tid,
        "args": {
            "key": unit.key,
            "measure": unit.measure,
            **(
                {"mem_peak_b": unit.mem_peak_b}
                if unit.mem_peak_b is not None else {}
            ),
        },
    }]
    for span_ in unit.spans:
        events.append({
            "name": span_.name,
            "cat": "phase",
            "ph": "X",
            "ts": start_us + _us(span_.start_s),
            "dur": max(1, _us(span_.duration_s)),
            "pid": pid,
            "tid": tid,
            "args": _span_args(span_),
        })
    counters = unit.counters
    rounds = counters.get("runtime.rounds")
    if rounds is not None:
        events.append({
            "name": "rounds", "cat": "counter", "ph": "C",
            "ts": start_us, "pid": pid,
            "args": {"rounds": rounds},
        })
    delivered = counters.get("runtime.messages.delivered")
    if delivered is not None:
        events.append({
            "name": "messages", "cat": "counter", "ph": "C",
            "ts": start_us, "pid": pid,
            "args": {
                "delivered": delivered,
                "dropped": counters.get("runtime.messages.dropped", 0),
            },
        })
    if unit.mem_peak_b is not None:
        events.append({
            "name": "bytes", "cat": "counter", "ph": "C",
            "ts": start_us, "pid": pid,
            "args": {
                "traced_peak": unit.mem_peak_b,
                **(
                    {"rss_peak": unit.rss_peak_b}
                    if unit.rss_peak_b is not None else {}
                ),
            },
        })
    return events


def trace_events(session: TelemetrySession) -> list[dict[str, Any]]:
    """The session as a list of Chrome trace-event dicts."""
    worker_ids = _worker_ids(session)
    events: list[dict[str, Any]] = []
    for worker, (pid, tid) in sorted(worker_ids.items()):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": f"worker {worker.split(':', 1)[0]}"},
        })
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": worker.split(":", 1)[-1]},
        })
    cursor_us: dict[str, int] = {}
    for unit in session.units:
        pid, tid = worker_ids[unit.worker]
        start_us = cursor_us.get(unit.worker, 0)
        events.extend(
            _unit_events(unit, pid=pid, tid=tid, start_us=start_us)
        )
        cursor_us[unit.worker] = start_us + max(1, _us(unit.wall_s))
    return events


def write_perfetto(
    path: str | Path,
    session: TelemetrySession,
    *,
    meta: Mapping[str, Any] | None = None,
) -> int:
    """Write *session* as a Chrome/Perfetto trace; returns event count.

    The output is the JSON *object* form so ``otherData`` can carry the
    same metadata the JSONL trace's meta line does.
    """
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    events = trace_events(session)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.perfetto",
            "version": str(PERFETTO_VERSION),
            **{k: str(v) for k, v in dict(meta or {}).items()},
        },
    }
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(events)
