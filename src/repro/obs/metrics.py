"""Counters, gauges, and histograms aggregated across workers.

A :class:`MetricsRegistry` is the session-level aggregate: the executor
merges every computed unit's counters into it, the cache feeds it
hit/miss counts and read/write latencies, and the report renderer reads
its histograms for p50/p95/max summaries.

Metric names used by the built-in instrumentation:

======================================  =======================================
``units.computed``                      counter — units actually executed
``unit.wall_s``                         histogram — per-unit wall time
``phase.<name>``                        histogram — per-unit phase self time
``runtime.runs``                        counter — scheduler executions
``runtime.vector.runs``                 counter — runs on the vector engine
``runtime.rounds``                      counter — communication rounds
``runtime.messages.delivered``          counter — messages delivered
``runtime.messages.dropped``            counter — sends to halted nodes
``cache.hit`` / ``cache.miss``          counters — result-cache lookups
``cache.evict``                         counter — entries removed by gc
``cache.read_s`` / ``cache.write_s``    histograms — cache IO latency
======================================  =======================================

Everything here is plain Python over plain dicts: no dependencies, no
background threads, safe to pickle-merge across process boundaries.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = ["MetricsRegistry", "percentile", "summarize"]


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile of *values*; ``q`` in [0, 1]."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(values: Iterable[float]) -> dict[str, float]:
    """count / total / p50 / p95 / max summary of a histogram's samples."""
    ordered = sorted(values)
    if not ordered:
        return {"count": 0, "total": 0.0, "p50": 0.0, "p95": 0.0,
                "max": 0.0}
    return {
        "count": len(ordered),
        "total": sum(ordered),
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "max": ordered[-1],
    }


class MetricsRegistry:
    """Session-scoped counters, gauges, and histogram samples."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, []).append(value)

    def merge_counters(self, counters: Mapping[str, float]) -> None:
        for name, value in counters.items():
            self.inc(name, value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def samples(self, name: str) -> list[float]:
        return self.histograms.get(name, [])

    def summary(self, name: str) -> dict[str, float]:
        return summarize(self.histograms.get(name, ()))

    def histogram_names(self, prefix: str = "") -> list[str]:
        return sorted(
            name for name in self.histograms if name.startswith(prefix)
        )

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: {
                    k: (round(v, 9) if isinstance(v, float) else v)
                    for k, v in self.summary(name).items()
                }
                for name in sorted(self.histograms)
            },
        }
