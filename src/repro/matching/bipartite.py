"""Maximum bipartite matching (Hopcroft-Karp), implemented from scratch.

This is a substrate module: Petersen 2-factorisation
(:mod:`repro.factorization.two_factor`) decomposes an Euler orientation
into perfect matchings of a k-regular bipartite graph, and König
1-factorisation peels perfect matchings off regular bipartite graphs.

The implementation is the standard Hopcroft-Karp algorithm: alternate
breadth-first phases that compute the layered graph of shortest augmenting
paths with depth-first augmentation along them, giving
``O(E * sqrt(V))`` time.  Tests cross-check it against networkx.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping

__all__ = ["maximum_bipartite_matching", "is_perfect_matching_of"]

_INF = float("inf")


def maximum_bipartite_matching(
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> dict[Hashable, Hashable]:
    """Return a maximum matching of a bipartite graph.

    Parameters
    ----------
    adjacency:
        Mapping from every left-side vertex to its right-side neighbours.
        Left and right vertex namespaces may overlap; they are treated as
        disjoint sides.

    Returns
    -------
    dict
        A mapping from matched left vertices to their right partners.
    """
    adj: dict[Hashable, tuple[Hashable, ...]] = {
        left: tuple(dict.fromkeys(rights)) for left, rights in adjacency.items()
    }
    left_vertices = sorted(adj, key=repr)

    match_left: dict[Hashable, Hashable] = {}
    match_right: dict[Hashable, Hashable] = {}
    dist: dict[Hashable, float] = {}

    def bfs() -> bool:
        queue: deque[Hashable] = deque()
        for left in left_vertices:
            if left not in match_left:
                dist[left] = 0
                queue.append(left)
            else:
                dist[left] = _INF
        found_free = False
        while queue:
            left = queue.popleft()
            for right in adj[left]:
                partner = match_right.get(right)
                if partner is None:
                    found_free = True
                elif dist[partner] == _INF:
                    dist[partner] = dist[left] + 1
                    queue.append(partner)
        return found_free

    def dfs(left: Hashable) -> bool:
        for right in adj[left]:
            partner = match_right.get(right)
            if partner is None or (
                dist[partner] == dist[left] + 1 and dfs(partner)
            ):
                match_left[left] = right
                match_right[right] = left
                return True
        dist[left] = _INF
        return False

    # Hopcroft-Karp phases.  The recursion depth of dfs is bounded by the
    # layered-graph depth; for very deep graphs convert to iterative.  The
    # graphs in this package stay comfortably within CPython's limit.
    while bfs():
        for left in left_vertices:
            if left not in match_left:
                dfs(left)
    return dict(match_left)


def is_perfect_matching_of(
    matching: Mapping[Hashable, Hashable],
    adjacency: Mapping[Hashable, Iterable[Hashable]],
) -> bool:
    """True when *matching* matches every left vertex along a valid edge."""
    if set(matching) != set(adjacency):
        return False
    used_right = set(matching.values())
    if len(used_right) != len(matching):
        return False
    return all(
        right in set(adjacency[left]) for left, right in matching.items()
    )
