"""Matching substrate: properties, greedy and exact solvers, bipartite
maximum matching, and the EDS-to-maximal-matching conversion of
Yannakakis-Gavril (paper Section 1.1)."""

from repro.matching.bipartite import (
    is_perfect_matching_of,
    maximum_bipartite_matching,
)
from repro.matching.convert import eds_to_maximal_matching
from repro.matching.exact import (
    brute_force_minimum_maximal_matching,
    minimum_maximal_matching,
)
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.properties import (
    covered_nodes,
    degree_in,
    has_path_of_length_three,
    is_edge_cover,
    is_forest,
    is_k_matching,
    is_matching,
    is_maximal_matching,
    is_star_forest,
)

__all__ = [
    "maximum_bipartite_matching",
    "is_perfect_matching_of",
    "greedy_maximal_matching",
    "minimum_maximal_matching",
    "brute_force_minimum_maximal_matching",
    "eds_to_maximal_matching",
    "covered_nodes",
    "degree_in",
    "is_matching",
    "is_k_matching",
    "is_maximal_matching",
    "is_edge_cover",
    "is_forest",
    "is_star_forest",
    "has_path_of_length_three",
]
