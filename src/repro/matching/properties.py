"""Structural predicates on edge sets: matchings, k-matchings, star forests.

These operate on sets of :class:`~repro.portgraph.ports.PortEdge` drawn
from a :class:`~repro.portgraph.graph.PortNumberedGraph` and implement the
definitions of paper Section 2 plus the structural invariants used in the
proofs of Theorems 4 and 5 (forest of node-disjoint stars, 2-matchings).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = [
    "covered_nodes",
    "degree_in",
    "is_matching",
    "is_k_matching",
    "is_maximal_matching",
    "is_edge_cover",
    "is_forest",
    "is_star_forest",
    "has_path_of_length_three",
]


def covered_nodes(edges: Iterable[PortEdge]) -> frozenset[Node]:
    """All nodes covered by (incident to) at least one edge in *edges*."""
    covered: set[Node] = set()
    for e in edges:
        covered |= e.endpoints
    return frozenset(covered)


def degree_in(edges: Iterable[PortEdge]) -> dict[Node, int]:
    """Node degrees in the subgraph induced by *edges* (loops count 2)."""
    degrees: Counter[Node] = Counter()
    for e in edges:
        degrees[e.u] += 1
        degrees[e.v] += 1
    return dict(degrees)


def is_matching(edges: Iterable[PortEdge]) -> bool:
    """True when no node is incident to two edges (paper §2).

    Loops are never part of a matching (they cover their endpoint twice).
    """
    return is_k_matching(edges, 1)


def is_k_matching(edges: Iterable[PortEdge], k: int) -> bool:
    """True when every node is incident to at most *k* edges (paper §2)."""
    return all(d <= k for d in degree_in(edges).values())


def is_maximal_matching(
    graph: PortNumberedGraph, edges: Iterable[PortEdge]
) -> bool:
    """True when *edges* is a matching not extendable by any graph edge.

    Equivalent characterisation used in the paper (§1.1): a matching is
    maximal iff it is also an edge dominating set.
    """
    edge_set = set(edges)
    if not is_matching(edge_set):
        return False
    covered = covered_nodes(edge_set)
    return all(
        e in edge_set or (e.endpoints & covered) for e in graph.edges
    )


def is_edge_cover(
    graph: PortNumberedGraph, edges: Iterable[PortEdge]
) -> bool:
    """True when every node of the graph is covered (paper §2).

    Nodes of degree 0 cannot be covered, so a graph with isolated nodes
    has no edge cover; this predicate follows that convention.
    """
    return covered_nodes(edges) == frozenset(graph.nodes)


def _adjacency(edges: Iterable[PortEdge]) -> dict[Node, list[Node]]:
    adjacency: dict[Node, list[Node]] = {}
    for e in edges:
        adjacency.setdefault(e.u, []).append(e.v)
        adjacency.setdefault(e.v, []).append(e.u)
    return adjacency


def is_forest(edges: Iterable[PortEdge]) -> bool:
    """True when the subgraph induced by *edges* is acyclic.

    Loops and parallel edges count as cycles.
    """
    edge_list = list(edges)
    if any(e.is_loop for e in edge_list):
        return False
    nodes = covered_nodes(edge_list)
    if len(edge_list) != len(set(edge_list)):
        return False
    # A graph is a forest iff |E| = |V| - (number of components).
    parent: dict[Node, Node] = {v: v for v in nodes}

    def find(v: Node) -> Node:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for e in edge_list:
        ru, rv = find(e.u), find(e.v)
        if ru == rv:
            return False
        parent[ru] = rv
    return True


def is_star_forest(edges: Iterable[PortEdge]) -> bool:
    """True when every connected component of *edges* is a star.

    This is the shape that phase II of Theorem 4 guarantees: a forest of
    node-disjoint stars (each component has at most one node of degree
    two or more).
    """
    edge_list = list(edges)
    if not is_forest(edge_list):
        return False
    return not has_path_of_length_three(edge_list)


def has_path_of_length_three(edges: Iterable[PortEdge]) -> bool:
    """True when the induced subgraph contains a path with three edges.

    A forest is a star forest iff it has no path of length three (the
    criterion used in the proof of Theorem 4): a middle edge of such a
    path has both endpoints of degree >= 2.
    """
    degrees = degree_in(edges)
    for e in edges:
        if e.is_loop:
            continue
        if degrees[e.u] >= 2 and degrees[e.v] >= 2:
            return True
    return False
