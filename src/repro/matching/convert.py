"""Edge dominating set -> maximal matching conversion (Yannakakis-Gavril).

Paper §1.1: "given an edge dominating set D, it is straightforward to
construct a maximal matching with at most |D| edges [25]".  This module
implements that construction, which is the reason minimum maximal matching
and minimum edge dominating set coincide.

Procedure: while ``D`` contains two edges sharing a node ``v``, drop one
of them (say ``f = {v, w}``).  If dropping ``f`` breaks domination, every
newly undominated edge must be incident to ``w`` (edges incident to ``v``
stay dominated by the edge we kept); adding any one undominated edge
``g = {w, x}`` restores domination without increasing the size.  Each step
strictly decreases the total "excess" ``sum_v max(deg_D(v) - 1, 0)``, so
the loop terminates with a matching that still dominates every edge —
i.e. a maximal matching of size at most the original ``|D|``.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import AlgorithmContractError
from repro.eds.properties import is_edge_dominating_set
from repro.matching.properties import degree_in, is_maximal_matching
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["eds_to_maximal_matching"]


def eds_to_maximal_matching(
    graph: PortNumberedGraph,
    dominating: Iterable[PortEdge],
) -> frozenset[PortEdge]:
    """Convert an edge dominating set into a maximal matching of <= size.

    Raises
    ------
    AlgorithmContractError
        If *dominating* is not actually an edge dominating set of *graph*.
    """
    graph.require_simple()
    d_set: set[PortEdge] = set(dominating)
    if not is_edge_dominating_set(graph, d_set):
        raise AlgorithmContractError(
            "eds_to_maximal_matching requires an edge dominating set"
        )

    def pick_conflict() -> tuple[Node, PortEdge, PortEdge] | None:
        degrees = degree_in(d_set)
        for v, deg in sorted(degrees.items(), key=lambda kv: repr(kv[0])):
            if deg >= 2:
                incident = sorted(
                    (e for e in d_set if v in e.endpoints),
                    key=lambda e: (repr(e.u), e.i, repr(e.v), e.j),
                )
                return v, incident[0], incident[1]
        return None

    while True:
        conflict = pick_conflict()
        if conflict is None:
            break
        v, keep, drop = conflict
        d_set.discard(drop)
        if is_edge_dominating_set(graph, d_set):
            continue
        # Domination broke: every undominated edge is incident to the
        # endpoint of `drop` other than v; adding one of them fixes all.
        w = drop.other_endpoint(v)
        replacement: PortEdge | None = None
        for e in sorted(
            graph.edges_at(w), key=lambda e: e.port_at(w)
        ):
            if not (e.endpoints & _covered(d_set)):
                replacement = e
                break
        if replacement is None:
            raise AssertionError(
                "invariant violation: undominated edges must touch w"
            )
        d_set.add(replacement)

    result = frozenset(d_set)
    assert is_maximal_matching(graph, result)
    return result


def _covered(edges: Iterable[PortEdge]) -> set[Node]:
    covered: set[Node] = set()
    for e in edges:
        covered |= e.endpoints
    return covered
