"""Centralised greedy maximal matching.

The classical sequential 2-approximation for minimum maximal matching /
minimum EDS (paper §1.2): scan the edges in a deterministic order and add
every edge whose endpoints are still free.  Used as a baseline, as the
initial upper bound of the exact branch-and-bound solver, and inside the
Yannakakis-Gavril conversion.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["greedy_maximal_matching"]


def greedy_maximal_matching(
    graph: PortNumberedGraph,
    order: Sequence[PortEdge] | None = None,
) -> frozenset[PortEdge]:
    """A maximal matching built by a deterministic greedy scan.

    Parameters
    ----------
    graph:
        The host graph; loops are skipped (they can never join a matching).
    order:
        Optional explicit edge processing order; defaults to the graph's
        canonical edge order.
    """
    edges: Iterable[PortEdge] = graph.edges if order is None else order
    matched: set[Node] = set()
    matching: set[PortEdge] = set()
    for e in edges:
        if e.is_loop:
            continue
        if e.u in matched or e.v in matched:
            continue
        matching.add(e)
        matched.add(e.u)
        matched.add(e.v)
    return frozenset(matching)
