"""Exact minimum maximal matching by branch and bound.

A minimum maximal matching is also a minimum edge dominating set
(paper §1.1, via Yannakakis-Gavril [25] / Allan-Laskar [1]), so this
solver doubles as the exact EDS reference for the evaluation harness.

The search maintains a partial matching ``M`` and branches on the first
edge not yet dominated: any maximal matching extending ``M`` must contain
one of the compatible edges adjacent to (or equal to) that edge.  When
every edge is dominated, ``M`` is a maximal matching (nothing can be
added), so it is a candidate solution.  A greedy maximal matching
provides the initial upper bound.  Exponential in the worst case —
intended for the small instances used to validate approximation ratios.
"""

from __future__ import annotations

from typing import Sequence

from repro.matching.greedy import greedy_maximal_matching
from repro.matching.properties import is_maximal_matching
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["minimum_maximal_matching", "brute_force_minimum_maximal_matching"]

_DEFAULT_LIMIT = 2_000_000


def minimum_maximal_matching(
    graph: PortNumberedGraph,
    *,
    node_limit: int = _DEFAULT_LIMIT,
) -> frozenset[PortEdge]:
    """An exact minimum maximal matching of a simple port-numbered graph.

    Parameters
    ----------
    graph:
        A simple graph.  (Loops/parallel edges would make "matching"
        ambiguous; the paper's problem is defined on simple graphs.)
    node_limit:
        Safety valve on the number of search nodes explored; exceeded
        limits raise :class:`RuntimeError` rather than silently returning
        a non-optimal answer.
    """
    graph.require_simple()
    edges: Sequence[PortEdge] = graph.edges
    if not edges:
        return frozenset()

    # Precompute, for every edge, the candidate dominators: itself plus all
    # adjacent edges, deterministically ordered.
    adjacent: dict[PortEdge, tuple[PortEdge, ...]] = {}
    incident: dict[Node, list[PortEdge]] = {v: [] for v in graph.nodes}
    for e in edges:
        incident[e.u].append(e)
        if e.u != e.v:
            incident[e.v].append(e)
    for e in edges:
        seen: dict[PortEdge, None] = {e: None}
        for endpoint in (e.u, e.v):
            for other in incident[endpoint]:
                seen.setdefault(other, None)
        adjacent[e] = tuple(seen)

    best: frozenset[PortEdge] = greedy_maximal_matching(graph)
    best_size = len(best)
    explored = 0

    def undominated(covered: set[Node]) -> PortEdge | None:
        for e in edges:
            if e.u not in covered and e.v not in covered:
                return e
        return None

    def recurse(matching: list[PortEdge], covered: set[Node]) -> None:
        nonlocal best, best_size, explored
        explored += 1
        if explored > node_limit:
            raise RuntimeError(
                f"minimum_maximal_matching exceeded {node_limit} search nodes"
            )
        target = undominated(covered)
        if target is None:
            if len(matching) < best_size:
                best = frozenset(matching)
                best_size = len(matching)
            return
        if len(matching) + 1 >= best_size:
            return  # adding any edge cannot beat the incumbent
        for f in adjacent[target]:
            if f.u in covered or f.v in covered:
                continue
            matching.append(f)
            covered.add(f.u)
            covered.add(f.v)
            recurse(matching, covered)
            matching.pop()
            covered.discard(f.u)
            covered.discard(f.v)

    recurse([], set())
    assert is_maximal_matching(graph, best)
    return best


def brute_force_minimum_maximal_matching(
    graph: PortNumberedGraph,
) -> frozenset[PortEdge]:
    """Reference solver: enumerate all edge subsets (tiny graphs only)."""
    graph.require_simple()
    edges = list(graph.edges)
    if len(edges) > 20:
        raise RuntimeError(
            "brute force limited to 20 edges; use minimum_maximal_matching"
        )
    best: frozenset[PortEdge] | None = None
    for mask in range(1 << len(edges)):
        subset = frozenset(
            e for k, e in enumerate(edges) if mask & (1 << k)
        )
        if best is not None and len(subset) >= len(best):
            continue
        if is_maximal_matching(graph, subset):
            best = subset
    assert best is not None or not edges
    return best if best is not None else frozenset()
