"""Special graphs appearing in the paper's constructions and figures."""

from __future__ import annotations

import networkx as nx

from repro.exceptions import ConstructionError
from repro.portgraph.convert import from_networkx
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.numbering import (
    NumberingStrategy,
    random_numbering,
    sequential_numbering,
)

__all__ = ["crown", "crown_nx", "matching_union", "component_h_nx"]


def crown_nx(k: int) -> nx.Graph:
    """The crown graph S_k^0: K_{k,k} minus a perfect matching.

    This is the shape of the edge set T(ℓ) in the Theorem 2 construction
    (paper §4.1): ``{a_i, b_j}`` for all ``i != j``.
    """
    if k < 2:
        raise ConstructionError(f"crown graph needs k >= 2, got {k}")
    graph = nx.Graph()
    graph.add_nodes_from(f"a{i}" for i in range(k))
    graph.add_nodes_from(f"b{i}" for i in range(k))
    graph.add_edges_from(
        (f"a{i}", f"b{j}") for i in range(k) for j in range(k) if i != j
    )
    return graph


def crown(
    k: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """Port-numbered crown graph ((k-1)-regular on 2k nodes)."""
    strategy = numbering or (
        sequential_numbering if seed is None else random_numbering(seed)
    )
    return from_networkx(crown_nx(k), strategy)


def matching_union(
    pairs: int,
    *,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """A perfect matching on 2 * pairs nodes (1-regular)."""
    if pairs < 1:
        raise ConstructionError("need at least one pair")
    graph = nx.Graph((2 * t, 2 * t + 1) for t in range(pairs))
    return from_networkx(graph, numbering or sequential_numbering)


def component_h_nx(k: int, label: int = 1) -> nx.Graph:
    """The 2k-regular component H(ℓ) of the Theorem 2 construction.

    Star R(ℓ) + matching S(ℓ) + crown T(ℓ) on ``4k + 1`` nodes
    (paper §4.1, Figure 5).  Exposed for the figure reproductions.
    """
    if k < 1:
        raise ConstructionError(f"component H needs k >= 1, got {k}")
    a = [f"a{label}_{i}" for i in range(1, 2 * k + 1)]
    b = [f"b{label}_{i}" for i in range(1, 2 * k + 1)]
    c = f"c{label}"
    graph = nx.Graph()
    graph.add_nodes_from(a + b + [c])
    graph.add_edges_from((c, bi) for bi in b)
    graph.add_edges_from((a[2 * t], a[2 * t + 1]) for t in range(k))
    graph.add_edges_from(
        (a[i], b[j])
        for i in range(2 * k)
        for j in range(2 * k)
        if i != j
    )
    return graph
