"""Streaming pairing-model d-regular graphs, straight into CSR arrays.

``nx.random_regular_graph`` (the ``regular`` family) builds adjacency
dicts and then pays the full dict → port-numbering → compiled lowering
pipeline; at n = 16384 that chain is ~80% of an xlarge unit's wall time
(E22/E23).  This module generates a random d-regular graph by the
configuration (pairing) model in ``O(nd)``: throw ``n·d`` stubs into a
uniformly random perfect pairing, then repair the handful of self-loops
and parallel edges by degree-preserving edge switches instead of
resampling the whole pairing.

The stub layout *is* the port numbering — stub ``i`` of node ``u`` is
port ``i + 1`` attached at global index ``u·d + i`` — so the pairing is
already the compiled ``mate`` array and the result wraps directly in an
:class:`~repro.portgraph.arrays.ArrayGraph` (numeric node order; no
repr re-sorting, no dicts).

Determinism contract: the pairing comes from ``random.Random(seed)``
(one ``shuffle``), bad-edge detection has one canonical order, and the
switch-repair draws from the same ``Random`` stream — so the graph is a
pure function of ``(d, n, seed)`` **independent of numpy**.  numpy only
accelerates array assembly and detection; the pure-python ``array``
fallback produces byte-identical graphs (pinned by
``tests/test_pairing_regular.py``), which keeps engine records portable
between numpy and no-numpy workers.

Caveat: switch-repair conditions the pairing on simplicity, so the
distribution is the configuration model conditioned on simple outcomes
(asymptotically uniform over d-regular graphs for fixed d) — not the
exact uniform sampler ``nx.random_regular_graph`` implements.  The
``regular`` family is unchanged for anyone who needs that.
"""

from __future__ import annotations

import random
from array import array
from collections import deque

from repro.exceptions import ConstructionError
from repro.portgraph.arrays import ArrayGraph

try:  # numpy is optional (the [vector] extra)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy job
    _np = None

__all__ = ["pairing_regular"]

#: Random switch candidates tried per bad edge before the whole pairing
#: is redrawn; exhausted only on tiny dense instances (e.g. forced K_n).
_MAX_DRAWS = 2000
#: Full redraws before giving up entirely.
_MAX_RESTARTS = 20


class _RepairExhausted(Exception):
    pass


def _find_bad_python(mate, n: int, d: int) -> list[int]:
    """Bad edge representatives, canonically ordered — pure python."""
    bad: set[int] = set()
    items: list[tuple[int, int]] = []
    for g in range(n * d):
        m = mate[g]
        if m < g:
            continue
        u, v = g // d, m // d
        if u == v:
            bad.add(g)
        items.append((u * n + v if u <= v else v * n + u, g))
    items.sort()
    for idx in range(1, len(items)):
        if items[idx][0] == items[idx - 1][0]:
            bad.add(items[idx][1])
    return sorted(bad)


def _find_bad_numpy(mate, n: int, d: int) -> list[int]:
    """Same canonical bad list as :func:`_find_bad_python`, vectorised."""
    arange = _np.arange(n * d, dtype=_np.int64)
    reps = _np.nonzero(mate > arange)[0]
    u = reps // d
    v = mate[reps] // d
    lo = _np.minimum(u, v)
    key = lo * n + (u + v - lo)
    bad = set(reps[u == v].tolist())
    order = _np.lexsort((reps, key))
    keys = key[order]
    dup = _np.zeros(len(order), dtype=bool)
    dup[1:] = keys[1:] == keys[:-1]
    bad.update(reps[order[dup]].tolist())
    return sorted(bad)


def _still_bad(mate, d: int, g: int, h: int) -> bool:
    """Re-verify a queued representative against the current pairing."""
    u, v = g // d, h // d
    if u == v:
        return True
    rep = g if g < h else h
    for s in range(u * d, u * d + d):
        if s == g or s == h:
            continue
        m = int(mate[s])
        if m // d == v and (s if s < m else m) < rep:
            return True
    return False


def _switch_ok(mate, d: int, g: int, h: int, k: int, l: int) -> bool:
    """Would re-pairing (g,h),(k,l) → (g,k),(h,l) keep the graph simple?"""
    u1, v1 = g // d, k // d
    u2, v2 = h // d, l // d
    if u1 == v1 or u2 == v2:
        return False
    if (u1 == u2 and v1 == v2) or (u1 == v2 and v1 == u2):
        return False
    replaced = (g, h, k, l)
    for s in range(u1 * d, u1 * d + d):
        if s not in replaced and int(mate[s]) // d == v1:
            return False
    for s in range(u2 * d, u2 * d + d):
        if s not in replaced and int(mate[s]) // d == v2:
            return False
    return True


def _repair(mate, n: int, d: int, rng: random.Random, bad: list[int]) -> None:
    """Switch every bad edge away, deterministically, in place.

    Each successful switch removes one bad edge and creates two
    validated-simple edges, so the queue shrinks monotonically; edges
    fixed as a side effect are skipped by re-verification.
    """
    total = n * d
    queue = deque(bad)
    while queue:
        g = int(queue.popleft())
        h = int(mate[g])
        if not _still_bad(mate, d, g, h):
            continue
        for _ in range(_MAX_DRAWS):
            k = rng.randrange(total)
            if k in (g, h):
                continue
            l = int(mate[k])
            if l in (g, h):
                continue
            if _switch_ok(mate, d, g, h, k, l):
                mate[g], mate[k] = k, g
                mate[h], mate[l] = l, h
                break
        else:
            raise _RepairExhausted


def pairing_regular(d: int, n: int, *, seed: int = 0) -> ArrayGraph:
    """A random simple d-regular graph on nodes ``0..n-1`` in O(nd)."""
    if d < 1 or n <= d or (n * d) % 2:
        raise ConstructionError(
            f"no simple d-regular graph with d={d}, n={n} "
            "(need d >= 1, n > d, n*d even)"
        )
    total = n * d
    rng = random.Random(seed)
    for _ in range(_MAX_RESTARTS):
        stubs = list(range(total))
        rng.shuffle(stubs)
        if _np is not None:
            perm = _np.array(stubs, dtype=_np.int64)
            mate = _np.empty(total, dtype=_np.int64)
            mate[perm[0::2]] = perm[1::2]
            mate[perm[1::2]] = perm[0::2]
            bad = _find_bad_numpy(mate, n, d)
        else:
            mate = [0] * total
            for idx in range(0, total, 2):
                a, b = stubs[idx], stubs[idx + 1]
                mate[a] = b
                mate[b] = a
            bad = _find_bad_python(mate, n, d)
        try:
            _repair(mate, n, d, rng, bad)
            break
        except _RepairExhausted:
            continue
    else:
        raise ConstructionError(
            f"pairing repair failed for d={d}, n={n}, seed={seed} after "
            f"{_MAX_RESTARTS} redraws"
        )

    offsets = array("q", range(0, total + d, d)) if n else array("q", [0])
    if _np is not None:
        mate_q = array("q")
        mate_q.frombytes(mate.tobytes())
        port_node = array("q")
        port_node.frombytes(
            (_np.arange(total, dtype=_np.int64) // d).tobytes()
        )
    else:
        mate_q = array("q", mate)
        port_node = array("q", (g // d for g in range(total)))
    return ArrayGraph(
        range(n), (d,) * n, offsets, mate_q, port_node, validate=False
    )
