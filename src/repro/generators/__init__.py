"""Graph family generators used as evaluation workloads."""

from repro.generators.bounded import (
    caterpillar,
    grid,
    path,
    random_bounded_degree,
    random_tree,
    star,
)
from repro.generators.pairing import pairing_regular
from repro.generators.regular import (
    circulant,
    complete,
    complete_bipartite,
    cycle,
    hypercube,
    petersen,
    random_regular,
    torus,
)
from repro.generators.special import (
    component_h_nx,
    crown,
    crown_nx,
    matching_union,
)

__all__ = [
    "random_regular",
    "pairing_regular",
    "cycle",
    "complete",
    "complete_bipartite",
    "circulant",
    "hypercube",
    "torus",
    "petersen",
    "random_bounded_degree",
    "path",
    "grid",
    "random_tree",
    "star",
    "caterpillar",
    "crown",
    "crown_nx",
    "matching_union",
    "component_h_nx",
]
