"""Direct-to-CSR builders for the structured graph families.

The networkx route (``nx.Graph`` → numbering strategy → neighbour-order
dicts → ``from_neighbour_orders`` → ``CompiledGraph.__init__`` walking
the involution dict) costs several dict passes per port.  For the
*structured* families — cycles, grids, tori, hypercubes, complete and
complete-bipartite graphs, paths — the neighbour sets are arithmetic,
so this module computes the same port-numbered graph straight into the
compiled CSR arrays and wraps them in an
:class:`~repro.portgraph.arrays.ArrayGraph`.

Byte-identity contract (pinned by ``tests/test_direct_csr.py``): for
every family and every seed the direct build equals the networkx build
*exactly* — same node tuple, same degree function, same involution,
same canonical edge order, same compiled arrays.  That requires
replicating two conventions of the dict path:

* node order is ``sorted(nodes, key=repr)`` — for integer labels this
  is the *decimal-string* order (``0, 1, 10, 100, 11, …``), not numeric;
* each node's neighbours are sorted by ``repr`` and, when a seed is
  given, shuffled by one shared ``random.Random(seed)`` visiting nodes
  in that same repr order (see
  :func:`repro.portgraph.numbering.random_numbering`).
"""

from __future__ import annotations

import random
from array import array
from typing import Sequence

from repro.portgraph.arrays import ArrayGraph
from repro.portgraph.ports import Node

__all__ = [
    "from_neighbour_lists",
    "cycle_neighbours",
    "complete_neighbours",
    "complete_bipartite_neighbours",
    "path_neighbours",
    "grid_neighbours",
    "torus_neighbours",
    "hypercube_neighbours",
]


def from_neighbour_lists(
    neighbour_lists: Sequence[Sequence[Node]],
    seed: int | None = None,
) -> ArrayGraph:
    """Build the port-numbered graph of a simple integer-labelled graph.

    ``neighbour_lists[v]`` holds the (distinct) neighbours of node ``v``
    for ``v = 0..n-1``; list order is irrelevant — ports are assigned by
    the numbering conventions above, exactly as the networkx path would.
    """
    n = len(neighbour_lists)
    order = sorted(range(n), key=repr)
    rng = random.Random(seed) if seed is not None else None
    ordered: list[list[Node]] = [[]] * n
    for v in order:
        nbrs = sorted(neighbour_lists[v], key=repr)
        if rng is not None:
            rng.shuffle(nbrs)
        ordered[v] = nbrs

    rank = [0] * n
    for k, v in enumerate(order):
        rank[v] = k
    offsets = [0] * (n + 1)
    total = 0
    for k, v in enumerate(order):
        offsets[k] = total
        total += len(ordered[v])
    offsets[n] = total

    # ``gport[(u, v)]`` — the global port of u that points at v; one
    # pass to index, one to wire the involution.
    gport: dict[tuple[Node, Node], int] = {}
    for v in range(n):
        base = offsets[rank[v]]
        for i, u in enumerate(ordered[v]):
            gport[(v, u)] = base + i
    mate = [0] * total
    port_node = [0] * total
    for v in range(n):
        k = rank[v]
        base = offsets[k]
        for i, u in enumerate(ordered[v]):
            g = base + i
            mate[g] = gport[(u, v)]
            port_node[g] = k

    return ArrayGraph(
        tuple(order),
        tuple(len(ordered[v]) for v in order),
        array("q", offsets),
        array("q", mate),
        array("q", port_node),
        validate=False,
    )


# ---------------------------------------------------------------------------
# Neighbour arithmetic per family (labels match the networkx builders)
# ---------------------------------------------------------------------------


def cycle_neighbours(n: int) -> list[tuple[int, ...]]:
    """``nx.cycle_graph(n)`` for n >= 3."""
    return [((v - 1) % n, (v + 1) % n) for v in range(n)]


def complete_neighbours(n: int) -> list[tuple[int, ...]]:
    """``nx.complete_graph(n)``."""
    return [
        tuple(u for u in range(n) if u != v) for v in range(n)
    ]


def complete_bipartite_neighbours(a: int, b: int) -> list[tuple[int, ...]]:
    """``nx.complete_bipartite_graph(a, b)``: sides 0..a-1 and a..a+b-1."""
    left = tuple(range(a))
    right = tuple(range(a, a + b))
    return [right] * a + [left] * b


def path_neighbours(n: int) -> list[tuple[int, ...]]:
    """``nx.path_graph(n)`` for n >= 1."""
    if n == 1:
        return [()]
    return [
        tuple(
            u for u in (v - 1, v + 1) if 0 <= u < n
        )
        for v in range(n)
    ]


def grid_neighbours(rows: int, cols: int) -> list[tuple[int, ...]]:
    """``convert_node_labels_to_integers(nx.grid_2d_graph(rows, cols))``.

    Node ``(i, j)`` is visited in row-major order by networkx, so its
    integer label is ``i * cols + j``.
    """
    out = []
    for i in range(rows):
        for j in range(cols):
            nbrs = []
            if i > 0:
                nbrs.append((i - 1) * cols + j)
            if i < rows - 1:
                nbrs.append((i + 1) * cols + j)
            if j > 0:
                nbrs.append(i * cols + j - 1)
            if j < cols - 1:
                nbrs.append(i * cols + j + 1)
            out.append(tuple(nbrs))
    return out


def torus_neighbours(rows: int, cols: int) -> list[tuple[int, ...]]:
    """The periodic grid, both sides >= 3 (no duplicate wrap neighbours)."""
    out = []
    for i in range(rows):
        for j in range(cols):
            out.append((
                ((i - 1) % rows) * cols + j,
                ((i + 1) % rows) * cols + j,
                i * cols + (j - 1) % cols,
                i * cols + (j + 1) % cols,
            ))
    return out


def hypercube_neighbours(dim: int) -> list[tuple[int, ...]]:
    """``convert_node_labels_to_integers(nx.hypercube_graph(dim))``.

    networkx labels are binary tuples in lexicographic order, so the
    integer relabelling reads each tuple as a binary number with the
    first coordinate as the most significant bit; flipping any bit
    yields a neighbour.
    """
    n = 1 << dim
    return [
        tuple(v ^ (1 << b) for b in range(dim)) for v in range(n)
    ]
