"""Regular graph families used as workloads by the evaluation harness."""

from __future__ import annotations

import networkx as nx

from repro.exceptions import ConstructionError
from repro.generators.direct import (
    complete_bipartite_neighbours,
    complete_neighbours,
    cycle_neighbours,
    from_neighbour_lists,
    hypercube_neighbours,
    torus_neighbours,
)
from repro.portgraph.convert import from_networkx
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.numbering import (
    NumberingStrategy,
    random_numbering,
    sequential_numbering,
)

__all__ = [
    "random_regular",
    "cycle",
    "complete",
    "complete_bipartite",
    "circulant",
    "hypercube",
    "torus",
    "petersen",
]


def _convert(
    graph: nx.Graph,
    strategy: NumberingStrategy | None,
    seed: int | None,
) -> PortNumberedGraph:
    if strategy is None:
        strategy = (
            sequential_numbering if seed is None else random_numbering(seed)
        )
    return from_networkx(graph, strategy)


def random_regular(
    d: int,
    n: int,
    *,
    seed: int = 0,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """A uniformly random simple d-regular graph on n nodes."""
    if n * d % 2 or n <= d:
        raise ConstructionError(
            f"no d-regular graph with d={d}, n={n} (need n > d, n*d even)"
        )
    graph = nx.random_regular_graph(d, n, seed=seed)
    return _convert(graph, numbering, seed)


def cycle(
    n: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The n-cycle (2-regular)."""
    if n < 3:
        raise ConstructionError(f"cycle needs n >= 3, got {n}")
    if numbering is None:
        return from_neighbour_lists(cycle_neighbours(n), seed)
    return _convert(nx.cycle_graph(n), numbering, seed)


def complete(
    n: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The complete graph K_n ((n-1)-regular)."""
    if n < 2:
        raise ConstructionError(f"complete graph needs n >= 2, got {n}")
    if numbering is None:
        return from_neighbour_lists(complete_neighbours(n), seed)
    return _convert(nx.complete_graph(n), numbering, seed)


def complete_bipartite(
    a: int,
    b: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """K_{a,b} (regular when a == b)."""
    if a < 1 or b < 1:
        raise ConstructionError("both sides need at least one node")
    if numbering is None:
        return from_neighbour_lists(
            complete_bipartite_neighbours(a, b), seed
        )
    return _convert(nx.complete_bipartite_graph(a, b), numbering, seed)


def circulant(
    n: int,
    offsets: tuple[int, ...],
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The circulant graph C_n(offsets); regular by construction."""
    graph = nx.circulant_graph(n, list(offsets))
    return _convert(graph, numbering, seed)


def hypercube(
    dim: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The dim-dimensional hypercube (dim-regular, 2^dim nodes)."""
    if dim < 1:
        raise ConstructionError(f"hypercube needs dim >= 1, got {dim}")
    if numbering is None:
        return from_neighbour_lists(hypercube_neighbours(dim), seed)
    graph = nx.convert_node_labels_to_integers(nx.hypercube_graph(dim))
    return _convert(graph, numbering, seed)


def torus(
    rows: int,
    cols: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The rows x cols torus grid (4-regular when both sides >= 3)."""
    if rows < 3 or cols < 3:
        raise ConstructionError("torus needs both sides >= 3")
    if numbering is None:
        return from_neighbour_lists(torus_neighbours(rows, cols), seed)
    graph = nx.convert_node_labels_to_integers(
        nx.grid_2d_graph(rows, cols, periodic=True)
    )
    return _convert(graph, numbering, seed)


def petersen(
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The Petersen graph (3-regular, 10 nodes)."""
    return _convert(nx.petersen_graph(), numbering, seed)
