"""Bounded-degree graph families (the Theorem 5 workload domain)."""

from __future__ import annotations

import random

import networkx as nx

from repro.exceptions import ConstructionError
from repro.generators.direct import (
    from_neighbour_lists,
    grid_neighbours,
    path_neighbours,
)
from repro.portgraph.convert import from_networkx
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.numbering import (
    NumberingStrategy,
    random_numbering,
    sequential_numbering,
)

__all__ = [
    "random_bounded_degree",
    "path",
    "grid",
    "random_tree",
    "star",
    "caterpillar",
]


def _convert(graph, strategy, seed):
    if strategy is None:
        strategy = (
            sequential_numbering if seed is None else random_numbering(seed)
        )
    return from_networkx(graph, strategy)


def random_bounded_degree(
    n: int,
    max_degree: int,
    *,
    edge_probability: float = 0.5,
    seed: int = 0,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """An Erdős–Rényi graph thinned to respect a maximum degree.

    Edges are removed (deterministically given *seed*) from over-full
    nodes until the degree bound holds; the result keeps the G(n, p)
    character while fitting the Theorem 5 contract.
    """
    if max_degree < 1:
        raise ConstructionError("max_degree must be >= 1")
    graph = nx.gnp_random_graph(n, edge_probability, seed=seed)
    rng = random.Random(seed)
    while True:
        over = sorted(v for v, d in graph.degree() if d > max_degree)
        if not over:
            break
        v = over[0]
        neighbours = sorted(graph.neighbors(v))
        graph.remove_edge(v, rng.choice(neighbours))
    return _convert(graph, numbering, seed)


def path(
    n: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The path on n nodes (max degree 2)."""
    if n < 1:
        raise ConstructionError("path needs n >= 1")
    if numbering is None:
        return from_neighbour_lists(path_neighbours(n), seed)
    return _convert(nx.path_graph(n), numbering, seed)


def grid(
    rows: int,
    cols: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The rows x cols grid (max degree 4) — e.g. a sensor-field layout."""
    if numbering is None:
        return from_neighbour_lists(grid_neighbours(rows, cols), seed)
    graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(rows, cols))
    return _convert(graph, numbering, seed)


def random_tree(
    n: int,
    *,
    seed: int = 0,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """A uniformly random labelled tree on n nodes."""
    if n < 1:
        raise ConstructionError("tree needs n >= 1")
    if n == 1:
        return _convert(nx.empty_graph(1), numbering, seed)
    graph = nx.random_labeled_tree(n, seed=seed)
    return _convert(graph, numbering, seed)


def star(
    leaves: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """The star with the given number of leaves (max degree = leaves)."""
    if leaves < 1:
        raise ConstructionError("star needs at least one leaf")
    return _convert(nx.star_graph(leaves), numbering, seed)


def caterpillar(
    spine: int,
    legs_per_node: int,
    *,
    seed: int | None = None,
    numbering: NumberingStrategy | None = None,
) -> PortNumberedGraph:
    """A caterpillar tree: a spine path with pendant legs."""
    if spine < 1 or legs_per_node < 0:
        raise ConstructionError("need spine >= 1 and legs >= 0")
    graph = nx.path_graph(spine)
    next_node = spine
    for v in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(v, next_node)
            next_node += 1
    return _convert(graph, numbering, seed)
