"""Certified bounds on the maximum matching size ν (and hence on the
EDS optimum) at every scale.

Three engines behind one :class:`~repro.bounds.result.BoundResult`
protocol:

* :mod:`~repro.bounds.primal` — greedy maximal matching plus
  bounded-depth augmenting search: ``|M| <= ν``, seconds at n = 16384;
* :mod:`~repro.bounds.dual` — a feasible fractional vertex cover from
  the shared multiplicative-weights loop: ``ν <= ⌊Σy⌋`` by weak LP
  duality, verified edge-by-edge in exact arithmetic;
* :mod:`~repro.bounds.exact` — the blossom matching (memoised), the
  zero-width bracket for sizes where minutes per unit are acceptable.

:func:`nu_sandwich` combines the first two into the bracket
``primal <= ν <= dual`` that restores honest ratio *intervals* to the
``xlarge-regular`` scale, where the blossom bound alone was profiled at
~172 s/unit (E20).  The engine reaches it through
``optimum="dual_bound"``, and ``optimum="auto"`` escalates
exact → blossom → sandwich by instance size
(:data:`DUAL_BOUND_EDGE_LIMIT` is the blossom/sandwich frontier).
"""

from __future__ import annotations

from repro.bounds.dual import dual_bound, fractional_vertex_cover
from repro.bounds.exact import exact_bound, maximum_matching_edges
from repro.bounds.fractional import doubling_phases, solve_covering_lp
from repro.bounds.primal import primal_bound, primal_matching
from repro.bounds.result import (
    BoundResult,
    CoverCertificate,
    MatchingCertificate,
    SandwichCertificate,
    verify_certificate,
)
from repro.portgraph.graph import PortNumberedGraph

__all__ = [
    "BoundResult",
    "CoverCertificate",
    "DUAL_BOUND_EDGE_LIMIT",
    "MatchingCertificate",
    "SandwichCertificate",
    "doubling_phases",
    "dual_bound",
    "exact_bound",
    "fractional_vertex_cover",
    "maximum_matching_edges",
    "nu_sandwich",
    "primal_bound",
    "primal_matching",
    "solve_covering_lp",
    "verify_certificate",
]

#: ``optimum="auto"`` escalation frontier: up to this many edges the
#: blossom lower bound stays under a few seconds per unit and ``auto``
#: keeps its historical exact → blossom behaviour (and its historical
#: cache keys); above it, auto switches to the ν sandwich.  Deliberately
#: a module constant rather than a :class:`~repro.engine.spec.JobSpec`
#: field — it tunes *how* auto resolves, not *what* a unit is, so
#: content addresses do not depend on it.
DUAL_BOUND_EDGE_LIMIT = 20_000


def nu_sandwich(
    graph: PortNumberedGraph, *, seed: int = 0
) -> BoundResult:
    """The two-sided bracket ``primal <= ν <= dual`` in near-linear time.

    The primal matching feeds the dual's matching-cover candidate, so
    the upper bound is always at least as tight as the classical
    ``2 |M|``; the certificate carries both halves for independent
    re-verification.
    """
    graph.require_simple()
    matching = primal_matching(graph, seed=seed)
    cover = fractional_vertex_cover(graph, matching)
    lower = len(matching)
    upper = min(cover.bound, 2 * lower)
    certificate = SandwichCertificate(
        matching=MatchingCertificate(edges=matching, maximal=True),
        cover=cover,
    )
    return BoundResult(
        lower=lower, upper=upper, certificate=certificate,
        exact=(lower == upper),
    )
