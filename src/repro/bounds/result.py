"""The certified-bounds protocol: :class:`BoundResult` + certificates.

Every bounds engine — primal (:mod:`repro.bounds.primal`), dual
(:mod:`repro.bounds.dual`), exact (:mod:`repro.bounds.exact`) — returns
the same shape: a :class:`BoundResult` bracketing the maximum matching
size ``ν(G)`` with ``lower <= ν <= upper`` and carrying the evidence as
a *certificate*.  The certificates are self-contained mathematical
objects, not solver state:

* :class:`MatchingCertificate` — a set of edges claimed to be a
  matching; any valid matching proves ``ν >= |M|``, and a *maximal* one
  additionally proves ``ν <= 2|M|`` (every matched edge of an optimum
  matching touches ``M``) and that ``M`` itself is a feasible EDS.
* :class:`CoverCertificate` — a fractional vertex cover ``y``; weak LP
  duality gives ``ν <= Σy``, and since ``ν`` is an integer,
  ``ν <= ⌊Σy⌋``.
* :class:`SandwichCertificate` — both at once, the output of
  :func:`repro.bounds.nu_sandwich`.

:func:`verify_certificate` re-derives the claimed bounds from the
certificate alone, edge by edge, entirely in ``int``/:class:`~fractions.
Fraction` arithmetic — no floats, no trust in the engine that produced
the result.  A bound that passes is *proven* for the given graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

from repro.exceptions import CertificateError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = [
    "BoundResult",
    "CoverCertificate",
    "MatchingCertificate",
    "SandwichCertificate",
    "verify_certificate",
]


@dataclass(frozen=True)
class MatchingCertificate:
    """A matching ``M`` in the host graph; proves ``ν >= |M|``.

    With ``maximal=True`` the certificate additionally claims no edge of
    the graph has both endpoints unmatched, which proves ``ν <= 2|M|``
    and makes ``M`` a feasible edge dominating set.
    """

    edges: frozenset[PortEdge]
    maximal: bool = False

    @property
    def size(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class CoverCertificate:
    """A fractional vertex cover ``y``; proves ``ν <= ⌊Σy⌋``.

    ``values`` is sparse: nodes not present carry ``y = 0``.  Feasibility
    means ``y_u + y_v >= 1`` for every edge ``{u, v}``.
    """

    values: Mapping[Node, Fraction]

    @property
    def objective(self) -> Fraction:
        return sum(self.values.values(), Fraction(0))

    @property
    def bound(self) -> int:
        """``⌊Σy⌋`` — the certified integer upper bound on ν."""
        total = self.objective
        return total.numerator // total.denominator


@dataclass(frozen=True)
class SandwichCertificate:
    """Primal matching and dual cover together: a two-sided ν bracket."""

    matching: MatchingCertificate
    cover: CoverCertificate


Certificate = Union[MatchingCertificate, CoverCertificate,
                    SandwichCertificate]


@dataclass(frozen=True)
class BoundResult:
    """The common return shape of every bounds engine.

    ``lower <= ν(G) <= upper``; ``exact`` means the two coincide *and*
    the value is known to be ν (not merely a zero-width accident).  The
    certificate, when present, lets :func:`verify_certificate` re-prove
    both bounds independently of the engine.
    """

    lower: int
    upper: int
    certificate: Certificate | None
    exact: bool

    @property
    def gap(self) -> int:
        """``upper - lower`` — the width of the ν bracket."""
        return self.upper - self.lower


def _check_matching(
    graph: PortNumberedGraph, cert: MatchingCertificate
) -> int:
    """Re-prove the matching certificate; returns the certified ``|M|``."""
    graph_edges = set(graph.edges)
    matched: set[Node] = set()
    for e in cert.edges:
        if e not in graph_edges:
            raise CertificateError(
                f"matching certificate contains non-edge {e!r}"
            )
        if e.is_loop:
            raise CertificateError(
                f"matching certificate contains loop {e!r}"
            )
        if e.u in matched or e.v in matched:
            raise CertificateError(
                f"matching certificate is not a matching at {e!r}"
            )
        matched.add(e.u)
        matched.add(e.v)
    if cert.maximal:
        for e in graph.edges:
            if e.u not in matched and e.v not in matched:
                raise CertificateError(
                    f"matching certificate claims maximality but misses "
                    f"edge {e!r}"
                )
    return len(cert.edges)


def _check_cover(graph: PortNumberedGraph, cert: CoverCertificate) -> int:
    """Re-prove the cover certificate; returns the certified ``⌊Σy⌋``.

    The per-edge feasibility scan runs on integer numerators over the
    least common denominator of the cover values — exact arithmetic
    (every comparison is the Fraction comparison, cross-multiplied once
    up front) without a Fraction normalisation per edge.
    """
    lcd = 1
    for node, value in cert.values.items():
        if not isinstance(value, (int, Fraction)):
            raise CertificateError(
                f"cover value at {node!r} is {type(value).__name__}, "
                "not exact arithmetic"
            )
        if value < 0:
            raise CertificateError(
                f"cover value at {node!r} is negative: {value}"
            )
        lcd = math.lcm(lcd, Fraction(value).denominator)
    scaled = {
        node: int(value * lcd) for node, value in cert.values.items()
    }
    for e in graph.edges:
        if scaled.get(e.u, 0) + scaled.get(e.v, 0) < lcd:
            raise CertificateError(
                f"cover certificate is infeasible at edge {e!r}: "
                f"{cert.values.get(e.u, 0)} + {cert.values.get(e.v, 0)} < 1"
            )
    return cert.bound


def verify_certificate(
    graph: PortNumberedGraph, result: BoundResult
) -> bool:
    """Re-prove *result*'s bounds from its certificate alone.

    Checks, in exact ``int``/``Fraction`` arithmetic:

    * the matching part (if any) is a matching of the graph, maximal
      when claimed, and certifies ``ν >= result.lower``;
    * the cover part (if any) is a feasible fractional vertex cover and
      certifies ``ν <= result.upper`` (a maximal matching's ``2|M|``
      also counts as a certified upper bound);
    * ``lower <= upper``, and ``exact`` results have ``lower == upper``.

    Returns ``True`` on success; raises :class:`~repro.exceptions.
    CertificateError` naming the first violated condition otherwise.
    """
    cert = result.certificate
    if cert is None:
        raise CertificateError("result carries no certificate to verify")
    matching: MatchingCertificate | None = None
    cover: CoverCertificate | None = None
    if isinstance(cert, SandwichCertificate):
        matching, cover = cert.matching, cert.cover
    elif isinstance(cert, MatchingCertificate):
        matching = cert
    elif isinstance(cert, CoverCertificate):
        cover = cert
    else:
        raise CertificateError(
            f"unknown certificate type {type(cert).__name__}"
        )

    if result.lower > result.upper:
        raise CertificateError(
            f"inverted bracket: lower {result.lower} > upper {result.upper}"
        )
    if result.exact and result.lower != result.upper:
        raise CertificateError(
            f"result claims exactness with gap "
            f"{result.upper - result.lower}"
        )

    if result.lower > 0:
        if matching is None:
            raise CertificateError(
                f"lower bound {result.lower} has no matching certificate"
            )
        certified = _check_matching(graph, matching)
        if result.lower > certified:
            raise CertificateError(
                f"lower bound {result.lower} exceeds the certified "
                f"matching size {certified}"
            )
    elif matching is not None:
        _check_matching(graph, matching)

    upper_candidates: list[int] = []
    if cover is not None:
        upper_candidates.append(_check_cover(graph, cover))
    if matching is not None and matching.maximal:
        upper_candidates.append(2 * matching.size)
    # An exact engine claims ``upper == ν == |M|`` for a *maximum*
    # matching — tighter than anything a certificate can prove (that
    # would amount to certifying maximumness).  The bracket
    # ``[|M|, 2|M|]`` is still re-proven above; the zero-width claim
    # itself is the engine's, so it is exempted here, explicitly.
    exact_claim = (
        result.exact
        and matching is not None
        and result.upper == matching.size
    )
    if not upper_candidates and not exact_claim:
        raise CertificateError(
            f"upper bound {result.upper} has no certificate "
            "(need a cover or a maximal matching)"
        )
    if upper_candidates and result.upper < min(upper_candidates):
        if not exact_claim:
            raise CertificateError(
                f"upper bound {result.upper} is below every certified "
                f"candidate (best: {min(upper_candidates)})"
            )
    return True
