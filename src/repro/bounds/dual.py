"""Dual engine: a certified upper bound on ν from a fractional cover.

Weak LP duality for matchings: if ``y`` is a feasible fractional vertex
cover (``y_u + y_v >= 1`` on every edge, ``y >= 0``) then every matching
charges at least 1 of cover mass per edge to distinct vertices, so
``ν <= Σy`` — and since ν is an integer, ``ν <= ⌊Σy⌋``.  The bound is
*certified*: the cover itself is returned and
:func:`repro.bounds.result.verify_certificate` re-checks feasibility
edge by edge in exact arithmetic.

Two candidate covers are built and the smaller objective wins:

* the multiplicative-weights solve of the vertex cover LP via the
  shared :func:`repro.bounds.fractional.solve_covering_lp` loop
  (constraint width 2, so two phases from ``y = 1/4``); on
  edge-transitive instances this lands on the canonical uniform-half
  cover ``Σy = n'/2`` over non-isolated vertices;
* the *matching cover* derived from a maximal matching ``M``: ``y = 1/2``
  on matched vertices, raised to 1 on matched vertices that see an
  unmatched neighbour.  Feasible because ``M`` is maximal (no edge has
  two unmatched endpoints), with objective ``|M| + k/2 <= 2|M|`` where
  ``k`` counts the raised vertices — never worse than the classical
  ``ν <= 2|M|``, and much tighter when most of the graph is matched.
"""

from __future__ import annotations

from fractions import Fraction

from repro.bounds.fractional import solve_covering_lp
from repro.bounds.primal import primal_matching
from repro.bounds.result import BoundResult, CoverCertificate
from repro.exceptions import CertificateError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["dual_bound", "fractional_vertex_cover", "matching_cover"]


def _mw_cover(graph: PortNumberedGraph) -> CoverCertificate:
    """The MW solve of the vertex cover LP (width-2 constraints)."""
    nodes = [n for n in graph.nodes if graph.degree(n) > 0]
    index = {n: i for i, n in enumerate(nodes)}
    constraints = [(index[e.u], index[e.v]) for e in graph.edges]
    values = solve_covering_lp(
        len(nodes), constraints, start=Fraction(1, 4), phases=2
    )
    return CoverCertificate(
        values={n: values[i] for n, i in index.items()}
    )


def matching_cover(
    graph: PortNumberedGraph, matching: frozenset[PortEdge]
) -> CoverCertificate:
    """The cover induced by a *maximal* matching (see module docstring)."""
    matched: set[Node] = set()
    for e in matching:
        matched.add(e.u)
        matched.add(e.v)
    raised: set[Node] = set()
    for e in graph.edges:
        in_u, in_v = e.u in matched, e.v in matched
        if not in_u and not in_v:
            raise CertificateError(
                f"matching is not maximal: edge {e!r} is uncovered"
            )
        if in_u and not in_v:
            raised.add(e.u)
        elif in_v and not in_u:
            raised.add(e.v)
    half, one = Fraction(1, 2), Fraction(1)
    return CoverCertificate(
        values={n: (one if n in raised else half) for n in matched}
    )


def fractional_vertex_cover(
    graph: PortNumberedGraph,
    matching: frozenset[PortEdge] | None = None,
) -> CoverCertificate:
    """The better of the two candidate covers (smaller ``⌊Σy⌋``; the
    matching cover wins ties — its values are the sparser set)."""
    graph.require_simple()
    candidates = [_mw_cover(graph)]
    if matching is not None:
        candidates.append(matching_cover(graph, matching))
    return min(reversed(candidates), key=lambda c: c.bound)


def dual_bound(
    graph: PortNumberedGraph,
    *,
    matching: frozenset[PortEdge] | None = None,
    seed: int = 0,
) -> BoundResult:
    """The dual engine on its own: ``ν <= ⌊Σy⌋``, cover as certificate.

    Builds a primal matching internally when none is supplied, so the
    matching-cover candidate is always in play; the *lower* side of the
    returned result is the trivial 0 — use :func:`repro.bounds.
    nu_sandwich` for the two-sided bracket.
    """
    graph.require_simple()
    if matching is None:
        matching = primal_matching(graph, seed=seed)
    cover = fractional_vertex_cover(graph, matching)
    return BoundResult(
        lower=0, upper=cover.bound, certificate=cover,
        exact=(cover.bound == 0),
    )
