"""Exact engine: the blossom maximum matching as a zero-width bracket.

Wraps :func:`repro.eds.bounds.maximum_matching_size` (networkx blossom,
memoised per compiled graph) in the :class:`~repro.bounds.result.
BoundResult` protocol.  The matching itself is recovered from the same
memo and converted back to the graph's :class:`~repro.portgraph.ports.
PortEdge` identities, so even the exact engine ships a certificate: the
maximum matching is in particular maximal, proving ``ν >= |M|`` and
``ν <= 2|M|`` independently of networkx (the zero-width claim
``upper == lower`` itself rests on blossom's correctness, which is why
:class:`BoundResult.exact` is a separate flag from the certified
bracket).
"""

from __future__ import annotations

from repro.bounds.result import BoundResult, MatchingCertificate
from repro.eds.bounds import maximum_matching_nodes, maximum_matching_size
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge

__all__ = ["exact_bound", "maximum_matching_edges"]


def maximum_matching_edges(graph: PortNumberedGraph) -> frozenset[PortEdge]:
    """A maximum matching as port edges (memoised with the blossom run)."""
    graph.require_simple()
    by_endpoints = {e.endpoints: e for e in graph.edges}
    return frozenset(
        by_endpoints[pair] for pair in maximum_matching_nodes(graph)
    )


def exact_bound(graph: PortNumberedGraph) -> BoundResult:
    """ν(G) exactly, certificate included: ``lower == upper == ν``."""
    nu = maximum_matching_size(graph)
    certificate = MatchingCertificate(
        edges=maximum_matching_edges(graph), maximal=True
    )
    return BoundResult(
        lower=nu, upper=nu, certificate=certificate, exact=True
    )
