"""Primal engine: a fast feasible matching certifying ``ν >= |M|``.

Greedy maximal matching over a seed-derived edge order, improved by a
bounded-depth alternating-path search: every pass scans the free
vertices in canonical order and augments along the first short
augmenting path it finds (an alternating path between two free
vertices), growing the matching by one edge per path.  Depth-bounded
search without blossom contraction can miss augmenting paths that cross
odd cycles — that only costs tightness, never soundness: whatever the
search returns is a genuine matching, and augmenting preserves
maximality because the matched vertex set only ever grows.

The result doubles as the cheap half of the EDS sandwich: a maximal
matching *is* a feasible edge dominating set, so ``|M|`` upper-bounds
the EDS optimum while lower-bounding ν.
"""

from __future__ import annotations

import random

from repro.bounds.result import BoundResult, MatchingCertificate
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["primal_bound", "primal_matching"]

#: Default alternating-search depth: the number of *matched* edges a
#: path may cross.  Depth 3 (paths of length <= 7) captures nearly all
#: of the augmenting mass on the sweep families at a per-pass cost
#: linear in the graph size.
DEFAULT_MAX_DEPTH = 3

#: Improvement passes over the free vertices.  A pass that augments
#: nothing ends the search early, so this is a ceiling, not a budget
#: that must be spent.
DEFAULT_PASSES = 4


def _augmenting_path(
    root: Node,
    adjacency: dict[Node, list[tuple[Node, PortEdge]]],
    match: dict[Node, Node],
    match_edge: dict[Node, PortEdge],
    visited: set[Node],
    max_depth: int,
) -> list[PortEdge] | None:
    """DFS for an alternating path from free *root* to another free
    vertex, crossing at most *max_depth* matched edges.  *visited* is
    shared across one pass (vertices are never unmarked), which keeps
    the pass linear and the found paths pairwise vertex-disjoint."""

    def search(u: Node, depth: int) -> list[PortEdge] | None:
        for v, edge in adjacency[u]:
            if v in visited:
                continue
            if v not in match:
                visited.add(v)
                return [edge]
            if depth >= max_depth:
                continue
            w = match[v]
            if w in visited:
                continue
            visited.add(v)
            visited.add(w)
            tail = search(w, depth + 1)
            if tail is not None:
                return [edge, match_edge[v]] + tail
        return None

    visited.add(root)
    return search(root, 0)


def primal_matching(
    graph: PortNumberedGraph,
    *,
    seed: int = 0,
    max_depth: int = DEFAULT_MAX_DEPTH,
    passes: int = DEFAULT_PASSES,
) -> frozenset[PortEdge]:
    """A maximal matching: greedy over a seeded shuffle, then augmented.

    Deterministic for a given ``(graph, seed, max_depth, passes)`` — the
    shuffle uses :class:`random.Random` over the canonical edge order
    and every subsequent scan follows canonical node order.
    """
    graph.require_simple()
    order = list(graph.edges)
    random.Random(seed).shuffle(order)

    match: dict[Node, Node] = {}
    match_edge: dict[Node, PortEdge] = {}
    for e in order:
        if e.u not in match and e.v not in match:
            match[e.u], match[e.v] = e.v, e.u
            match_edge[e.u] = match_edge[e.v] = e

    adjacency: dict[Node, list[tuple[Node, PortEdge]]] = {
        node: [] for node in graph.nodes
    }
    for e in graph.edges:  # canonical order — deterministic scans
        adjacency[e.u].append((e.v, e))
        adjacency[e.v].append((e.u, e))
    for _ in range(max(0, passes)):
        visited: set[Node] = set()
        augmented = False
        for root in graph.nodes:
            if root in match or root in visited or not adjacency[root]:
                continue
            path = _augmenting_path(
                root, adjacency, match, match_edge, visited, max_depth
            )
            if path is None:
                continue
            # Path edges alternate unmatched/matched and end unmatched;
            # flipping them matches `root` and the far endpoint too.
            for matched in path[1::2]:
                del match[matched.u], match[matched.v]
                del match_edge[matched.u], match_edge[matched.v]
            for added in path[0::2]:
                match[added.u], match[added.v] = added.v, added.u
                match_edge[added.u] = match_edge[added.v] = added
            augmented = True
        if not augmented:
            break
    return frozenset(match_edge.values())


def primal_bound(
    graph: PortNumberedGraph,
    *,
    seed: int = 0,
    max_depth: int = DEFAULT_MAX_DEPTH,
    passes: int = DEFAULT_PASSES,
) -> BoundResult:
    """The primal half on its own: ``|M| <= ν <= 2|M|`` by maximality."""
    matching = primal_matching(
        graph, seed=seed, max_depth=max_depth, passes=passes
    )
    size = len(matching)
    certificate = MatchingCertificate(edges=matching, maximal=True)
    return BoundResult(
        lower=size, upper=2 * size, certificate=certificate,
        exact=(size == 0),
    )
