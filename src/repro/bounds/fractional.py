"""Exact-arithmetic multiplicative-weights solver for covering LPs.

One update rule, two clients.  The LP is the pure covering program

    min Σ x_i   s.t.   Σ_{i ∈ C} x_i >= 1  for every constraint C,
                       0 <= x_i <= 1,

and the solver is the doubling schedule the ``lp_rounding`` baseline has
always run *distributedly* on the line graph: start every variable at a
promise-derived value, and in each phase double (capped at 1) every
variable that belongs to at least one violated constraint.  A violated
constraint contains its own variables, so after :func:`doubling_phases`
phases every constraint is satisfied, and the multiplicative schedule
keeps the objective within an ``O(log width)`` factor of the LP optimum.

The two clients:

* :class:`repro.baselines.lp_rounding.LPRoundingEDS` runs the rule by
  message passing — a variable per edge, a constraint per closed
  line-graph neighbourhood ``N[e]`` (an edge doubles exactly when a
  violated constraint is incident to either endpoint, which is the same
  membership test).  :func:`line_graph_covering_instance` materialises
  that instance so tests can prove the central and distributed solves
  agree variable-for-variable.
* :func:`repro.bounds.dual.fractional_vertex_cover` solves the vertex
  cover LP (a variable per node, a two-variable constraint per edge) to
  extract a certified dual upper bound on ν.

All arithmetic is :class:`~fractions.Fraction` — values are exact
powers of two over the start denominator, so certificates derived from
them verify exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge

__all__ = [
    "doubling_phases",
    "line_graph_covering_instance",
    "solve_covering_lp",
]


def doubling_phases(delta: int) -> int:
    """Phases until ``x = 1/(2Δ)`` provably reaches 1: ``⌈log2(2Δ)⌉``."""
    return max(1, (2 * max(1, delta) - 1).bit_length())


def solve_covering_lp(
    num_vars: int,
    constraints: Sequence[Sequence[int]],
    *,
    start: Fraction,
    phases: int,
) -> list[Fraction]:
    """Run the doubling schedule; returns the final variable values.

    Each constraint is a sequence of variable indices whose sum must
    reach 1.  The loop is phase-synchronous, exactly like the
    distributed client: *all* violations of a phase are computed against
    the same values before any variable doubles.  Phases with no
    violated constraint change nothing, so stopping early is
    value-identical to running all ``phases`` — the distributed client
    always runs the full schedule for its closed-form round count.
    """
    # Internally the values are integer numerators over the fixed
    # denominator of ``start``: doubling and capping at 1 never leave
    # that lattice, so plain ``int`` arithmetic is exact and an order
    # of magnitude faster than per-op Fraction normalisation.
    den = start.denominator
    x = [start.numerator] * num_vars
    for _ in range(phases):
        doubled = [False] * num_vars
        violated_any = False
        for constraint in constraints:
            if sum(x[i] for i in constraint) < den:
                violated_any = True
                for i in constraint:
                    doubled[i] = True
        if not violated_any:
            break
        for i, flag in enumerate(doubled):
            if flag:
                x[i] = min(den, 2 * x[i])
    return [Fraction(num, den) for num in x]


def line_graph_covering_instance(
    graph: PortNumberedGraph,
) -> tuple[tuple[PortEdge, ...], list[list[int]]]:
    """The fractional-EDS covering LP: dominating set on ``L(G)``.

    Returns the variable order (the graph's canonical edge order) and
    one constraint per edge ``e``: the indices of ``N[e]`` — ``e`` plus
    every edge sharing an endpoint with it.  This is the instance the
    ``lp_rounding`` baseline solves by message passing.
    """
    graph.require_simple()
    edges = graph.edges
    index = {e: i for i, e in enumerate(edges)}
    constraints: list[list[int]] = []
    for e in edges:
        members = {index[e]}
        for endpoint in (e.u, e.v):
            for incident in graph.edges_at(endpoint):
                members.add(index[incident])
        constraints.append(sorted(members))
    return edges, constraints
