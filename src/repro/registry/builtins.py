"""Built-in catalogue: importing this module registers every built-in.

The built-in *algorithms* register themselves where their node programs
are defined (the :mod:`repro.algorithms` modules) — importing the
package triggers them all.  The centralised baseline and the *graph
families* are registered here, binding the pure builder functions from
:mod:`repro.generators` and :mod:`repro.lowerbounds`.  The built-in
*measures* live with the execution pipeline in
:mod:`repro.engine.measures`, and the figure reproductions (the
``figure`` family plus one ``figure:N`` measure per paper figure) in
:mod:`repro.engine.figures`.

This module is imported lazily by the registries' first lookup (see
:func:`repro.registry.base.load_builtins`), never eagerly, so the
catalogue costs nothing until a name is actually resolved.
"""

from __future__ import annotations

import repro.algorithms  # noqa: F401  (import side effect: registrations)
import repro.baselines  # noqa: F401  (import side effect: baselines)
import repro.engine.figures  # noqa: F401  (import side effect: figures)
import repro.engine.measures  # noqa: F401  (import side effect: measures)
from repro.eds.greedy import two_approx_eds
from repro.generators.bounded import (
    caterpillar,
    grid,
    path,
    random_bounded_degree,
    random_tree,
    star,
)
from repro.generators.pairing import pairing_regular
from repro.generators.regular import (
    complete,
    cycle,
    hypercube,
    random_regular,
    torus,
)
from repro.generators.special import crown, matching_union
from repro.lowerbounds.even import build_even_lower_bound
from repro.lowerbounds.odd import build_odd_lower_bound
from repro.registry.algorithms import register_central
from repro.registry.families import register_graph_family

# ---------------------------------------------------------------------------
# The centralised baseline (the node programs register themselves; a
# sequential solver has no natural home in repro.algorithms)
# ---------------------------------------------------------------------------

register_central(
    "central_greedy",
    lambda graph: two_approx_eds(graph),
    description="sequential greedy maximal matching (2-approximation)",
)


# ---------------------------------------------------------------------------
# Graph families
# ---------------------------------------------------------------------------


def _seeded(seed: int | None) -> int:
    return 0 if seed is None else seed


register_graph_family(
    "regular", params=("d", "n"),
    description="random d-regular graph on n nodes",
)(lambda p, s: random_regular(p["d"], p["n"], seed=_seeded(s)))

register_graph_family(
    "pairing_regular", params=("d", "n"),
    description="pairing-model random d-regular graph on n nodes "
    "(O(nd) direct-to-CSR; switch-repaired to simple)",
)(lambda p, s: pairing_regular(p["d"], p["n"], seed=_seeded(s)))

register_graph_family(
    "cycle", params=("n",), description="cycle on n nodes",
)(lambda p, s: cycle(p["n"], seed=s))

register_graph_family(
    "complete", params=("n",), description="complete graph on n nodes",
)(lambda p, s: complete(p["n"], seed=s))

register_graph_family(
    "hypercube", params=("dim",), description="dim-dimensional hypercube",
)(lambda p, s: hypercube(p["dim"], seed=s))

register_graph_family(
    "torus", params=("rows", "cols"), description="rows x cols torus",
)(lambda p, s: torus(p["rows"], p["cols"], seed=s))

register_graph_family(
    "crown", params=("k",), description="crown graph S_k",
)(lambda p, s: crown(p["k"], seed=s))

register_graph_family(
    "matching_union", params=("pairs",),
    description="disjoint union of single edges",
)(lambda p, s: matching_union(p["pairs"]))

register_graph_family(
    "bounded", params=("n", "max_degree"),
    description="random graph of bounded maximum degree",
)(lambda p, s: random_bounded_degree(p["n"], p["max_degree"],
                                     seed=_seeded(s)))

register_graph_family(
    "path", params=("n",), description="path on n nodes",
)(lambda p, s: path(p["n"], seed=s))

register_graph_family(
    "grid", params=("rows", "cols"), description="rows x cols grid",
)(lambda p, s: grid(p["rows"], p["cols"], seed=s))

register_graph_family(
    "tree", params=("n",), description="uniform random tree on n nodes",
)(lambda p, s: random_tree(p["n"], seed=_seeded(s)))

register_graph_family(
    "star", params=("leaves",), description="star with the given leaves",
)(lambda p, s: star(p["leaves"], seed=s))

register_graph_family(
    "caterpillar", params=("spine", "legs"),
    description="caterpillar tree (spine nodes, legs per node)",
)(lambda p, s: caterpillar(p["spine"], p["legs"], seed=s))

register_graph_family(
    "lower_bound_even", params=("d",), lower_bound=True,
    description="Theorem 1 adversarial construction (even d)",
)(lambda p, s: build_even_lower_bound(p["d"]))

register_graph_family(
    "lower_bound_odd", params=("d",), lower_bound=True,
    description="Theorem 2 adversarial construction (odd d)",
)(lambda p, s: build_odd_lower_bound(p["d"]))
