"""The graph-family registry: names → parameterised graph builders.

A registered family turns ``(params, seed)`` into a graph — or, for the
paper's adversarial constructions, a
:class:`~repro.lowerbounds.instance.LowerBoundInstance`.  Families are
what make :class:`~repro.engine.spec.GraphSpec` pure data: a work unit
references a family *name*, and this registry is the single point where
the name turns back into a builder.

Built-ins (random regular, cycles, grids, the Theorem 1/2 lower-bound
constructions, …) are registered in :mod:`repro.registry.builtins`;
third-party families use the same decorator::

    from repro.registry import register_graph_family

    @register_graph_family("two_cliques", params=("k",))
    def _build_two_cliques(params, seed):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.registry.base import (
    Registry,
    UnknownParameterError,
    load_builtins,
)

__all__ = [
    "FAMILIES",
    "GraphFamily",
    "family_names",
    "get_family",
    "register_graph_family",
]

#: build(params, seed) -> PortNumberedGraph | LowerBoundInstance
FamilyBuilder = Callable[[Mapping[str, int], "int | None"], Any]


@dataclass(frozen=True)
class GraphFamily:
    """One registered graph family."""

    name: str
    build: FamilyBuilder
    params: tuple[str, ...] = ()
    lower_bound: bool = False
    description: str = ""

    def make(self, params: Mapping[str, int], seed: int | None) -> Any:
        missing = sorted(set(self.params) - set(params))
        unknown = sorted(set(params) - set(self.params))
        if missing or unknown:
            raise UnknownParameterError(
                f"graph family {self.name!r} takes parameters "
                f"{sorted(self.params)}"
                + (f"; missing {missing}" if missing else "")
                + (f"; unknown {unknown}" if unknown else "")
            )
        return self.build(dict(params), seed)


FAMILIES: Registry[GraphFamily] = Registry(
    "graph family", loader=load_builtins
)


def register_graph_family(
    name: str,
    *,
    params: tuple[str, ...] = (),
    lower_bound: bool = False,
    description: str = "",
    replace: bool = False,
) -> Callable[[FamilyBuilder], FamilyBuilder]:
    """Decorator registering ``build(params, seed)`` as family *name*.

    ``lower_bound`` marks families whose builder returns a
    :class:`~repro.lowerbounds.instance.LowerBoundInstance` (required by
    the ``adversary`` measure).
    """

    def decorate(build: FamilyBuilder) -> FamilyBuilder:
        FAMILIES.register(
            name,
            GraphFamily(
                name=name, build=build, params=tuple(params),
                lower_bound=lower_bound, description=description,
            ),
            replace=replace,
        )
        return build

    return decorate


def get_family(name: str) -> GraphFamily:
    return FAMILIES.get(name)


def family_names() -> tuple[str, ...]:
    return FAMILIES.names()
