"""The generic name → entry registry underlying all three plugin tables.

A :class:`Registry` is a small, strict mapping: names register exactly
once (duplicates are programming errors, not silent overrides), unknown
names fail with a message that lists every available entry, and built-in
entries load lazily on first lookup so importing :mod:`repro.registry`
stays cheap and cycle-free.

The three concrete registries — algorithms, graph families, measures —
live in their sibling modules and share this machinery.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Generic, Iterator, TypeVar

from repro.exceptions import ReproError

__all__ = [
    "DuplicateNameError",
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "UnknownParameterError",
]

T = TypeVar("T")


class RegistryError(ReproError):
    """Base class for registry failures (bad name, bad parameters)."""


class DuplicateNameError(RegistryError, ValueError):
    """A name was registered twice without ``replace=True``."""


class UnknownNameError(RegistryError, KeyError):
    """A lookup named an entry that does not exist.

    Subclasses :class:`KeyError` so pre-registry call sites that caught
    ``KeyError`` keep working.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0] if self.args else ""


class UnknownParameterError(RegistryError, KeyError):
    """An entry was given parameters it does not declare (or is missing
    required ones).

    Subclasses :class:`KeyError` because the pre-registry resolvers
    raised ``KeyError`` for bad parameters too.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0] if self.args else ""


class Registry(Generic[T]):
    """A strict name → entry table with lazy built-in loading.

    *loader*, when given, is invoked once before the first lookup (or
    name listing); it imports the modules whose import side effects
    register the built-in entries.
    """

    def __init__(self, kind: str, *, loader: Callable[[], None] | None = None):
        self.kind = kind
        self._entries: dict[str, T] = {}
        self._loader = loader
        self._loaded = loader is None
        self._loading = False

    def _ensure_loaded(self) -> None:
        if self._loaded or self._loading:
            return
        self._loading = True
        try:
            assert self._loader is not None
            self._loader()
            self._loaded = True
        finally:
            self._loading = False

    def register(self, name: str, entry: T, *, replace: bool = False) -> T:
        """Register *entry* under *name*; duplicate names are rejected.

        Built-ins load first (when not already loaded), so a collision
        with a built-in name is detected here and now — not later from
        inside an unrelated lookup.
        """
        self._ensure_loaded()
        if not name:
            raise RegistryError(f"{self.kind} names must be non-empty")
        if not replace and name in self._entries:
            raise DuplicateNameError(
                f"{self.kind} {name!r} is already registered; "
                f"pass replace=True to override it deliberately"
            )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove *name* (for tests and temporary plugins)."""
        self._ensure_loaded()
        if name not in self._entries:
            raise UnknownNameError(
                f"cannot unregister unknown {self.kind} {name!r}"
            )
        del self._entries[name]

    @contextmanager
    def temporarily(self, name: str, entry: T) -> Iterator[T]:
        """Context manager: register *entry*, then clean it up again."""
        self.register(name, entry)
        try:
            yield entry
        finally:
            self._entries.pop(name, None)

    def get(self, name: str) -> T:
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(
                f"unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> tuple[str, ...]:
        self._ensure_loaded()
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {list(self.names())})"


def load_builtins() -> None:
    """Import every module whose import side effects register built-ins.

    Shared by all three registries: the built-in algorithms, graph
    families, and measures form one coherent catalogue, so the first
    lookup in any registry makes the whole catalogue available.  After
    the built-ins, third-party entry-point plugins load through
    :func:`repro.plugins.load_plugins` — lazily rediscovered in every
    process (spawned pool workers included), error-isolated so a broken
    plugin can never poison the catalogue.
    """
    import repro.registry.builtins  # noqa: F401  (import is the effect)
    from repro.plugins import load_plugins

    load_plugins()
