"""The algorithm registry: names → runnable, model-aware algorithms.

A registered algorithm declares

* its **model** — ``anonymous`` (port numbering only), ``identified``
  (unique IDs), ``randomized`` (anonymous + private coins), or
  ``central`` (sequential baseline);
* its accepted **params** (keyword arguments such as the degree promise
  ``delta`` of A(Δ));
* implicitly, whether it **needs a per-run RNG** (every ``randomized``
  algorithm does; the engine derives the seed from the work unit's
  content hash, which is what makes randomised runs cacheable and
  byte-reproducible).

:func:`resolve` turns a name + params (+ RNG seed) into a
:class:`BoundAlgorithm` — a ready-to-run closure bundle that the
executor, the API façade, and the legacy shims all share.

Built-in algorithms register themselves where they are defined (the
``repro.algorithms`` modules); third-party code uses the same decorator::

    from repro.registry import register_algorithm, BoundAlgorithm

    @register_algorithm("my_algo", model="anonymous")
    def _bind_my_algo() -> BoundAlgorithm:
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge
from repro.registry.base import (
    Registry,
    RegistryError,
    UnknownParameterError,
    load_builtins,
)
from repro.runtime.algorithm import AnonymousAlgorithm
from repro.runtime.randomized import RandomizedAlgorithm, run_randomized
from repro.runtime.scheduler import RunResult, run_anonymous, run_identified

__all__ = [
    "ALGORITHMS",
    "AlgorithmEntry",
    "BoundAlgorithm",
    "MODELS",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "register_anonymous",
    "register_central",
    "register_identified",
    "register_randomized",
    "resolve",
]

#: Computation models an algorithm can declare.
MODELS = ("anonymous", "identified", "randomized", "central")

Runner = Callable[[PortNumberedGraph], tuple[frozenset[PortEdge], int]]
TracedRunner = Callable[[PortNumberedGraph], RunResult]


@dataclass(frozen=True)
class BoundAlgorithm:
    """An algorithm with parameters (and RNG, if any) bound — runnable.

    ``run`` executes on a graph and returns ``(edge_set, rounds)``.
    ``factory`` exposes the raw node-program factory for anonymous-model
    algorithms (the adversary and trace drivers need it); ``traced``
    re-runs with message tracing enabled and returns the full
    :class:`~repro.runtime.scheduler.RunResult` (``None`` for central
    algorithms, which send no messages).
    """

    name: str
    model: str
    run: Runner
    factory: Callable[[PortNumberedGraph], AnonymousAlgorithm] | None = None
    traced: TracedRunner | None = None


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered algorithm: declared metadata + binder.

    ``origin`` records the module that registered the entry; the
    executor ships it to ``spawn``-start multiprocessing workers so that
    import re-registers plugins there (see
    :func:`repro.engine.executor.run_units`).
    """

    name: str
    model: str
    bind: Callable[..., BoundAlgorithm]
    params: tuple[str, ...] = ()
    description: str = ""
    origin: str = ""

    @property
    def needs_rng(self) -> bool:
        """Randomised algorithms get a fresh engine-derived RNG per run."""
        return self.model == "randomized"

    def resolve(
        self,
        params: Mapping[str, Any] | None = None,
        *,
        rng_seed: int | None = None,
    ) -> BoundAlgorithm:
        """Bind *params* (and the RNG seed, if needed) into a runnable."""
        kwargs = dict(params or {})
        unknown = sorted(set(kwargs) - set(self.params))
        if unknown:
            raise UnknownParameterError(
                f"unknown parameters for algorithm {self.name!r}: {unknown}"
                + (f"; accepted: {sorted(self.params)}" if self.params
                   else " (it takes none)")
            )
        if self.needs_rng:
            kwargs["rng_seed"] = 0 if rng_seed is None else rng_seed
        return self.bind(**kwargs)


ALGORITHMS: Registry[AlgorithmEntry] = Registry(
    "algorithm", loader=load_builtins
)


def register_algorithm(
    name: str,
    *,
    model: str,
    params: tuple[str, ...] = (),
    description: str = "",
    origin: str | None = None,
    replace: bool = False,
) -> Callable[[Callable[..., BoundAlgorithm]], Callable[..., BoundAlgorithm]]:
    """Class/function decorator registering a :class:`BoundAlgorithm` binder.

    The decorated callable receives the declared ``params`` as keyword
    arguments (plus ``rng_seed`` for ``randomized`` algorithms) and
    returns a :class:`BoundAlgorithm`.  *origin* defaults to the
    binder's defining module; register plugins at module import time so
    multiprocessing workers can re-import them.
    """
    if model not in MODELS:
        raise RegistryError(
            f"unknown model {model!r} for algorithm {name!r}; "
            f"available: {MODELS}"
        )

    def decorate(bind: Callable[..., BoundAlgorithm]):
        ALGORITHMS.register(
            name,
            AlgorithmEntry(
                name=name, model=model, bind=bind,
                params=tuple(params), description=description,
                origin=(origin if origin is not None
                        else getattr(bind, "__module__", "") or ""),
            ),
            replace=replace,
        )
        return bind

    return decorate


# ---------------------------------------------------------------------------
# Convenience registrars for the four models
# ---------------------------------------------------------------------------


def register_anonymous(
    name: str,
    factory_builder: Callable[..., AnonymousAlgorithm],
    *,
    params: tuple[str, ...] = (),
    description: str = "",
) -> None:
    """Register an anonymous-model algorithm from its factory builder.

    ``factory_builder(graph, **params)`` returns the anonymous factory
    (degree → node program) for that graph; the run/trace/adversary
    plumbing is derived automatically.
    """

    def bind(**bound: Any) -> BoundAlgorithm:
        def factory(graph: PortNumberedGraph) -> AnonymousAlgorithm:
            return factory_builder(graph, **bound)

        def run(graph: PortNumberedGraph):
            result = run_anonymous(graph, factory(graph))
            return result.edge_set(), result.rounds

        def traced(graph: PortNumberedGraph) -> RunResult:
            return run_anonymous(graph, factory(graph), record_trace=True)

        return BoundAlgorithm(name, "anonymous", run, factory, traced)

    register_algorithm(
        name, model="anonymous", params=params, description=description,
        origin=getattr(factory_builder, "__module__", "") or "",
    )(bind)


def register_identified(
    name: str,
    factory_builder: Callable[..., Any],
    *,
    params: tuple[str, ...] = (),
    description: str = "",
) -> None:
    """Register an identified-model (unique IDs) algorithm."""

    def bind(**bound: Any) -> BoundAlgorithm:
        def run(graph: PortNumberedGraph):
            result = run_identified(graph, factory_builder(graph, **bound))
            return result.edge_set(), result.rounds

        def traced(graph: PortNumberedGraph) -> RunResult:
            return run_identified(
                graph, factory_builder(graph, **bound), record_trace=True
            )

        return BoundAlgorithm(name, "identified", run, traced=traced)

    register_algorithm(
        name, model="identified", params=params, description=description,
        origin=getattr(factory_builder, "__module__", "") or "",
    )(bind)


def register_randomized(
    name: str,
    program_builder: Callable[..., RandomizedAlgorithm],
    *,
    params: tuple[str, ...] = (),
    description: str = "",
) -> None:
    """Register an anonymous + private-coins algorithm.

    ``program_builder(graph, **params)`` returns the randomised factory
    ``(degree, rng) → node program``.  The bound runnable is seeded with
    the engine-derived ``rng_seed``, so identical work units replay
    identical coin flips — randomised results are deterministic data.
    """

    def bind(*, rng_seed: int, **bound: Any) -> BoundAlgorithm:
        def run(graph: PortNumberedGraph):
            result = run_randomized(
                graph, program_builder(graph, **bound), seed=rng_seed
            )
            return result.edge_set(), result.rounds

        def traced(graph: PortNumberedGraph) -> RunResult:
            return run_randomized(
                graph, program_builder(graph, **bound), seed=rng_seed,
                record_trace=True,
            )

        return BoundAlgorithm(name, "randomized", run, traced=traced)

    register_algorithm(
        name, model="randomized", params=params, description=description,
        origin=getattr(program_builder, "__module__", "") or "",
    )(bind)


def register_central(
    name: str,
    solver: Callable[..., frozenset[PortEdge]],
    *,
    params: tuple[str, ...] = (),
    description: str = "",
) -> None:
    """Register a centralised (sequential baseline) solver.

    ``solver(graph, **params)`` returns the selected edge set; rounds and
    messages are zero by definition of the model.
    """

    def bind(**bound: Any) -> BoundAlgorithm:
        def run(graph: PortNumberedGraph):
            return solver(graph, **bound), 0

        return BoundAlgorithm(name, "central", run)

    register_algorithm(
        name, model="central", params=params, description=description,
        origin=getattr(solver, "__module__", "") or "",
    )(bind)


# ---------------------------------------------------------------------------
# Lookups
# ---------------------------------------------------------------------------


def get_algorithm(name: str) -> AlgorithmEntry:
    """The registered entry (metadata + binder) for *name*."""
    return ALGORITHMS.get(name)


def algorithm_names() -> tuple[str, ...]:
    """All registered algorithm names, sorted."""
    return ALGORITHMS.names()


def resolve(
    name: str,
    params: Mapping[str, Any] | None = None,
    *,
    rng_seed: int | None = None,
) -> BoundAlgorithm:
    """Resolve *name* + *params* to a runnable :class:`BoundAlgorithm`.

    This is the single point where algorithm names turn back into code —
    the executor, the API façade, and the CLI all call it.
    """
    return get_algorithm(name).resolve(params, rng_seed=rng_seed)
