"""repro.registry — the pluggable catalogue of algorithms, graph
families, and measures.

The paper's experiments are a cross-product of *algorithms* × *graph
families* × *measures*; this package makes each axis a first-class,
declaratively extensible registry:

* :func:`register_algorithm` (plus the per-model conveniences
  :func:`register_anonymous`, :func:`register_identified`,
  :func:`register_randomized`, :func:`register_central`) — algorithms
  declare their model, their accepted parameters, and (for randomised
  algorithms) receive an engine-derived RNG seed per run;
* :func:`register_graph_family` — ``(params, seed) → graph`` builders,
  including the adversarial lower-bound constructions;
* :func:`register_measure` — :class:`Measure` objects with a
  ``measure(graph, run) → dict`` protocol.

Registered names are what :class:`~repro.engine.spec.JobSpec` work units
reference, so a plugin registered before a sweep is immediately
reachable from the engine, the cache, and the CLI.  See the README's
"Extending" section for a worked end-to-end example.
"""

from repro.registry.algorithms import (
    ALGORITHMS,
    MODELS,
    AlgorithmEntry,
    BoundAlgorithm,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    register_anonymous,
    register_central,
    register_identified,
    register_randomized,
    resolve,
)
from repro.registry.base import (
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
    UnknownParameterError,
)
from repro.registry.families import (
    FAMILIES,
    GraphFamily,
    family_names,
    get_family,
    register_graph_family,
)
from repro.registry.measures import (
    MEASURES,
    AlgorithmRun,
    Measure,
    get_measure,
    measure_names,
    register_measure,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmEntry",
    "AlgorithmRun",
    "BoundAlgorithm",
    "DuplicateNameError",
    "FAMILIES",
    "GraphFamily",
    "MEASURES",
    "MODELS",
    "Measure",
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "UnknownParameterError",
    "algorithm_names",
    "family_names",
    "get_algorithm",
    "get_family",
    "get_measure",
    "measure_names",
    "register_algorithm",
    "register_anonymous",
    "register_central",
    "register_graph_family",
    "register_identified",
    "register_measure",
    "register_randomized",
    "resolve",
]
