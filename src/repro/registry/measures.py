"""The measure registry: names → measurement objects.

A *measure* decides what one work unit actually measures.  The plugin
protocol is deliberately small::

    class MyMeasure(Measure):
        name = "my_measure"

        def measure(self, graph, run) -> dict:
            return {"extra": {"my_number": ...}}

``measure(graph, run)`` receives the built graph and an
:class:`AlgorithmRun` (selected edge set, round count, optional message
trace, the resolved algorithm, the spec) and returns a mapping of
overrides: keys that name :class:`~repro.engine.records.ResultRecord`
fields replace those fields, an ``"extra"`` mapping is merged into the
record's extras, and anything else lands in extras too.  The shared
build → run → record pipeline lives in :mod:`repro.engine.measures`;
measures that need full control of execution (the adversary
confrontation, the phase split) override :meth:`Measure.execute`
instead.

Built-ins — ``quality``, ``comparison``, ``adversary``,
``phase_split``, ``messages`` — are registered in
:mod:`repro.engine.measures`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge
from repro.registry.base import Registry, RegistryError, load_builtins

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.engine.records import ResultRecord
    from repro.engine.spec import JobSpec
    from repro.registry.algorithms import BoundAlgorithm
    from repro.runtime.trace import ExecutionTrace

__all__ = [
    "AlgorithmRun",
    "MEASURES",
    "Measure",
    "get_measure",
    "measure_names",
    "register_measure",
]


@dataclass(frozen=True)
class AlgorithmRun:
    """What one algorithm execution produced, as seen by a measure."""

    spec: "JobSpec"
    algorithm: "BoundAlgorithm"
    edge_set: frozenset[PortEdge]
    rounds: int
    trace: "ExecutionTrace | None" = None


class Measure:
    """Base class for registered measures.

    Subclasses set :attr:`name` and either implement :meth:`measure`
    (post-run overrides; the default pipeline handles graph building,
    algorithm resolution, feasibility checking, and record assembly) or
    override :meth:`execute` for full control.
    """

    #: Registry name; set by subclasses.
    name: str = ""
    #: The unit's graph family must build a LowerBoundInstance.
    requires_lower_bound: bool = False
    #: The default pipeline checks the output is an edge dominating set.
    check_feasible: bool = True
    #: Usable from declarative grids (``sweep --measure ...``); measures
    #: tied to special constructions opt out.
    grid_safe: bool = True
    #: Whether execution resolves the unit's algorithm name.  Measures
    #: that regenerate fixed artifacts (the figure reproductions) opt
    #: out, so their units need no registered algorithm.
    uses_algorithm: bool = True
    #: Scheduling hint consulted by the ``auto`` backend: ``""`` (no
    #: preference — calibrate as usual), ``"inline"`` (units are known
    #: to be cheap; skip the probe and stay serial), or ``"process"`` /
    #: ``"thread"`` (units are known to be expensive; fan out at once).
    #: A hint never changes results — records depend only on specs.
    preferred_backend: str = ""

    def needs_trace(self, spec: "JobSpec") -> bool:
        """Whether this unit must run with message tracing enabled."""
        return False

    def measure(
        self, graph: PortNumberedGraph, run: AlgorithmRun
    ) -> Mapping[str, Any]:
        """Post-run measurement: record-field overrides and extras."""
        return {}

    def execute(self, spec: "JobSpec", key: str) -> "ResultRecord":
        """Execute one work unit end to end (default shared pipeline)."""
        from repro.engine.measures import default_execute

        return default_execute(self, spec, key)


MEASURES: Registry[Measure] = Registry("measure", loader=load_builtins)


def register_measure(
    measure: "type[Measure] | Measure",
) -> "type[Measure] | Measure":
    """Register a :class:`Measure` subclass (decorator) or instance.

    Classes are instantiated with no arguments; ready-made instances
    register as-is, which is how parameterised measure families (one
    measure per paper figure, say) enrol each member under its own name.
    """
    if isinstance(measure, type) and issubclass(measure, Measure):
        if not measure.name:
            raise RegistryError(
                f"measure class {measure.__name__} must set a name"
            )
        MEASURES.register(measure.name, measure())
        return measure
    if isinstance(measure, Measure):
        if not measure.name:
            raise RegistryError(
                f"measure instance {measure!r} must set a name"
            )
        MEASURES.register(measure.name, measure)
        return measure
    raise RegistryError(
        f"register_measure expects a Measure subclass or instance, got "
        f"{measure!r}"
    )


def get_measure(name: str) -> Measure:
    return MEASURES.get(name)


def measure_names() -> tuple[str, ...]:
    return MEASURES.names()
