"""repro — reproduction of Suomela, "Distributed Algorithms for Edge
Dominating Sets" (PODC 2010).

The package implements the anonymous port-numbering model of computation,
a synchronous message-passing simulator, the paper's three tight
approximation algorithms (Theorems 3-5), both adversarial lower-bound
constructions (Theorems 1-2), and all supporting substrates (Petersen
2-factorisation, bipartite matching, exact solvers, covering maps).

Quickstart
----------
>>> import networkx as nx
>>> from repro import from_networkx, BoundedDegreeEDS, run_anonymous
>>> from repro import is_edge_dominating_set
>>> g = from_networkx(nx.petersen_graph())
>>> result = run_anonymous(g, BoundedDegreeEDS(max_degree=3))
>>> is_edge_dominating_set(g, result.edge_set())
True

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.algorithms import (
    BoundedDegreeEDS,
    DominatingTwoMatching,
    GreedyMaximalMatchingIds,
    PortOneEDS,
    RandomizedMaximalMatching,
    RegularOddEDS,
    three_approx_vertex_cover,
)
from repro.eds import (
    bounded_degree_ratio,
    is_edge_dominating_set,
    minimum_eds_size,
    minimum_edge_dominating_set,
    regular_ratio,
    two_approx_eds,
)
from repro.exceptions import (
    AlgorithmContractError,
    ConstructionError,
    CoveringMapError,
    FactorizationError,
    GraphValidationError,
    InconsistentOutputError,
    InvolutionError,
    NotRegularGraphError,
    NotSimpleGraphError,
    PortNumberingError,
    QuotientError,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)
from repro.lowerbounds import (
    AdversaryReport,
    LowerBoundInstance,
    build_even_lower_bound,
    build_odd_lower_bound,
    run_adversary,
)
from repro.matching import (
    eds_to_maximal_matching,
    greedy_maximal_matching,
    is_matching,
    is_maximal_matching,
    minimum_maximal_matching,
)
from repro.portgraph import (
    PortEdge,
    PortGraphBuilder,
    PortNumberedGraph,
    from_networkx,
    from_neighbour_orders,
    is_covering_map,
    quotient_by_partition,
    random_lift,
    to_networkx,
    to_simple_networkx,
    verify_covering_map,
)
from repro.runtime import (
    NodeProgram,
    RunResult,
    run_anonymous,
    run_identified,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "PortNumberedGraph",
    "PortGraphBuilder",
    "PortEdge",
    "from_networkx",
    "from_neighbour_orders",
    "to_networkx",
    "to_simple_networkx",
    "verify_covering_map",
    "is_covering_map",
    "quotient_by_partition",
    "random_lift",
    # runtime
    "NodeProgram",
    "RunResult",
    "run_anonymous",
    "run_identified",
    # the paper's algorithms (and subroutines / extensions)
    "PortOneEDS",
    "RegularOddEDS",
    "BoundedDegreeEDS",
    "DominatingTwoMatching",
    "three_approx_vertex_cover",
    "GreedyMaximalMatchingIds",
    "RandomizedMaximalMatching",
    # EDS / matching substrate
    "is_edge_dominating_set",
    "minimum_edge_dominating_set",
    "minimum_eds_size",
    "two_approx_eds",
    "regular_ratio",
    "bounded_degree_ratio",
    "is_matching",
    "is_maximal_matching",
    "greedy_maximal_matching",
    "minimum_maximal_matching",
    "eds_to_maximal_matching",
    # lower bounds
    "LowerBoundInstance",
    "build_even_lower_bound",
    "build_odd_lower_bound",
    "run_adversary",
    "AdversaryReport",
    # exceptions
    "ReproError",
    "GraphValidationError",
    "InvolutionError",
    "PortNumberingError",
    "NotSimpleGraphError",
    "NotRegularGraphError",
    "CoveringMapError",
    "QuotientError",
    "FactorizationError",
    "SimulationError",
    "RoundLimitExceeded",
    "InconsistentOutputError",
    "AlgorithmContractError",
    "ConstructionError",
]
