"""repro.plugins — entry-point discovery for third-party packages.

Any installed distribution can contribute algorithms, graph families,
and measures to the registry catalogue without touching this repo: it
declares an entry point in the ``repro.plugins`` group, and the
registry's lazy built-in loader discovers and loads it on the first
name lookup in any process — the CLI, the API façade, and (crucially)
freshly spawned ``ProcessBackend`` workers all see the same catalogue.

See :mod:`repro.plugins.discovery` for the loading contract (ordering,
duplicate rejection, error isolation) and the README's "Writing a
plugin package" walkthrough for a complete example.
"""

from repro.plugins.discovery import (
    PLUGIN_GROUP,
    PluginRecord,
    format_plugins,
    load_plugins,
    plugin_records,
)

__all__ = [
    "PLUGIN_GROUP",
    "PluginRecord",
    "format_plugins",
    "load_plugins",
    "plugin_records",
]
