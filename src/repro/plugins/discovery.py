"""Entry-point plugin discovery (``importlib.metadata``).

A plugin package ships an entry point in the ``repro.plugins`` group::

    # pyproject.toml of a third-party distribution
    [project.entry-points."repro.plugins"]
    my_plugin = "my_package.eds_plugin"

The entry point names either a module (imported for its registration
side effects, exactly like the built-ins) or a callable (imported and
then called with no arguments).  Registration itself goes through the
public :mod:`repro.registry` decorators, so a plugin algorithm is
indistinguishable from a built-in: addressable from work units, cached,
spawn-safe (its ``origin`` module rides along in worker payloads), and
listed by the CLI.

The loading contract:

* **Load order** is deterministic: entry points load sorted by
  ``(name, value)``, never in filesystem-discovery order.
* **Duplicate names are rejected**: if two distributions claim the same
  entry-point name, the first (in load order) wins and the rest are
  skipped with a logged warning — mirroring the registry's own
  duplicate policy.
* **Errors are isolated**: a plugin that fails to import (or whose
  registrations collide with existing names) is logged and skipped;
  it can never take down the CLI or an engine run.  The failure stays
  visible in :func:`plugin_records` / ``repro-eds plugins``.
* **Idempotent per process**: :func:`load_plugins` runs the scan once
  and caches the outcome; ``reload=True`` (tests, long-lived sessions
  installing packages on the fly) rescans from scratch.

Discovery is hooked into :func:`repro.registry.base.load_builtins`, so
it happens lazily on the first registry lookup *in every process*.
That is what makes plugins spawn-safe end to end: a fresh
``ProcessBackend`` worker interpreter re-runs the scan the moment it
resolves its first work-unit name, and the worker payloads additionally
carry each plugin's registering module for direct re-import.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from importlib import metadata

from repro.analysis.report import format_table

__all__ = [
    "PLUGIN_GROUP",
    "PluginRecord",
    "format_plugins",
    "load_plugins",
    "plugin_records",
]

#: The entry-point group third-party distributions register under.
PLUGIN_GROUP = "repro.plugins"

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PluginRecord:
    """The outcome of loading one discovered entry point."""

    name: str
    value: str  # the entry point target, e.g. "my_package.eds_plugin"
    error: str = ""  # empty on success

    @property
    def loaded(self) -> bool:
        return not self.error

    @property
    def status(self) -> str:
        return "loaded" if self.loaded else f"skipped ({self.error})"


#: Cached scan outcomes, one per entry-point group.
_records: dict[str, tuple[PluginRecord, ...]] = {}
_loading = False


def _scan(group: str) -> tuple[PluginRecord, ...]:
    try:
        entry_points = sorted(
            metadata.entry_points(group=group),
            key=lambda ep: (ep.name, ep.value),
        )
    except Exception as exc:  # pragma: no cover - defensive: bad metadata
        logger.warning("plugin discovery failed: %s", exc)
        return ()
    records: list[PluginRecord] = []
    seen: set[str] = set()
    for entry_point in entry_points:
        if entry_point.name in seen:
            records.append(PluginRecord(
                entry_point.name, entry_point.value,
                error="duplicate plugin name",
            ))
            logger.warning(
                "plugin %r (%s) skipped: duplicate plugin name",
                entry_point.name, entry_point.value,
            )
            continue
        seen.add(entry_point.name)
        try:
            target = entry_point.load()
            # A callable target is a registration hook; a module target
            # registered during the import itself.
            if callable(target):
                target()
        except Exception as exc:
            records.append(PluginRecord(
                entry_point.name, entry_point.value,
                error=f"{type(exc).__name__}: {exc}",
            ))
            logger.warning(
                "plugin %r (%s) failed to load and was skipped: %s",
                entry_point.name, entry_point.value, exc,
            )
            continue
        records.append(PluginRecord(entry_point.name, entry_point.value))
    return tuple(records)


def load_plugins(
    *, group: str = PLUGIN_GROUP, reload: bool = False
) -> tuple[PluginRecord, ...]:
    """Discover and load ``repro.plugins`` entry points (once).

    Returns one :class:`PluginRecord` per discovered entry point, in
    load order.  Safe to call from anywhere — including from inside the
    registry's lazy loader while a registration is in flight — and
    guaranteed never to raise for a misbehaving plugin.
    """
    global _loading
    if _loading:
        return ()
    if group in _records and not reload:
        return _records[group]
    _loading = True
    try:
        _records[group] = _scan(group)
    finally:
        _loading = False
    return _records[group]


def plugin_records() -> tuple[PluginRecord, ...]:
    """The records of the (possibly not yet run) plugin scan."""
    return load_plugins()


def format_plugins(records: "tuple[PluginRecord, ...] | None" = None) -> str:
    """Render plugin records as the ``repro-eds plugins`` table."""
    records = plugin_records() if records is None else records
    if not records:
        return (
            f"no plugins discovered (entry-point group {PLUGIN_GROUP!r})"
        )
    return format_table(
        ["plugin", "target", "status"],
        [(r.name, r.value, r.status) for r in records],
        title=f"entry-point plugins ({PLUGIN_GROUP})",
    )
