"""Related-work comparison baselines for edge dominating sets.

The paper's bounds only mean something next to what other distributed
approaches achieve on the same instances.  This package implements a
family of comparison algorithms from the related literature against the
same :mod:`repro.runtime` simulator and registers them through
:mod:`repro.registry`, so they drop straight into any sweep, scenario,
or ``repro-eds compare`` run:

* ``greedy_mds_line`` (:mod:`repro.baselines.greedy_mds`) — the classic
  distributed greedy minimum-dominating-set heuristic run on the line
  graph ``L(G)`` (EDS of G = dominating set of L(G)); identified model.
  The span-greedy rule is the workhorse of Alipour's MDS survey
  (arXiv:2103.08061).
* ``lp_rounding`` (:mod:`repro.baselines.lp_rounding`) — an LP-based
  fractional-then-round approximation in the style of the survey's
  LP algorithms: a multiplicative-increase fractional solve of the
  dominating-set LP on ``L(G)`` followed by randomised rounding and a
  deterministic fix-up; anonymous + private coins.
* ``forest_dds`` (:mod:`repro.baselines.forest`) — an adaptation of the
  bounded-arboricity dominating-set approach of Dory–Ghaffari–Ilchi
  (arXiv:2206.05174): peel ``L(G)`` into layers (an H-partition /
  forest-decomposition step), then charge every edge to the top of its
  out-neighbourhood; identified model.
* ``central_optimal`` (:mod:`repro.baselines.reference`) — the
  sequential exact optimum as a registered algorithm, so every
  comparison table has a ratio-1.0 reference row.

All four expose the same ``ratio`` / ``rounds`` / ``messages`` measures
as the paper's algorithms — a baseline work unit is just a
:class:`~repro.engine.spec.JobSpec` naming a different algorithm.
Importing this package registers every baseline (the modules register
where they define, like :mod:`repro.algorithms`); the registry's
built-in loader imports it lazily via :mod:`repro.registry.builtins`.
"""

from repro.baselines.forest import ForestDecompositionEDS
from repro.baselines.greedy_mds import GreedyLineMDS
from repro.baselines.lp_rounding import LPRoundingEDS
from repro.baselines.reference import optimal_eds_reference

__all__ = [
    "BASELINE_ALGORITHMS",
    "ForestDecompositionEDS",
    "GreedyLineMDS",
    "LPRoundingEDS",
    "optimal_eds_reference",
]

#: The registered names this package contributes, in catalogue order.
BASELINE_ALGORITHMS = (
    "greedy_mds_line",
    "lp_rounding",
    "forest_dds",
    "central_optimal",
)
