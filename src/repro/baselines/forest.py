"""Baseline: forest-decomposition dominating set, adapted to EDS.

Dory–Ghaffari–Ilchi (arXiv:2206.05174) get near-optimal distributed
dominating sets in bounded-arboricity graphs from a two-step recipe:
decompose the graph into few forests (an H-partition: repeatedly peel
low-degree vertices into layers, which also yields an acyclic
orientation of bounded out-degree), then resolve every coverage
obligation *along the orientation* — each vertex charges itself to its
out-neighbourhood, whose bounded size bounds the approximation.

This module adapts that recipe to edge dominating sets by running it on
the line graph ``L(G)`` (EDS of G = dominating set of L(G); when ``G``
has max degree Δ, ``L(G)`` has arboricity at most Δ):

1. **Peeling.**  In round ``r`` every still-unpeeled edge whose
   remaining L(G)-degree is at most ``4·a·r`` peels into layer ``r``
   (``a`` is the arboricity promise).  With an honest promise at least
   half of the remaining edges peel per round, and the linear threshold
   schedule guarantees termination even under a dishonest one.  The
   layers orient ``L(G)``: from low ``(layer, id)`` to high.

2. **Selection.**  Every edge ``e`` nominates the *top* of its closed
   out-neighbourhood — the maximum of ``N[e]`` under ``(layer, id)``,
   i.e. the last of its neighbours to peel — and the dominating set is
   exactly the nominated edges.  Every edge is dominated by its own
   nominee, and charging along the orientation keeps the selection
   sparse on forests and other low-arboricity inputs.

The simulation never materialises ``L(G)``: a node manages its
incident edges, peel decisions are computed identically at both
endpoints from exchanged uncovered counts, and the nomination only
needs each neighbour's *maximum* ``(layer, id)`` — one value per node,
piggybacked on every status message until everyone has heard it.
Nodes finish peeling at different times, so the status / done / flag
hand-off is asynchronous; a node halts once it knows, for each incident
edge, whether either endpoint nominated it.
"""

from __future__ import annotations

from typing import Mapping

from repro.runtime.algorithm import Message, NodeProgram

__all__ = ["ForestDecompositionEDS"]

#: A (layer, edge id) pair: the orientation key of one L(G) vertex.
_Key = tuple[int, tuple[int, int]]


class ForestDecompositionEDS(NodeProgram):
    """Identified-model forest-decomposition EDS (DGI-style adaptation).

    Use with :func:`repro.runtime.run_identified`::

        run_identified(graph, lambda d, uid:
                       ForestDecompositionEDS(d, uid, arboricity=2))
    """

    def __init__(self, degree: int, uid: int, arboricity: int) -> None:
        super().__init__(degree)
        self.uid = uid
        self.arboricity = max(1, arboricity)
        self.neighbour_id: dict[int, int] = {}
        self.layer: dict[int, int | None] = {i: None for i in self._ports()}
        self.my_done: _Key | None = None
        self.done_from: dict[int, _Key] = {}
        self.my_flags: dict[int, bool] = {}
        self.flags_sent = False
        self.flag_from: dict[int, bool] = {}

    def _ports(self) -> range:
        return range(1, self.degree + 1)

    def _edge_id(self, port: int) -> tuple[int, int]:
        other = self.neighbour_id[port]
        return (min(self.uid, other), max(self.uid, other))

    def _unpeeled(self) -> list[int]:
        return [i for i in self._ports() if self.layer[i] is None]

    def send(self, rnd: int) -> Mapping[int, Message]:
        if rnd == 0:
            return {i: ("id", self.uid) for i in self._ports()}
        if self.flags_sent:
            return {}
        if self.my_done is not None and len(self.done_from) == self.degree:
            # Nominate the top of each edge's closed neighbourhood and
            # tell each neighbour whether any edge here nominated theirs.
            nominees = {
                j: max(self.my_done, self.done_from[j]) for j in self._ports()
            }
            self.my_flags = {
                i: any(
                    nominees[j] == (self.layer[i], self._edge_id(i))
                    for j in self._ports()
                )
                for i in self._ports()
            }
            self.flags_sent = True
            return {
                i: ("flag", self.my_flags[i], self.my_done)
                for i in self._ports()
            }
        count = len(self._unpeeled())
        return {i: ("st", count, self.my_done) for i in self._ports()}

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        if rnd == 0:
            for i, (_, uid) in inbox.items():
                self.neighbour_id[i] = uid
            return
        counts: dict[int, int] = {}
        for i, message in inbox.items():
            if message[0] == "st":
                counts[i] = message[1]
                if message[2] is not None:
                    self.done_from[i] = message[2]
            elif message[0] == "flag":
                self.flag_from[i] = message[1]
                self.done_from[i] = message[2]

        unpeeled = self._unpeeled()
        if unpeeled:
            mine = len(unpeeled)
            threshold = 4 * self.arboricity * rnd
            for i in unpeeled:
                if i in counts and mine + counts[i] - 2 <= threshold:
                    self.layer[i] = rnd
            if not self._unpeeled():
                self.my_done = max(
                    (self.layer[i], self._edge_id(i)) for i in self._ports()
                )

        if self.flags_sent and len(self.flag_from) == self.degree:
            self.halt(frozenset(
                i for i in self._ports()
                if self.my_flags[i] or self.flag_from[i]
            ))


# Registered where it is defined: work units reach this program by name.
from repro.registry.algorithms import register_identified  # noqa: E402


def _forest_factory(graph, arboricity=None):
    graph.require_simple()
    # L(G) has arboricity <= Δ; the promise defaults to that bound.
    promise = (
        arboricity if arboricity is not None else max(graph.max_degree, 1)
    )
    return lambda degree, uid: ForestDecompositionEDS(degree, uid, promise)


register_identified(
    "forest_dds",
    _forest_factory,
    params=("arboricity",),
    description=(
        "forest-decomposition dominating set on the line graph "
        "(Dory–Ghaffari–Ilchi adaptation): peel into layers, then "
        "charge each edge to the top of its out-neighbourhood"
    ),
)
