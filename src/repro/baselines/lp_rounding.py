"""Baseline: fractional-then-round EDS approximation (randomised model).

The LP-based algorithms in Alipour's MDS survey (arXiv:2103.08061)
follow a two-act script: approximately solve the dominating-set LP
relaxation with a few rounds of multiplicative updates, then round the
fractional solution randomly and patch the constraints the coin flips
missed.  This module plays that script on the line graph ``L(G)``,
where a dominating set is exactly an edge dominating set of ``G``.

Act I — fractional solve.  Every edge ``e`` carries a variable
``x_e``, initialised to ``1/(2Δ)`` (``Δ`` is the max-degree promise, so
closed L(G)-neighbourhoods have at most ``2Δ - 1`` members).  For
``T = ⌈log2(2Δ)⌉`` phases, every *violated* constraint — an edge whose
closed neighbourhood sums below 1 — doubles all of its variables
(capped at 1).  A violated constraint doubles its own variable too, so
after ``T`` phases every constraint is satisfied; the multiplicative
schedule keeps the fractional objective within an ``O(log Δ)`` factor
of the LP optimum.  All arithmetic is exact (:class:`~fractions.
Fraction`), so both endpoints of an edge always agree on its value.

The update rule is the shared covering-LP loop of
:mod:`repro.bounds.fractional` run by message passing: an edge doubles
exactly when a violated closed neighbourhood ``N[f]`` contains it,
which an endpoint detects as "my own or a neighbour's constraint is
violated".  :func:`repro.bounds.fractional.solve_covering_lp` on
:func:`~repro.bounds.fractional.line_graph_covering_instance` produces
the same values variable-for-variable (the test suite proves it), and
the certified-bounds subsystem runs the identical loop on the vertex
cover LP for its dual certificates.

Act II — randomised rounding.  Each edge enters the candidate set with
probability ``min(1, x_e · ln(2Δ))``; the two endpoints flip
independently and OR their coins (one exchanged message), which keeps
the model anonymous — no identifiers, only private coins.  A final
deterministic fix-up adds every edge whose closed neighbourhood the
sampling left empty, so the output is always a feasible EDS.

Every node halts after exactly ``2T + 2`` rounds, which makes the
round count a closed form of the degree promise — the comparison
tables show it next to the paper's ``O(Δ²)`` bounds.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction
from typing import Mapping

from repro.bounds.fractional import doubling_phases
from repro.runtime.algorithm import Message, NodeProgram

__all__ = ["LPRoundingEDS", "doubling_phases"]


class LPRoundingEDS(NodeProgram):
    """Anonymous + private-coins LP rounding for edge dominating sets.

    Use with :func:`repro.runtime.randomized.run_randomized`::

        run_randomized(graph, lambda d, rng: LPRoundingEDS(d, rng, delta=4))
    """

    def __init__(self, degree: int, rng: random.Random, delta: int) -> None:
        super().__init__(degree)
        self.rng = rng
        self.delta = max(1, delta)
        #: |N[e]| in L(G) is at most 2Δ - 1 under the degree promise.
        self.nbhd_cap = max(1, 2 * self.delta - 1)
        self.phases = doubling_phases(self.delta)
        start = Fraction(1, 2 * self.delta)
        self.x: dict[int, Fraction] = {i: start for i in self._ports()}
        self.violated: dict[int, bool] = {}
        self.sampled: dict[int, bool] = {}
        self.flips: dict[int, bool] = {}

    def _ports(self) -> range:
        return range(1, self.degree + 1)

    def send(self, rnd: int) -> Mapping[int, Message]:
        if rnd < 2 * self.phases:
            if rnd % 2 == 0:
                total = sum(self.x.values())
                return {i: ("sum", total) for i in self._ports()}
            flag = any(self.violated.values())
            return {i: ("viol", flag) for i in self._ports()}
        if rnd == 2 * self.phases:
            # Rounding: OR of two endpoint coins hits min(1, x·ln(2Δ)).
            scale = max(1.0, math.log(self.nbhd_cap + 1))
            self.flips = {}
            for i in self._ports():
                target = min(1.0, float(self.x[i]) * scale)
                per_endpoint = 1.0 - math.sqrt(1.0 - target)
                self.flips[i] = self.rng.random() < per_endpoint
            return {i: ("flip", self.flips[i]) for i in self._ports()}
        return {i: ("dom", any(self.sampled.values())) for i in self._ports()}

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        if rnd < 2 * self.phases:
            if rnd % 2 == 0:
                mine = sum(self.x.values())
                self.violated = {
                    i: mine + inbox[i][1] - self.x[i] < 1
                    for i in self._ports()
                }
            else:
                flag = any(self.violated.values())
                for i in self._ports():
                    if flag or inbox[i] == ("viol", True):
                        self.x[i] = min(Fraction(1), 2 * self.x[i])
            return
        if rnd == 2 * self.phases:
            self.sampled = {
                i: self.flips[i] or inbox[i] == ("flip", True)
                for i in self._ports()
            }
            return
        # Fix-up: an edge whose closed neighbourhood the sampling missed
        # joins by itself (both endpoints see the same two flags).
        mine = any(self.sampled.values())
        output = set()
        for i in self._ports():
            dominated = mine or inbox[i] == ("dom", True)
            if self.sampled[i] or not dominated:
                output.add(i)
        self.halt(frozenset(output))


# Registered where it is defined: work units reach this program by name.
# The engine hands every unit a content-hash-derived rng_seed, so the
# randomised rounding is cacheable and byte-reproducible like any
# deterministic unit.
from repro.registry.algorithms import register_randomized  # noqa: E402


def _lp_rounding_builder(graph, delta=None):
    graph.require_simple()
    promise = delta if delta is not None else max(graph.max_degree, 1)
    return lambda degree, rng: LPRoundingEDS(degree, rng, promise)


register_randomized(
    "lp_rounding",
    _lp_rounding_builder,
    params=("delta",),
    description=(
        "fractional dominating-set LP on the line graph solved by "
        "multiplicative updates, then randomised rounding + fix-up "
        "(Alipour-survey LP baseline); 2⌈log2(2Δ)⌉ + 2 rounds"
    ),
)
