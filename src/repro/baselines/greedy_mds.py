"""Baseline: distributed greedy MDS on the line graph (identified model).

An edge dominating set of ``G`` is exactly a dominating set of the line
graph ``L(G)`` (paper §1.1), so the oldest dominating-set heuristic in
the distributed literature — span greedy, the starting point of
Alipour's MDS survey (arXiv:2103.08061) — becomes an EDS baseline by
running it on ``L(G)``.  The *span* of an L(G)-vertex (an edge of G) is
the number of still-undominated L(G)-vertices in its closed
neighbourhood; greedy repeatedly takes a vertex of locally maximum
span.

The simulation never materialises ``L(G)``: each node of ``G`` manages
its incident edges.  An edge ``e = {u, w}`` is identified by the pair
of its endpoint identifiers, its span is computable from the two
endpoints' uncovered-incident-edge counts (the only shared edge is
``e`` itself), and the local-maximum rule needs one more exchange — the
best competing candidate on each side.  Ties break by edge identifier,
which makes ``(span, id)`` a total order: no two adjacent edges can
both win a phase, and the globally best candidate always wins, so the
number of phases is at most ``|E|`` (in practice a few).

Phases of three rounds after one identifier-exchange round:

1. *count* — every node tells its neighbours how many of its incident
   edges are still uncovered; both endpoints of ``e`` can now compute
   ``span(e)``.
2. *bid* — for each uncovered edge, each endpoint sends the strongest
   ``(span, id)`` among its *other* candidate edges; ``e`` joins the
   dominating set iff it beats both sides' best competitors.
3. *cover* — endpoints of joined edges announce the join; every edge
   adjacent to a joined edge (and the edge itself) becomes covered.
   A node whose incident edges are all covered halts with its selected
   ports.

All decisions are made identically at both endpoints from the same
data, so the announced port sets satisfy the §2.2 output-consistency
requirement, and messages travel only over uncovered edges — the
protocol is ``strict_delivery``-safe.
"""

from __future__ import annotations

from typing import Mapping

from repro.runtime.algorithm import Message, NodeProgram

__all__ = ["GreedyLineMDS"]

_PHASE_LEN = 3  # count, bid, cover

#: (span, edge id) pairs order candidates; None means "no competitor".
_Key = tuple[int, tuple[int, int]]


class GreedyLineMDS(NodeProgram):
    """Identified-model span-greedy dominating set on the line graph.

    Use with :func:`repro.runtime.run_identified`::

        run_identified(graph, GreedyLineMDS)
    """

    def __init__(self, degree: int, uid: int) -> None:
        super().__init__(degree)
        self.uid = uid
        self.neighbour_id: dict[int, int] = {}
        self.covered: dict[int, bool] = {i: False for i in self._ports()}
        self.selected: set[int] = set()
        self.spans: dict[int, int] = {}
        self.joins: dict[int, bool] = {}

    def _ports(self) -> range:
        return range(1, self.degree + 1)

    def _edge_id(self, port: int) -> tuple[int, int]:
        other = self.neighbour_id[port]
        return (min(self.uid, other), max(self.uid, other))

    def _uncovered(self) -> list[int]:
        return [i for i in self._ports() if not self.covered[i]]

    def send(self, rnd: int) -> Mapping[int, Message]:
        if rnd == 0:
            return {i: ("id", self.uid) for i in self._ports()}
        phase_round = (rnd - 1) % _PHASE_LEN
        uncovered = self._uncovered()
        if phase_round == 0:
            count = len(uncovered)
            return {i: ("cnt", count) for i in uncovered}
        if phase_round == 1:
            bids: dict[int, Message] = {}
            for i in uncovered:
                others = [
                    (self.spans[j], self._edge_id(j))
                    for j in uncovered
                    if j != i
                ]
                bids[i] = ("bid", max(others) if others else None)
            return bids
        # cover round: only a node with a joined edge has news to share.
        if any(self.joins.values()):
            return {i: ("cov", True) for i in uncovered}
        return {}

    def receive(self, rnd: int, inbox: Mapping[int, Message]) -> None:
        if rnd == 0:
            for i, (_, uid) in inbox.items():
                self.neighbour_id[i] = uid
            return
        phase_round = (rnd - 1) % _PHASE_LEN
        if phase_round == 0:
            # span(e) = my uncovered count + theirs - (e counted twice)
            mine = len(self._uncovered())
            self.spans = {}
            for i in self._uncovered():
                message = inbox.get(i)
                if message is not None:
                    self.spans[i] = mine + message[1] - 1
        elif phase_round == 1:
            self.joins = {}
            for i in self._uncovered():
                if i not in self.spans:
                    continue
                key: _Key = (self.spans[i], self._edge_id(i))
                others = [
                    (self.spans[j], self._edge_id(j))
                    for j in self._uncovered()
                    if j != i and j in self.spans
                ]
                message = inbox.get(i)
                their_best = message[1] if message is not None else None
                wins = all(key > other for other in others)
                if wins and (their_best is None or key > their_best):
                    self.joins[i] = True
        else:
            any_joined = any(self.joins.values())
            for i in list(self._uncovered()):
                if self.joins.get(i):
                    self.selected.add(i)
                if any_joined or inbox.get(i) == ("cov", True):
                    self.covered[i] = True
            self.joins = {}
            if not self._uncovered():
                self.halt(frozenset(self.selected))


# Registered where it is defined: work units reach this program by name.
from repro.registry.algorithms import register_identified  # noqa: E402


def _greedy_line_factory(graph):
    graph.require_simple()
    return GreedyLineMDS


register_identified(
    "greedy_mds_line",
    _greedy_line_factory,
    description=(
        "span-greedy dominating set on the line graph (Alipour MDS "
        "survey baseline); identified model, <= |E| phases"
    ),
)
