"""Baseline: the sequential exact optimum as a registered algorithm.

Comparison tables need a ratio-1.0 anchor row.  The exact solver
(:func:`repro.eds.exact.minimum_edge_dominating_set`, branch-and-bound
over minimum maximal matchings) already exists as the *measurement*
optimum; registering it as a ``central``-model *algorithm* lets it run
head-to-head inside the same sweeps — zero rounds, zero messages,
solution size equal to the optimum by construction.

Exponential time: keep the instances at comparison scale (the
``comparison`` scenario stays within the engine's default
``exact_edge_limit`` of 48 edges).
"""

from __future__ import annotations

from repro.eds.exact import minimum_edge_dominating_set
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge
from repro.registry.algorithms import register_central

__all__ = ["optimal_eds_reference"]


def optimal_eds_reference(graph: PortNumberedGraph) -> frozenset[PortEdge]:
    """An optimal edge dominating set (sequential branch-and-bound)."""
    return minimum_edge_dominating_set(graph)


register_central(
    "central_optimal",
    optimal_eds_reference,
    description=(
        "sequential exact optimum (branch-and-bound minimum maximal "
        "matching); the ratio-1.0 reference row of comparison tables"
    ),
)
