"""Weighted edge dominating sets (paper §1.2 context).

The paper's §1.2 recalls that *weighted* minimum EDS behaves differently
from the unweighted problem: the matching/EDS equivalence breaks (a
minimum-weight EDS need not be a matching), and the best known
poly-time factor is 2 (Fujito-Nagamochi [12], whose primal-dual LP
machinery is out of scope here — see DESIGN.md §1.3).  This module
provides the exact and greedy baselines the evaluation harness needs to
talk about weighted instances at all:

* :func:`minimum_weight_eds` — exact branch and bound over *arbitrary*
  edge subsets (not just matchings);
* :func:`greedy_weight_eds` — a simple feasible heuristic (no guarantee)
  used as a comparison point in tests;
* with unit weights the exact solver must agree with the unweighted
  γ'(G), which the tests assert.
"""

from __future__ import annotations

from typing import Mapping

from repro.eds.properties import is_edge_dominating_set
from repro.exceptions import AlgorithmContractError
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = ["minimum_weight_eds", "greedy_weight_eds", "total_weight"]

Weights = Mapping[PortEdge, float]

_DEFAULT_LIMIT = 2_000_000


def total_weight(edges, weights: Weights) -> float:
    """The summed weight of an edge set."""
    return sum(weights[e] for e in edges)


def _validate_weights(graph: PortNumberedGraph, weights: Weights) -> None:
    for e in graph.edges:
        w = weights.get(e)
        if w is None:
            raise AlgorithmContractError(f"no weight for edge {e!r}")
        if w <= 0:
            raise AlgorithmContractError(
                f"weights must be positive; edge {e!r} has {w}"
            )


def minimum_weight_eds(
    graph: PortNumberedGraph,
    weights: Weights,
    *,
    node_limit: int = _DEFAULT_LIMIT,
) -> frozenset[PortEdge]:
    """An exact minimum-weight edge dominating set.

    Branch and bound over minimal dominating sets: the first undominated
    edge must be dominated by one of its closed neighbours, and with
    positive weights some minimum solution is minimal, so branching over
    those candidates is exhaustive.  Exponential worst case; intended
    for the small instances in tests and experiments.
    """
    graph.require_simple()
    _validate_weights(graph, weights)
    edges = graph.edges
    if not edges:
        return frozenset()

    incident: dict[Node, list[PortEdge]] = {v: [] for v in graph.nodes}
    for e in edges:
        incident[e.u].append(e)
        if e.u != e.v:
            incident[e.v].append(e)
    candidates: dict[PortEdge, tuple[PortEdge, ...]] = {}
    for e in edges:
        seen: dict[PortEdge, None] = {e: None}
        for endpoint in (e.u, e.v):
            for other in incident[endpoint]:
                seen.setdefault(other, None)
        candidates[e] = tuple(
            sorted(seen, key=lambda f: (weights[f], repr(f)))
        )

    greedy = greedy_weight_eds(graph, weights)
    best: frozenset[PortEdge] = greedy
    best_weight = total_weight(greedy, weights)
    explored = 0

    def undominated(covered: set[Node], chosen: set[PortEdge]):
        for e in edges:
            if e in chosen:
                continue
            if e.u not in covered and e.v not in covered:
                return e
        return None

    def recurse(
        chosen: set[PortEdge], covered: set[Node], weight: float
    ) -> None:
        nonlocal best, best_weight, explored
        explored += 1
        if explored > node_limit:
            raise RuntimeError(
                f"minimum_weight_eds exceeded {node_limit} search nodes"
            )
        if weight >= best_weight:
            return
        target = undominated(covered, chosen)
        if target is None:
            best = frozenset(chosen)
            best_weight = weight
            return
        for f in candidates[target]:
            if f in chosen:
                continue
            chosen.add(f)
            added_u = f.u not in covered
            added_v = f.v not in covered
            covered.add(f.u)
            covered.add(f.v)
            recurse(chosen, covered, weight + weights[f])
            chosen.discard(f)
            if added_u:
                covered.discard(f.u)
            if added_v:
                covered.discard(f.v)

    recurse(set(), set(), 0.0)
    assert is_edge_dominating_set(graph, best)
    return best


def greedy_weight_eds(
    graph: PortNumberedGraph, weights: Weights
) -> frozenset[PortEdge]:
    """A feasible weighted heuristic: repeatedly dominate the first
    undominated edge with the cheapest edge in its closed neighbourhood.

    No approximation guarantee (the §1.2 2-approximation of [12] needs
    LP machinery); used as a baseline and as the exact solver's initial
    incumbent.
    """
    graph.require_simple()
    _validate_weights(graph, weights)
    chosen: set[PortEdge] = set()
    covered: set[Node] = set()
    for e in graph.edges:
        if e in chosen or e.u in covered or e.v in covered:
            continue
        cheapest = min(
            (
                f
                for f in graph.edges
                if f.endpoints & e.endpoints or f == e
            ),
            key=lambda f: (weights[f], repr(f)),
        )
        chosen.add(cheapest)
        covered |= cheapest.endpoints
    assert is_edge_dominating_set(graph, chosen)
    return frozenset(chosen)
