"""Edge dominating set substrate: definitions, exact solvers, bounds."""

from repro.eds.bounds import (
    bounded_degree_ratio,
    eds_lower_bound,
    maximum_matching_size,
    regular_ratio,
)
from repro.eds.exact import (
    brute_force_minimum_eds_size,
    minimum_eds_size,
    minimum_edge_dominating_set,
)
from repro.eds.greedy import two_approx_eds
from repro.eds.linegraph import (
    is_claw_free,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
    line_graph_adjacency,
)
from repro.eds.properties import (
    dominated_edges,
    dominates,
    domination_deficiency,
    is_edge_dominating_set,
    undominated_edges,
)
from repro.eds.weighted import (
    greedy_weight_eds,
    minimum_weight_eds,
    total_weight,
)

__all__ = [
    "line_graph_adjacency",
    "is_claw_free",
    "is_dominating_set",
    "is_independent_set",
    "is_maximal_independent_set",
    "dominates",
    "dominated_edges",
    "undominated_edges",
    "is_edge_dominating_set",
    "domination_deficiency",
    "minimum_edge_dominating_set",
    "minimum_eds_size",
    "brute_force_minimum_eds_size",
    "two_approx_eds",
    "regular_ratio",
    "bounded_degree_ratio",
    "maximum_matching_size",
    "eds_lower_bound",
    "minimum_weight_eds",
    "greedy_weight_eds",
    "total_weight",
]
