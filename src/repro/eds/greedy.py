"""Centralised 2-approximation for minimum edge dominating set.

Paper §1.2: any maximal matching is a 2-approximation of a minimum edge
dominating set (each optimal edge can "absorb" at most two matching
edges).  This is the classical sequential baseline against which the
distributed algorithms are compared.
"""

from __future__ import annotations

from repro.matching.greedy import greedy_maximal_matching
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge

__all__ = ["two_approx_eds"]


def two_approx_eds(graph: PortNumberedGraph) -> frozenset[PortEdge]:
    """A 2-approximate edge dominating set (a greedy maximal matching)."""
    graph.require_simple()
    return greedy_maximal_matching(graph)
