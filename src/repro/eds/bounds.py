"""The tight approximation ratios of paper Table 1 and poly-time lower
bounds on the optimum used by the evaluation harness.

Table 1 (all ratios are tight — matching upper and lower bounds):

* d-regular graphs, odd  d:  4 - 6/(d+1)   (Theorems 2 and 4), O(d^2) time
* d-regular graphs, even d:  4 - 2/d       (Theorems 1 and 3), O(1) time
* max degree 1:              1             (trivial)
* max degree Δ >= 2:         4 - 1/k where k = floor(Δ/2)
                             (Corollary 1 and Theorem 5), O(Δ^2) time

The bounded-degree entry is written in the paper as 4 - 2/(Δ-1) for odd Δ
and 4 - 2/Δ for even Δ; both equal 4 - 1/k with k = floor(Δ/2).
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx

from repro.exceptions import AlgorithmContractError
from repro.portgraph.convert import to_simple_networkx
from repro.portgraph.graph import PortNumberedGraph

__all__ = [
    "regular_ratio",
    "bounded_degree_ratio",
    "maximum_matching_nodes",
    "maximum_matching_size",
    "eds_lower_bound",
    "eds_lower_bound_from_nu",
]


def regular_ratio(d: int) -> Fraction:
    """The tight ratio for d-regular graphs (Table 1 rows 1-2).

    ``4 - 6/(d+1)`` for odd d; ``4 - 2/d`` for even d.  For ``d = 1`` the
    formula gives 1, matching the trivial optimality of taking a perfect
    matching's every edge.
    """
    if d < 1:
        raise AlgorithmContractError(f"degree must be >= 1, got {d}")
    if d % 2 == 1:
        return Fraction(4) - Fraction(6, d + 1)
    return Fraction(4) - Fraction(2, d)


def bounded_degree_ratio(delta: int) -> Fraction:
    """The tight ratio for graphs of maximum degree Δ (Table 1 rows 3-5).

    1 for ``Δ = 1``; otherwise ``4 - 1/k`` with ``k = floor(Δ/2)``, i.e.
    ``4 - 2/(Δ-1)`` for odd Δ and ``4 - 2/Δ`` for even Δ.
    """
    if delta < 1:
        raise AlgorithmContractError(f"max degree must be >= 1, got {delta}")
    if delta == 1:
        return Fraction(1)
    k = delta // 2
    return Fraction(4) - Fraction(1, k)


def maximum_matching_nodes(
    graph: PortNumberedGraph,
) -> frozenset[frozenset]:
    """A maximum matching as endpoint pairs, memoised per compiled graph.

    The blossom run is the single most expensive derived quantity the
    harness computes (minutes at n = 16384), so its output lives in the
    compiled graph's derived-table memo alongside the flat adjacency
    lists: repeated measures, bound engines, and tests touching the same
    graph object run networkx at most once.
    """
    graph.require_simple()
    memo = graph.compiled().memo
    try:
        return memo["max_matching_nodes"]
    except KeyError:
        pass
    nx_graph = to_simple_networkx(graph)
    matching = nx.max_weight_matching(nx_graph, maxcardinality=True)
    pairs = frozenset(frozenset(pair) for pair in matching)
    memo["max_matching_nodes"] = pairs
    return pairs


def maximum_matching_size(graph: PortNumberedGraph) -> int:
    """ν(G): the maximum matching size (blossom, memoised per graph)."""
    return len(maximum_matching_nodes(graph))


def eds_lower_bound_from_nu(
    nu_lower: int, num_edges: int, max_degree: int
) -> int:
    """The EDS lower bound given (a lower bound on) ν.

    Sound for any ``nu_lower <= ν``: both ingredients are monotone in ν,
    so feeding a certified primal matching size instead of the exact ν
    still yields a valid (just possibly weaker) bound on the optimum.
    """
    if num_edges == 0:
        return 0
    by_matching = -(-nu_lower // 2)  # ceil(nu_lower / 2)
    by_domination = -(-num_edges // (2 * max_degree - 1))
    return max(by_matching, by_domination)


def eds_lower_bound(graph: PortNumberedGraph) -> int:
    """A poly-time lower bound on the minimum EDS size.

    Two bounds are combined:

    * every maximal matching has size >= ν(G)/2 (each optimal-matching
      edge must be dominated, and a dominating edge touches at most two
      of them), and the minimum EDS is a maximal matching;
    * an edge dominates at most ``2Δ - 1`` edges, so any EDS has size
      >= m / (2Δ - 1).
    """
    graph.require_simple()
    if graph.num_edges == 0:
        return 0
    return eds_lower_bound_from_nu(
        maximum_matching_size(graph), graph.num_edges, graph.max_degree
    )
