"""The line-graph view of edge dominating sets (paper §1.1).

The paper grounds the EDS/matching equivalence in a structural chain:

* the line graph ``L(G)`` of any graph is claw-free (no induced K_{1,3});
* dominating sets of ``L(G)`` correspond to edge dominating sets of
  ``G``, and maximal independent sets of ``L(G)`` to maximal matchings
  of ``G``;
* by Allan-Laskar, in a claw-free graph a minimum maximal independent
  set is also a minimum dominating set — hence a minimum maximal
  matching is a minimum edge dominating set.

This module implements the objects in that chain so the test suite can
verify each correspondence directly on concrete graphs, instead of
trusting the citation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = [
    "line_graph_adjacency",
    "is_claw_free",
    "is_dominating_set",
    "is_independent_set",
    "is_maximal_independent_set",
]

Adjacency = dict[PortEdge, frozenset[PortEdge]]


def line_graph_adjacency(graph: PortNumberedGraph) -> Adjacency:
    """The line graph L(G): vertices are G's edges, adjacency = sharing
    an endpoint.  Requires a simple graph."""
    graph.require_simple()
    incident: dict[Node, set[PortEdge]] = {v: set() for v in graph.nodes}
    for e in graph.edges:
        incident[e.u].add(e)
        incident[e.v].add(e)
    adjacency: Adjacency = {}
    for e in graph.edges:
        neighbours = (incident[e.u] | incident[e.v]) - {e}
        adjacency[e] = frozenset(neighbours)
    return adjacency


def is_claw_free(adjacency: Adjacency) -> bool:
    """True when the graph has no induced K_{1,3}.

    A claw is a centre vertex with three pairwise non-adjacent
    neighbours.  (For line graphs this always holds: the paper's §1.1.)
    """
    for neighbours in adjacency.values():
        for a, b, c in combinations(sorted(neighbours, key=repr), 3):
            if (
                b not in adjacency[a]
                and c not in adjacency[a]
                and c not in adjacency[b]
            ):
                return False  # found an induced claw
    return True


def is_dominating_set(
    adjacency: Adjacency, chosen: Iterable[PortEdge]
) -> bool:
    """True when every vertex of L(G) is in *chosen* or adjacent to it."""
    chosen_set = set(chosen)
    return all(
        v in chosen_set or (adjacency[v] & chosen_set) for v in adjacency
    )


def is_independent_set(
    adjacency: Adjacency, chosen: Iterable[PortEdge]
) -> bool:
    """True when no two chosen vertices of L(G) are adjacent."""
    chosen_set = set(chosen)
    return all(
        not (adjacency[v] & chosen_set) for v in chosen_set
    )


def is_maximal_independent_set(
    adjacency: Adjacency, chosen: Iterable[PortEdge]
) -> bool:
    """Independent and not extendable by any vertex."""
    chosen_set = set(chosen)
    if not is_independent_set(adjacency, chosen_set):
        return False
    return all(
        v in chosen_set or (adjacency[v] & chosen_set) for v in adjacency
    )
