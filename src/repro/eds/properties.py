"""Edge dominating set definitions (paper Sections 1-2).

An edge ``e1`` *dominates* every edge adjacent to it, including itself.
A set ``D`` of edges is an *edge dominating set* (EDS) when every edge of
the graph is dominated by some edge of ``D``.  These predicates operate on
sets of :class:`~repro.portgraph.ports.PortEdge` and are deliberately
independent of the matching substrate (no import cycle).
"""

from __future__ import annotations

from typing import Iterable

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = [
    "dominates",
    "dominated_edges",
    "undominated_edges",
    "is_edge_dominating_set",
    "domination_deficiency",
]


def dominates(e1: PortEdge, e2: PortEdge) -> bool:
    """True when *e1* dominates *e2* (shared endpoint, or identical)."""
    return bool(e1.endpoints & e2.endpoints)


def dominated_edges(
    graph: PortNumberedGraph, dominating: Iterable[PortEdge]
) -> frozenset[PortEdge]:
    """All graph edges dominated by the set *dominating*."""
    covered: set[Node] = set()
    chosen: set[PortEdge] = set()
    for e in dominating:
        covered |= e.endpoints
        chosen.add(e)
    return frozenset(
        e for e in graph.edges if e in chosen or (e.endpoints & covered)
    )


def undominated_edges(
    graph: PortNumberedGraph, dominating: Iterable[PortEdge]
) -> frozenset[PortEdge]:
    """All graph edges *not* dominated by *dominating*."""
    return frozenset(graph.edges) - dominated_edges(graph, dominating)


def _is_eds_arrays(graph: PortNumberedGraph, dominating: Iterable[PortEdge]):
    """Array fast path for :func:`is_edge_dominating_set`, or ``None``.

    Engages only when the graph's compiled arrays already exist (the
    direct-to-CSR generators build them up front; dict-built graphs get
    them after the first simulation) and numpy is importable — feasibility
    then costs two gathers and an OR over the port arrays instead of
    materialising every :class:`PortEdge`.  Semantics match the set-based
    check exactly: an edge is dominated iff one of its endpoints is an
    endpoint of some dominating edge (dominating edges whose endpoints
    are not graph nodes cover nothing, as in the set version, where a
    foreign endpoint never intersects a graph edge).
    """
    compiled = getattr(graph, "_compiled", None)
    if _np is None or compiled is None:
        return None
    if compiled.num_ports == 0:
        return True  # no edges: everything (vacuously) dominated
    covered = _np.zeros(compiled.num_nodes, dtype=bool)
    index = compiled.node_index
    for e in dominating:
        for v in e.endpoints:
            k = index.get(v)
            if k is not None:
                covered[k] = True
    port_node = _np.frombuffer(compiled.port_node, dtype=_np.int64)
    mate = _np.frombuffer(compiled.mate, dtype=_np.int64)
    owner = covered[port_node]
    return bool((owner | owner[mate]).all())


def is_edge_dominating_set(
    graph: PortNumberedGraph, dominating: Iterable[PortEdge]
) -> bool:
    """True when every edge of *graph* is dominated (paper §1.1)."""
    fast = _is_eds_arrays(graph, dominating)
    if fast is not None:
        return fast
    return not undominated_edges(graph, dominating)


def domination_deficiency(
    graph: PortNumberedGraph, dominating: Iterable[PortEdge]
) -> int:
    """The number of undominated edges (0 iff *dominating* is an EDS)."""
    return len(undominated_edges(graph, dominating))
