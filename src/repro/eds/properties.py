"""Edge dominating set definitions (paper Sections 1-2).

An edge ``e1`` *dominates* every edge adjacent to it, including itself.
A set ``D`` of edges is an *edge dominating set* (EDS) when every edge of
the graph is dominated by some edge of ``D``.  These predicates operate on
sets of :class:`~repro.portgraph.ports.PortEdge` and are deliberately
independent of the matching substrate (no import cycle).
"""

from __future__ import annotations

from typing import Iterable

from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import Node, PortEdge

__all__ = [
    "dominates",
    "dominated_edges",
    "undominated_edges",
    "is_edge_dominating_set",
    "domination_deficiency",
]


def dominates(e1: PortEdge, e2: PortEdge) -> bool:
    """True when *e1* dominates *e2* (shared endpoint, or identical)."""
    return bool(e1.endpoints & e2.endpoints)


def dominated_edges(
    graph: PortNumberedGraph, dominating: Iterable[PortEdge]
) -> frozenset[PortEdge]:
    """All graph edges dominated by the set *dominating*."""
    covered: set[Node] = set()
    chosen: set[PortEdge] = set()
    for e in dominating:
        covered |= e.endpoints
        chosen.add(e)
    return frozenset(
        e for e in graph.edges if e in chosen or (e.endpoints & covered)
    )


def undominated_edges(
    graph: PortNumberedGraph, dominating: Iterable[PortEdge]
) -> frozenset[PortEdge]:
    """All graph edges *not* dominated by *dominating*."""
    return frozenset(graph.edges) - dominated_edges(graph, dominating)


def is_edge_dominating_set(
    graph: PortNumberedGraph, dominating: Iterable[PortEdge]
) -> bool:
    """True when every edge of *graph* is dominated (paper §1.1)."""
    return not undominated_edges(graph, dominating)


def domination_deficiency(
    graph: PortNumberedGraph, dominating: Iterable[PortEdge]
) -> int:
    """The number of undominated edges (0 iff *dominating* is an EDS)."""
    return len(undominated_edges(graph, dominating))
