"""Exact minimum edge dominating sets.

Paper §1.1-1.2: a minimum maximal matching is a minimum edge dominating
set (and minimum EDS size equals minimum maximal matching size), so the
exact EDS solver delegates to the branch-and-bound minimum maximal
matching of :mod:`repro.matching.exact`.  A subset-enumeration brute
force is provided as an independent cross-check for tiny instances.
"""

from __future__ import annotations

from repro.eds.properties import is_edge_dominating_set
from repro.matching.exact import minimum_maximal_matching
from repro.portgraph.graph import PortNumberedGraph
from repro.portgraph.ports import PortEdge

__all__ = [
    "minimum_edge_dominating_set",
    "minimum_eds_size",
    "brute_force_minimum_eds_size",
]


def minimum_edge_dominating_set(
    graph: PortNumberedGraph,
) -> frozenset[PortEdge]:
    """An optimal edge dominating set (always a minimum maximal matching).

    Exponential-time exact solver; intended for the small instances used
    to validate the approximation guarantees.
    """
    return minimum_maximal_matching(graph)


def minimum_eds_size(graph: PortNumberedGraph) -> int:
    """The size of a minimum edge dominating set."""
    return len(minimum_edge_dominating_set(graph))


def brute_force_minimum_eds_size(graph: PortNumberedGraph) -> int:
    """Minimum EDS size by enumerating all edge subsets (<= 20 edges).

    Unlike the main solver this searches over *arbitrary* edge sets, not
    just matchings, so agreement between the two is a meaningful test of
    the Yannakakis-Gavril equivalence.
    """
    graph.require_simple()
    edges = list(graph.edges)
    if len(edges) > 20:
        raise RuntimeError("brute force limited to 20 edges")
    if not edges:
        return 0
    for size in range(0, len(edges) + 1):
        if _exists_eds_of_size(graph, edges, size):
            return size
    raise AssertionError("the full edge set always dominates")


def _exists_eds_of_size(graph, edges, size) -> bool:
    from itertools import combinations

    for subset in combinations(edges, size):
        if is_edge_dominating_set(graph, subset):
            return True
    return False
