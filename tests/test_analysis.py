"""Tests for the analysis layer: ratio, costs, references, runner, report."""

from __future__ import annotations

from fractions import Fraction

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import RegularOddEDS
from repro.algorithms.bounded_degree import run_bounded_with_split
from repro.analysis import (
    compute_cost_certificate,
    format_fraction,
    format_ratio_pair,
    format_table,
    measure_ratio,
    port_one_reference,
    regular_odd_reference,
    run_on,
    standard_algorithms,
)
from repro.exceptions import AlgorithmContractError
from repro.generators import cycle, random_regular
from repro.matching.exact import minimum_maximal_matching
from repro.portgraph import from_networkx, random_numbering
from repro.runtime import run_anonymous

from tests.conftest import nx_graphs


class TestMeasureRatio:
    def test_exact_on_small_graph(self):
        g = from_networkx(nx.path_graph(5))
        report = measure_ratio(g, frozenset(g.edges))
        assert report.exact
        assert report.optimum == 2
        assert report.ratio == Fraction(4, 2)

    def test_lower_bound_fallback(self):
        g = random_regular(3, 20, seed=1)
        full = frozenset(g.edges)
        report = measure_ratio(g, full, exact_edge_limit=5)
        assert not report.exact
        assert report.ratio >= 1

    def test_known_optimum_override(self):
        g = from_networkx(nx.path_graph(5))
        report = measure_ratio(g, frozenset(g.edges), known_optimum=2)
        assert report.exact
        assert report.optimum == 2

    def test_infeasible_rejected(self):
        g = from_networkx(nx.path_graph(5))
        with pytest.raises(AlgorithmContractError):
            measure_ratio(g, frozenset())

    def test_str_rendering(self):
        g = from_networkx(nx.path_graph(3))
        report = measure_ratio(g, frozenset(g.edges))
        assert "ratio" in str(report)


class TestReferences:
    def test_port_one_reference_matches_distributed(self):
        from repro.algorithms import PortOneEDS

        g = random_regular(4, 10, seed=3)
        assert port_one_reference(g) == run_anonymous(g, PortOneEDS).edge_set()

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.sampled_from([6, 8, 10, 12]),
        d=st.sampled_from([3, 5]),
        seed=st.integers(0, 10**6),
        numbering_seed=st.integers(0, 10**6),
    )
    def test_regular_odd_reference_matches_distributed(
        self, n, d, seed, numbering_seed
    ):
        """The centralised reference and the message-passing run must
        produce identical edge sets on every odd-regular graph."""
        if n <= d:
            n = d + 3
        if (n * d) % 2:
            n += 1
        graph = from_networkx(
            nx.random_regular_graph(d, n, seed=seed),
            random_numbering(numbering_seed),
        )
        _, reference = regular_odd_reference(graph)
        distributed = run_anonymous(graph, RegularOddEDS).edge_set()
        assert reference == distributed

    def test_phase1_superset_of_final(self):
        g = random_regular(3, 12, seed=5)
        phase1, final = regular_odd_reference(g)
        assert final <= phase1

    def test_phase1_is_edge_cover_forest(self):
        """The Theorem 4 proof's phase I claims: D is an edge cover and
        the induced subgraph is a forest (no cycle is ever closed)."""
        from repro.eds import is_edge_dominating_set
        from repro.matching import is_edge_cover, is_forest

        for seed in range(5):
            g = random_regular(5, 12, seed=seed)
            phase1, _ = regular_odd_reference(g)
            assert is_edge_cover(g, phase1)
            assert is_forest(phase1)
            assert is_edge_dominating_set(g, phase1)

    @settings(max_examples=30, deadline=None)
    @given(graph=nx_graphs(max_nodes=10, max_degree=5),
           seed=st.integers(0, 10**6),
           delta=st.sampled_from([3, 4, 5]))
    def test_bounded_reference_matches_simulator_exactly(
        self, graph, seed, delta
    ):
        """The centralised re-enactment of A(Δ) — including every
        tie-break of the proposal protocols — must reproduce the
        simulator's M/P split edge for edge."""
        from repro.analysis import bounded_degree_reference

        max_deg = max((d for _, d in graph.degree()), default=0)
        if max_deg > delta:
            return
        g = from_networkx(graph, random_numbering(seed))
        ref_m, ref_p = bounded_degree_reference(g, delta)
        _, sim_m, sim_p = run_bounded_with_split(g, delta)
        assert ref_m == sim_m
        assert ref_p == sim_p

    def test_bounded_reference_rejects_delta_one(self):
        from repro.analysis import bounded_degree_reference
        from repro.exceptions import AlgorithmContractError

        g = random_regular(3, 8, seed=1)
        with pytest.raises(AlgorithmContractError):
            bounded_degree_reference(g, 1)


class TestCostCertificate:
    def test_requires_maximal_matching_reference(self):
        g = from_networkx(nx.path_graph(4))
        with pytest.raises(AlgorithmContractError):
            compute_cost_certificate(g, frozenset(g.edges), frozenset())

    def test_certificate_on_theorem5_run(self):
        g = random_regular(4, 12, seed=11)
        result, m_edges, p_edges = run_bounded_with_split(g, 4)
        reference = minimum_maximal_matching(g)
        cert = compute_cost_certificate(g, result.edge_set(), reference)
        assert cert.total_cost == len(result.edge_set())
        assert sum(cert.histogram) == 2 * len(reference)
        assert cert.histogram_inequality_holds
        assert cert.implied_ratio_bound == Fraction(
            len(result.edge_set()), len(reference)
        )

    @settings(max_examples=20, deadline=None)
    @given(graph=nx_graphs(max_nodes=10, max_degree=5),
           seed=st.integers(0, 10**6))
    def test_certificate_on_random_graphs(self, graph, seed):
        g = from_networkx(graph, random_numbering(seed))
        if g.num_edges == 0 or g.num_edges > 20:
            return
        result, _, _ = run_bounded_with_split(g, 5)
        reference = minimum_maximal_matching(g)
        if not reference:
            return
        # delta is the algorithm's odd parameter (A(5) here), which is
        # what the §7.7 weight bounds are stated in
        cert = compute_cost_certificate(
            g, result.edge_set(), reference, delta=5
        )
        assert cert.total_cost == len(result.edge_set())
        assert cert.histogram_inequality_holds


class TestRunner:
    def test_standard_algorithms_all_run_on_cycle(self):
        g = cycle(8, seed=1)
        for name, spec in standard_algorithms().items():
            if name == "regular_odd":
                continue  # cycle has even degree; not this algorithm's domain
            row = run_on(spec, g, graph_label="C8")
            assert row.solution_size >= 1
            assert row.ratio >= 1

    def test_row_fields(self):
        g = cycle(6)
        spec = standard_algorithms()["port_one"]
        row = run_on(spec, g)
        assert row.num_nodes == 6
        assert row.rounds == 1
        assert row.optimum_exact


class TestReport:
    def test_format_fraction(self):
        assert format_fraction(Fraction(7, 2)).startswith("7/2")
        assert format_fraction(Fraction(3)).startswith("3 (")

    def test_format_ratio_pair(self):
        tight = format_ratio_pair(Fraction(5, 2), Fraction(5, 2))
        assert "TIGHT" in tight
        below = format_ratio_pair(Fraction(5, 2), Fraction(2))
        assert "below" in below
        above = format_ratio_pair(Fraction(5, 2), Fraction(3))
        assert "ABOVE" in above

    def test_format_table_alignment(self):
        table = format_table(
            ["a", "bbbb"], [(1, 2), (333, 4)], title="t"
        )
        lines = table.splitlines()
        assert lines[0] == "t"
        widest = max(len(line) for line in lines)
        assert all(len(line) <= widest for line in lines)
        assert "333" in table
