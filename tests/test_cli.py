"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_int_lists(self):
        args = build_parser().parse_args(["table1", "--even", "2,4"])
        assert args.even == (2, 4)


class TestCommands:
    def test_table1(self, capsys):
        code = main(["table1", "--even", "2", "--odd", "1", "--ks", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TIGHT" in out
        assert "MISMATCH" not in out

    def test_figure(self, capsys, tmp_path):
        code = main(["figure", "2", "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified claims" in out

    def test_figure_all_routes_through_engine_cache(self, capsys, tmp_path):
        """Figures are engine units: the rerun is served from cache and
        prints the identical renderings and claims."""
        cache_dir = str(tmp_path / "cache")
        assert main(["figure", "all", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert first.count("verified claims") == 9
        assert main(["figure", "all", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert second == first
        # the cache really holds the figure units
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:         9" in capsys.readouterr().out

    def test_rounds(self, capsys):
        code = main(["rounds", "--degrees", "1,3", "--sizes", "12"])
        assert code == 0
        assert "round complexity" in capsys.readouterr().out

    def test_average(self, capsys):
        code = main(["average", "--instances", "1"])
        assert code == 0
        assert "summary" in capsys.readouterr().out

    def test_ablation(self, capsys):
        code = main(["ablation"])
        assert code == 0
        assert "ablations" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "family,algorithm",
        [
            ("regular", "regular_odd"),
            ("cycle", "port_one"),
            ("grid", "bounded_degree"),
            ("bounded", "ids_greedy"),
        ],
    )
    def test_demo_variants(self, capsys, family, algorithm):
        code = main(
            [
                "demo",
                "--family", family,
                "--algorithm", algorithm,
                "-n", "9",
                "-d", "3",
            ]
        )
        assert code == 0
        assert "demo run" in capsys.readouterr().out


class TestSweepCommand:
    def _run(self, capsys, *extra):
        code = main(
            [
                "sweep",
                "--degrees", "2,3",
                "--sizes", "12",
                "--seeds", "1",
                "--quiet",
                *extra,
            ]
        )
        return code, capsys.readouterr().out

    def test_sweep_without_cache(self, capsys):
        code, out = self._run(capsys, "--no-cache")
        assert code == 0
        assert "sweep 'default'" in out
        assert "cache: disabled" in out

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, out = self._run(capsys, "--cache-dir", cache_dir)
        assert code == 0
        assert "0 hit(s)" in out
        code, out = self._run(capsys, "--cache-dir", cache_dir)
        assert code == 0
        assert "100.0% hit rate" in out

    def test_sweep_workers_match_serial(self, capsys, tmp_path):
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        code, _ = self._run(
            capsys, "--no-cache", "--jsonl", str(serial)
        )
        assert code == 0
        code, _ = self._run(
            capsys, "--no-cache", "--workers", "4", "--jsonl", str(parallel)
        )
        assert code == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_sweep_rejects_unknown_algorithm(self, capsys):
        code, _ = self._run(capsys, "--no-cache", "--algorithms", "bogus")
        assert code == 2

    @pytest.mark.parametrize("backend", ["inline", "thread", "process",
                                         "auto"])
    def test_sweep_backend_flag(self, capsys, tmp_path, backend):
        jsonl = tmp_path / f"{backend}.jsonl"
        code, out = self._run(
            capsys, "--no-cache", "--backend", backend,
            "--workers", "2", "--jsonl", str(jsonl),
        )
        assert code == 0
        assert f"backend: {backend}" in out
        # byte-identical to the inline baseline
        baseline = tmp_path / "baseline.jsonl"
        code, _ = self._run(
            capsys, "--no-cache", "--backend", "inline",
            "--jsonl", str(baseline),
        )
        assert code == 0
        assert jsonl.read_bytes() == baseline.read_bytes()

    def test_sweep_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--backend", "gpu"])

    def test_sweep_rejects_empty_grid(self, capsys):
        code = main(
            ["sweep", "--degrees", "3", "--sizes", "3", "--quiet",
             "--no-cache"]
        )
        assert code == 2
        assert "zero feasible" in capsys.readouterr().err

    def test_workers_flag_on_legacy_commands(self, capsys):
        code = main(
            ["rounds", "--degrees", "1,3", "--sizes", "12", "--workers", "2"]
        )
        assert code == 0
        assert "round complexity" in capsys.readouterr().out

    def test_sweep_randomized_with_messages_measure(self, capsys, tmp_path):
        """The ISSUE acceptance command: randomised algorithm + messages
        measure through the engine, reruns served from cache."""
        cache_dir = str(tmp_path / "cache")
        argv = [
            "sweep", "--degrees", "2,3", "--sizes", "12", "--seeds", "1",
            "--algorithms", "randomized_matching", "--measure", "messages",
            "--quiet", "--cache-dir", cache_dir,
        ]
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        assert main([*argv, "--jsonl", str(first)]) == 0
        out = capsys.readouterr().out
        assert "randomized_matching" in out and "0 hit(s)" in out
        assert main([*argv, "--jsonl", str(second)]) == 0
        assert "100.0% hit rate" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()


class TestEngineFlagsOnExperimentCommands:
    def test_table1_with_workers_and_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["table1", "--even", "2", "--odd", "1", "--ks", "1",
                "--workers", "2", "--cache-dir", cache_dir]
        assert main(argv) == 0
        assert "TIGHT" in capsys.readouterr().out
        # the confrontations are now cached work units
        assert main(argv) == 0
        assert "TIGHT" in capsys.readouterr().out

    def test_table1_no_cache(self, capsys):
        code = main(["table1", "--even", "2", "--odd", "1", "--ks", "1",
                     "--no-cache"])
        assert code == 0
        assert "TIGHT" in capsys.readouterr().out

    def test_ablation_with_engine_flags(self, capsys, tmp_path):
        code = main(["ablation", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "ablations" in capsys.readouterr().out

    def test_verify_fast_with_engine_flags(self, capsys, tmp_path):
        code = main(["verify", "--fast", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "VERDICT: all reproduction checks passed" in (
            capsys.readouterr().out
        )


class TestMessagesCommand:
    def test_messages_sweep(self, capsys):
        code = main(["messages", "--degrees", "3", "--sizes", "12",
                     "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "message complexity" in out
        assert "port_one" in out

    def test_messages_custom_algorithms(self, capsys):
        code = main([
            "messages", "--degrees", "3", "--sizes", "12", "--no-cache",
            "--algorithms", "port_one,randomized_matching",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "randomized_matching" in out

    def test_messages_rejects_unknown_algorithm(self, capsys):
        code = main(["messages", "--degrees", "3", "--sizes", "12",
                     "--no-cache", "--algorithms", "bogus"])
        assert code == 2

    def test_messages_rejects_empty_grid(self, capsys):
        code = main(["messages", "--degrees", "3", "--sizes", "3",
                     "--no-cache"])
        assert code == 2
        assert "zero feasible" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:         0" in capsys.readouterr().out

        main(["sweep", "--degrees", "2", "--sizes", "12", "--seeds", "1",
              "--quiet", "--cache-dir", cache_dir])
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "total size:" in out
        assert "entries:         0" not in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:         0" in capsys.readouterr().out


class TestDemoRegistryIntegration:
    def test_demo_randomized_algorithm(self, capsys):
        code = main(["demo", "--family", "cycle", "-n", "12",
                     "--algorithm", "randomized_matching"])
        assert code == 0
        assert "randomized_matching" in capsys.readouterr().out
