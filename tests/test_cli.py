"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_int_lists(self):
        args = build_parser().parse_args(["table1", "--even", "2,4"])
        assert args.even == (2, 4)


class TestCommands:
    def test_table1(self, capsys):
        code = main(["table1", "--even", "2", "--odd", "1", "--ks", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TIGHT" in out
        assert "MISMATCH" not in out

    def test_figure(self, capsys, tmp_path):
        code = main(["figure", "2", "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified claims" in out

    def test_figure_all_routes_through_engine_cache(self, capsys, tmp_path):
        """Figures are engine units: the rerun is served from cache and
        prints the identical renderings and claims."""
        cache_dir = str(tmp_path / "cache")
        assert main(["figure", "all", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert first.count("verified claims") == 9
        assert main(["figure", "all", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().out
        assert second == first
        # the cache really holds the figure units
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:         9" in capsys.readouterr().out

    def test_rounds(self, capsys):
        code = main(["rounds", "--degrees", "1,3", "--sizes", "12"])
        assert code == 0
        assert "round complexity" in capsys.readouterr().out

    def test_average(self, capsys):
        code = main(["average", "--instances", "1"])
        assert code == 0
        assert "summary" in capsys.readouterr().out

    def test_ablation(self, capsys):
        code = main(["ablation"])
        assert code == 0
        assert "ablations" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "family,algorithm",
        [
            ("regular", "regular_odd"),
            ("cycle", "port_one"),
            ("grid", "bounded_degree"),
            ("bounded", "ids_greedy"),
        ],
    )
    def test_demo_variants(self, capsys, family, algorithm):
        code = main(
            [
                "demo",
                "--family", family,
                "--algorithm", algorithm,
                "-n", "9",
                "-d", "3",
            ]
        )
        assert code == 0
        assert "demo run" in capsys.readouterr().out


class TestSweepCommand:
    def _run(self, capsys, *extra):
        code = main(
            [
                "sweep",
                "--degrees", "2,3",
                "--sizes", "12",
                "--seeds", "1",
                "--quiet",
                *extra,
            ]
        )
        return code, capsys.readouterr().out

    def test_sweep_without_cache(self, capsys):
        code, out = self._run(capsys, "--no-cache")
        assert code == 0
        assert "sweep 'default'" in out
        assert "cache: disabled" in out

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, out = self._run(capsys, "--cache-dir", cache_dir)
        assert code == 0
        assert "0 hit(s)" in out
        code, out = self._run(capsys, "--cache-dir", cache_dir)
        assert code == 0
        assert "100.0% hit rate" in out

    def test_sweep_workers_match_serial(self, capsys, tmp_path):
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        code, _ = self._run(
            capsys, "--no-cache", "--jsonl", str(serial)
        )
        assert code == 0
        code, _ = self._run(
            capsys, "--no-cache", "--workers", "4", "--jsonl", str(parallel)
        )
        assert code == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_sweep_rejects_unknown_algorithm(self, capsys):
        code, _ = self._run(capsys, "--no-cache", "--algorithms", "bogus")
        assert code == 2

    @pytest.mark.parametrize("backend", ["inline", "thread", "process",
                                         "auto"])
    def test_sweep_backend_flag(self, capsys, tmp_path, backend):
        jsonl = tmp_path / f"{backend}.jsonl"
        code, out = self._run(
            capsys, "--no-cache", "--backend", backend,
            "--workers", "2", "--jsonl", str(jsonl),
        )
        assert code == 0
        assert f"backend: {backend}" in out
        # byte-identical to the inline baseline
        baseline = tmp_path / "baseline.jsonl"
        code, _ = self._run(
            capsys, "--no-cache", "--backend", "inline",
            "--jsonl", str(baseline),
        )
        assert code == 0
        assert jsonl.read_bytes() == baseline.read_bytes()

    def test_sweep_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--backend", "gpu"])

    def test_sweep_rejects_empty_grid(self, capsys):
        code = main(
            ["sweep", "--degrees", "3", "--sizes", "3", "--quiet",
             "--no-cache"]
        )
        assert code == 2
        assert "zero feasible" in capsys.readouterr().err

    def test_workers_flag_on_legacy_commands(self, capsys):
        code = main(
            ["rounds", "--degrees", "1,3", "--sizes", "12", "--workers", "2"]
        )
        assert code == 0
        assert "round complexity" in capsys.readouterr().out

    def test_sweep_randomized_with_messages_measure(self, capsys, tmp_path):
        """The ISSUE acceptance command: randomised algorithm + messages
        measure through the engine, reruns served from cache."""
        cache_dir = str(tmp_path / "cache")
        argv = [
            "sweep", "--degrees", "2,3", "--sizes", "12", "--seeds", "1",
            "--algorithms", "randomized_matching", "--measure", "messages",
            "--quiet", "--cache-dir", cache_dir,
        ]
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        assert main([*argv, "--jsonl", str(first)]) == 0
        out = capsys.readouterr().out
        assert "randomized_matching" in out and "0 hit(s)" in out
        assert main([*argv, "--jsonl", str(second)]) == 0
        assert "100.0% hit rate" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()


class TestEngineFlagsOnExperimentCommands:
    def test_table1_with_workers_and_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = ["table1", "--even", "2", "--odd", "1", "--ks", "1",
                "--workers", "2", "--cache-dir", cache_dir]
        assert main(argv) == 0
        assert "TIGHT" in capsys.readouterr().out
        # the confrontations are now cached work units
        assert main(argv) == 0
        assert "TIGHT" in capsys.readouterr().out

    def test_table1_no_cache(self, capsys):
        code = main(["table1", "--even", "2", "--odd", "1", "--ks", "1",
                     "--no-cache"])
        assert code == 0
        assert "TIGHT" in capsys.readouterr().out

    def test_ablation_with_engine_flags(self, capsys, tmp_path):
        code = main(["ablation", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "ablations" in capsys.readouterr().out

    def test_verify_fast_with_engine_flags(self, capsys, tmp_path):
        code = main(["verify", "--fast", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "VERDICT: all reproduction checks passed" in (
            capsys.readouterr().out
        )


class TestMessagesCommand:
    def test_messages_sweep(self, capsys):
        code = main(["messages", "--degrees", "3", "--sizes", "12",
                     "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "message complexity" in out
        assert "port_one" in out

    def test_messages_custom_algorithms(self, capsys):
        code = main([
            "messages", "--degrees", "3", "--sizes", "12", "--no-cache",
            "--algorithms", "port_one,randomized_matching",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "randomized_matching" in out

    def test_messages_rejects_unknown_algorithm(self, capsys):
        code = main(["messages", "--degrees", "3", "--sizes", "12",
                     "--no-cache", "--algorithms", "bogus"])
        assert code == 2

    def test_messages_rejects_empty_grid(self, capsys):
        code = main(["messages", "--degrees", "3", "--sizes", "3",
                     "--no-cache"])
        assert code == 2
        assert "zero feasible" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:         0" in capsys.readouterr().out

        main(["sweep", "--degrees", "2", "--sizes", "12", "--seeds", "1",
              "--quiet", "--cache-dir", cache_dir])
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "total size:" in out
        assert "entries:         0" not in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries:         0" in capsys.readouterr().out


class TestDemoRegistryIntegration:
    def test_demo_randomized_algorithm(self, capsys):
        code = main(["demo", "--family", "cycle", "-n", "12",
                     "--algorithm", "randomized_matching"])
        assert code == 0
        assert "randomized_matching" in capsys.readouterr().out


class TestProfileCommand:
    def test_profile_prints_phase_table(self, capsys):
        code = main(["profile", "--scenario", "default", "--limit", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-phase self time" in out
        assert "p50" in out and "p95" in out
        assert "simulate" in out
        assert "total (unit wall)" in out
        assert "top" in out and "slowest units" in out
        assert "runtime:" in out and "delivered" in out

    def test_profile_writes_trace(self, capsys, tmp_path):
        trace = tmp_path / "profile.jsonl"
        code = main(["profile", "--scenario", "default", "--limit", "2",
                     "--trace", str(trace)])
        assert code == 0
        lines = [json.loads(line) for line in
                 trace.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["command"] == "profile"
        assert sum(1 for line in lines if line["type"] == "unit") == 2
        assert lines[-1]["type"] == "summary"

    def test_profile_optimum_override(self, capsys, tmp_path):
        trace = tmp_path / "lb.jsonl"
        code = main(["profile", "--scenario", "default", "--limit", "2",
                     "--optimum", "lower_bound", "--trace", str(trace)])
        assert code == 0
        spans = [
            span
            for line in map(json.loads, trace.read_text().splitlines())
            if line["type"] == "unit"
            for span in line["spans"]
            if span["name"] == "optimum"
        ]
        assert spans  # the optimum phase ran...
        for span in spans:  # ...in the overridden, non-exact mode
            assert span["attrs"]["mode"] == "lower_bound"
            assert span["attrs"]["exact"] is False

    def test_profile_rejects_unknown_algorithm(self, capsys):
        code = main(["profile", "--algorithms", "bogus"])
        assert code == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_profile_rejects_empty_grid(self, capsys):
        code = main(["profile", "--degrees", "3", "--sizes", "3"])
        assert code == 2
        assert "zero feasible" in capsys.readouterr().err

    def test_profile_all_cached_renders_empty_report(
        self, capsys, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        argv = ["profile", "--scenario", "default", "--limit", "2",
                "--cache", "--cache-dir", cache_dir]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "no units were computed" in out
        assert "cache: 2 hit(s)" in out


class TestTraceFlag:
    def test_sweep_trace_sidecar(self, capsys, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        code = main(["sweep", "--degrees", "2", "--sizes", "12",
                     "--seeds", "1", "--quiet", "--no-cache",
                     "--trace", str(trace)])
        assert code == 0
        lines = [json.loads(line) for line in
                 trace.read_text().splitlines()]
        assert lines[0]["command"] == "sweep"
        assert any(line["type"] == "unit" for line in lines)

    def test_trace_never_lands_in_cache_dir(self, capsys, tmp_path):
        """Cache entries written under --trace are byte-identical to the
        ones a traceless run writes — telemetry stays out of the cache."""
        plain_dir = tmp_path / "plain"
        traced_dir = tmp_path / "traced"
        base = ["sweep", "--degrees", "2", "--sizes", "12", "--seeds",
                "1", "--quiet"]
        assert main([*base, "--cache-dir", str(plain_dir)]) == 0
        assert main([*base, "--cache-dir", str(traced_dir),
                     "--trace", str(tmp_path / "t.jsonl")]) == 0
        plain = sorted(plain_dir.glob("*/*.json"))
        traced = sorted(traced_dir.glob("*/*.json"))
        assert [p.name for p in plain] == [p.name for p in traced]
        for a, b in zip(plain, traced):
            assert a.read_bytes() == b.read_bytes()
        # and the trace itself is elsewhere
        assert not list(traced_dir.glob("**/*.jsonl"))

    def test_global_verbose_and_quiet_flags_parse(self, capsys):
        assert main(["-v", "demo", "-n", "8"]) == 0
        capsys.readouterr()
        assert main(["-q", "demo", "-n", "8"]) == 0
        assert "demo run" in capsys.readouterr().out

    def test_subcommand_quiet_is_independent(self):
        args = build_parser().parse_args(
            ["-q", "sweep", "--quiet"]
        )
        assert args.log_quiet is True
        assert args.quiet is True
        args = build_parser().parse_args(["sweep"])
        assert args.log_quiet is False
        assert args.quiet is False
