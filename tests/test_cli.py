"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_int_lists(self):
        args = build_parser().parse_args(["table1", "--even", "2,4"])
        assert args.even == (2, 4)


class TestCommands:
    def test_table1(self, capsys):
        code = main(["table1", "--even", "2", "--odd", "1", "--ks", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TIGHT" in out
        assert "MISMATCH" not in out

    def test_figure(self, capsys):
        code = main(["figure", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified claims" in out

    def test_rounds(self, capsys):
        code = main(["rounds", "--degrees", "1,3", "--sizes", "12"])
        assert code == 0
        assert "round complexity" in capsys.readouterr().out

    def test_average(self, capsys):
        code = main(["average", "--instances", "1"])
        assert code == 0
        assert "summary" in capsys.readouterr().out

    def test_ablation(self, capsys):
        code = main(["ablation"])
        assert code == 0
        assert "ablations" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "family,algorithm",
        [
            ("regular", "regular_odd"),
            ("cycle", "port_one"),
            ("grid", "bounded_degree"),
            ("bounded", "ids_greedy"),
        ],
    )
    def test_demo_variants(self, capsys, family, algorithm):
        code = main(
            [
                "demo",
                "--family", family,
                "--algorithm", algorithm,
                "-n", "9",
                "-d", "3",
            ]
        )
        assert code == 0
        assert "demo run" in capsys.readouterr().out
