"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_int_lists(self):
        args = build_parser().parse_args(["table1", "--even", "2,4"])
        assert args.even == (2, 4)


class TestCommands:
    def test_table1(self, capsys):
        code = main(["table1", "--even", "2", "--odd", "1", "--ks", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TIGHT" in out
        assert "MISMATCH" not in out

    def test_figure(self, capsys):
        code = main(["figure", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified claims" in out

    def test_rounds(self, capsys):
        code = main(["rounds", "--degrees", "1,3", "--sizes", "12"])
        assert code == 0
        assert "round complexity" in capsys.readouterr().out

    def test_average(self, capsys):
        code = main(["average", "--instances", "1"])
        assert code == 0
        assert "summary" in capsys.readouterr().out

    def test_ablation(self, capsys):
        code = main(["ablation"])
        assert code == 0
        assert "ablations" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "family,algorithm",
        [
            ("regular", "regular_odd"),
            ("cycle", "port_one"),
            ("grid", "bounded_degree"),
            ("bounded", "ids_greedy"),
        ],
    )
    def test_demo_variants(self, capsys, family, algorithm):
        code = main(
            [
                "demo",
                "--family", family,
                "--algorithm", algorithm,
                "-n", "9",
                "-d", "3",
            ]
        )
        assert code == 0
        assert "demo run" in capsys.readouterr().out


class TestSweepCommand:
    def _run(self, capsys, *extra):
        code = main(
            [
                "sweep",
                "--degrees", "2,3",
                "--sizes", "12",
                "--seeds", "1",
                "--quiet",
                *extra,
            ]
        )
        return code, capsys.readouterr().out

    def test_sweep_without_cache(self, capsys):
        code, out = self._run(capsys, "--no-cache")
        assert code == 0
        assert "sweep 'default'" in out
        assert "cache: disabled" in out

    def test_sweep_cache_round_trip(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, out = self._run(capsys, "--cache-dir", cache_dir)
        assert code == 0
        assert "0 hit(s)" in out
        code, out = self._run(capsys, "--cache-dir", cache_dir)
        assert code == 0
        assert "100.0% hit rate" in out

    def test_sweep_workers_match_serial(self, capsys, tmp_path):
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        code, _ = self._run(
            capsys, "--no-cache", "--jsonl", str(serial)
        )
        assert code == 0
        code, _ = self._run(
            capsys, "--no-cache", "--workers", "4", "--jsonl", str(parallel)
        )
        assert code == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_sweep_rejects_unknown_algorithm(self, capsys):
        code, _ = self._run(capsys, "--no-cache", "--algorithms", "bogus")
        assert code == 2

    def test_sweep_rejects_empty_grid(self, capsys):
        code = main(
            ["sweep", "--degrees", "3", "--sizes", "3", "--quiet",
             "--no-cache"]
        )
        assert code == 2
        assert "zero feasible" in capsys.readouterr().err

    def test_workers_flag_on_legacy_commands(self, capsys):
        code = main(
            ["rounds", "--degrees", "1,3", "--sizes", "12", "--workers", "2"]
        )
        assert code == 0
        assert "round complexity" in capsys.readouterr().out
