"""Shared fixtures for the test suite.

Hypothesis strategies live in the public :mod:`repro.testing` module and
are re-exported here for the test files' convenience.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.portgraph import PortGraphBuilder, PortNumberedGraph, from_networkx
from repro.testing import (  # noqa: F401  (re-exported for test modules)
    bounded_degree_port_graphs,
    nx_graphs,
    odd_regular_port_graphs,
    port_graphs,
    regular_nx_graphs,
)

# ---------------------------------------------------------------------------
# Deterministic example graphs
# ---------------------------------------------------------------------------


@pytest.fixture
def path_graph_p2() -> PortNumberedGraph:
    """A single edge u -- v."""
    b = PortGraphBuilder()
    b.add_node("u", 1)
    b.add_node("v", 1)
    b.connect("u", 1, "v", 1)
    return b.build()


@pytest.fixture
def triangle() -> PortNumberedGraph:
    """K3 with sequential numbering."""
    return from_networkx(nx.complete_graph(3))


@pytest.fixture
def figure2_like_h() -> PortNumberedGraph:
    """A simple port-numbered graph with Figure 2's documented properties.

    The paper states, about the graph H of Figure 2: "a is the
    distinguishable neighbour of b, and d is the distinguishable neighbour
    of c.  However, the node a does not have any uniquely labelled edges."
    The figure's exact wiring is not recoverable from the text, so this
    graph realises exactly those three properties:

    * ``a`` (degree 2): both incident edges have label pair {1, 2};
    * ``b`` (degree 3): ports 1/3 both have pair {1, 3}, port 2 leads to
      ``a`` with pair {1, 2}, hence a is b's distinguishable neighbour;
    * ``c`` (degree 3): all pairs distinct, min port leads to ``d``.
    """
    b = PortGraphBuilder()
    b.add_nodes({"a": 2, "b": 3, "c": 3, "d": 2, "e": 2})
    b.connect("a", 1, "b", 2)
    b.connect("a", 2, "d", 1)
    b.connect("b", 1, "c", 3)
    b.connect("b", 3, "e", 1)
    b.connect("c", 1, "d", 2)
    b.connect("c", 2, "e", 2)
    return b.build()


@pytest.fixture
def multigraph_m() -> PortNumberedGraph:
    """The multigraph M of paper Figure 2 (two nodes s, t).

    d(s) = 3, d(t) = 4 with involution:
    (s,1)<->(t,2), (s,2)<->(t,1), (s,3) fixed point, (t,3)<->(t,4).
    """
    b = PortGraphBuilder()
    b.add_node("s", 3)
    b.add_node("t", 4)
    b.connect("s", 1, "t", 2)
    b.connect("s", 2, "t", 1)
    b.connect_fixed_point("s", 3)
    b.connect("t", 3, "t", 4)
    return b.build()
